//! The dynamic update subsystem: batched edge insertions/deletions on a
//! live cluster, with answers maintained incrementally (DESIGN.md §3.9).
//!
//! The paper's algorithms are built on *linear* graph sketches, which
//! support deletions for free — yet a plain [`Cluster`] can only solve
//! static snapshots. [`DynamicCluster`] closes that gap: it wraps an
//! ingested cluster and accepts [`UpdateBatch`]es of edge insertions and
//! deletions, which are validated, routed to the owning shards (one
//! comm-accounted superstep per batch), staged into per-shard delta logs
//! ([`kgraph::ShardedGraph::stage_insert`]), and folded into the CSRs by
//! periodic compaction — so per-machine storage stays `O(m/k + Δ)` plus
//! the bounded pending log, and a batch never re-ingests the graph.
//!
//! Three layers make the updates cheap:
//!
//! 1. **Storage.** Delta-log + compaction, as above. Compacted shards are
//!    bit-identical to fresh ingestion of the mutated edge sequence, so
//!    every static algorithm runs on them unchanged.
//! 2. **Sketches.** Each vertex's home maintains a linear incidence
//!    sketch, updated *in place* by adding the inserted (or subtracting
//!    the deleted) edge contribution — sketch linearity, the property the
//!    paper's §2.3 machinery is built on. After an incremental re-solve
//!    the refreshed component labels are *certified* with one exchange
//!    round: machines ship per-label sketch sums to the label's referee,
//!    where a true component cancels to exactly zero; a non-zero sum
//!    exposes a missed merge and escalates to a full re-solve.
//! 3. **Answers.** [`DynamicCluster::connectivity`] and
//!    [`DynamicCluster::spanning_forest`] re-solve *incrementally*: only
//!    the components touched by updates since the last solve are re-run
//!    (through [`Engine::restrict`]), and the surviving component
//!    structure — labels and forest edges of untouched components — is
//!    spliced through unchanged. Because the engine's per-component
//!    trajectory is keyed entirely by vertex ids, labels and shared
//!    randomness, the spliced answer is bit-identical to a fresh static
//!    [`Cluster::run`] on the mutated graph (pinned across the scenario
//!    matrix in `tests/dynamic.rs`). MST and min cut have no such
//!    decomposition here; [`DynamicCluster::run_full`] re-solves them on
//!    the compacted shards through the ordinary [`Problem`] plumbing.
//!
//! ```
//! use kconn::dynamic::{DynConfig, DynamicCluster, UpdateBatch};
//! use kconn::session::Cluster;
//! use kconn::ConnectivityConfig;
//! use kgraph::Graph;
//!
//! // Two disjoint paths: 0–…–9 and 10–…–19.
//! let g = Graph::unweighted(20, (0..9).map(|i| (i, i + 1)).chain((10..19).map(|i| (i, i + 1))));
//! let cluster = Cluster::builder(3).seed(7).ingest_graph(&g);
//! let mut dynamic = DynamicCluster::wrap(cluster, DynConfig::default());
//! let before = dynamic.connectivity(&ConnectivityConfig::default());
//! assert_eq!(before.output.component_count(), 2);
//! // Bridge the two paths; the next solve re-runs only the touched
//! // components and reports the update phase on its `RunReport`.
//! let bridge = UpdateBatch::new().insert(9, 10, 5);
//! dynamic.apply(&bridge).unwrap();
//! let after = dynamic.connectivity(&ConnectivityConfig::default());
//! assert_eq!(after.output.component_count(), 1);
//! assert_eq!(dynamic.batches(), 1);
//! ```

use crate::connectivity::{ConnectivityConfig, ConnectivityOutput};
use crate::engine::{Engine, EngineConfig, Mode};
use crate::messages::{id_bits, Label, Payload};
use crate::mst::MstConfig;
use crate::session::{Cluster, Problem, Run, RunReport};
use crate::st::SpanningForestOutput;
use kgraph::graph::Edge;
use kgraph::Partition;
use kmachine::bsp::Bsp;
use kmachine::det;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use kmachine::trace::{TraceEvent, Tracer};
use krand::shared::SharedRandomness;
use ksketch::{L0Sketch, SketchFns, SketchParams};
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Instant;

/// Sketch-function tag of the dynamic incidence sketches: disjoint from
/// every engine tag (`phase·64 + iter` elimination tags and the `2³⁰`-based
/// epoch tags), so the maintained sketches never alias a solve's.
const DYN_CERT_TAG: u32 = u32::MAX;

/// The machine that receives the external update stream and routes each
/// update to the endpoint home shards (the ingest coordinator).
const COORDINATOR: usize = 0;

// ---------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------

/// One edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `{u, v}` with weight `w`. The edge must not exist.
    Insert {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// The edge weight.
        w: u64,
    },
    /// Delete edge `{u, v}`. The edge must exist.
    Delete {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl UpdateOp {
    /// The endpoints of the op.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            UpdateOp::Insert { u, v, .. } | UpdateOp::Delete { u, v } => (u, v),
        }
    }
}

/// A batch of edge mutations, applied atomically by
/// [`DynamicCluster::apply`]: either every op validates (in sequence, so a
/// batch may delete an edge it inserted) or nothing is staged.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Builder-style: appends an insertion.
    pub fn insert(mut self, u: u32, v: u32, w: u64) -> Self {
        self.ops.push(UpdateOp::Insert { u, v, w });
        self
    }

    /// Builder-style: appends a deletion.
    pub fn delete(mut self, u: u32, v: u32) -> Self {
        self.ops.push(UpdateOp::Delete { u, v });
        self
    }

    /// Appends an op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the batch to a plain edge list under the *reference
    /// semantics* every implementation must match: a deletion removes the
    /// edge's current list position (later edges keep their relative
    /// order), an insertion appends. Fresh ingestion of the resulting list
    /// is what compacted shards are pinned bit-identical to. Used by the
    /// differential harness to maintain the oracle graph.
    pub fn apply_to_edge_list(&self, n: usize, edges: &mut Vec<Edge>) -> Result<(), UpdateError> {
        for op in &self.ops {
            let (u, v) = op.endpoints();
            validate_endpoints(n, u, v)?;
            let key = (u.min(v), u.max(v));
            let pos = edges.iter().position(|e| (e.u, e.v) == key);
            match (op, pos) {
                (UpdateOp::Insert { u, v, .. }, Some(_)) => {
                    return Err(UpdateError::DuplicateEdge { u: *u, v: *v });
                }
                (UpdateOp::Insert { u, v, w }, None) => edges.push(Edge::new(*u, *v, *w)),
                (UpdateOp::Delete { u, v }, None) => {
                    return Err(UpdateError::MissingEdge { u: *u, v: *v });
                }
                (UpdateOp::Delete { .. }, Some(p)) => {
                    edges.remove(p);
                }
            }
        }
        Ok(())
    }

    /// Parses an update trace into batches (the `kmm dyn --trace FILE`
    /// format). One op per line; `---` ends the current batch:
    ///
    /// ```text
    /// # churn trace
    /// + 0 9 5     <- insert {0, 9} with weight 5 (weight defaults to 1)
    /// - 3 4       <- delete {3, 4}
    /// ---         <- batch boundary
    /// + 3 4 2
    /// ```
    pub fn parse_trace(text: &str) -> Result<Vec<UpdateBatch>, TraceError> {
        let mut batches = Vec::new();
        let mut cur = UpdateBatch::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if t == "---" {
                if !cur.is_empty() {
                    batches.push(std::mem::take(&mut cur));
                }
                continue;
            }
            let mut fields = t.split_whitespace();
            let sigil = fields.next().expect("nonempty line has a first field");
            let mut vertex = |name: &str| -> Result<u32, TraceError> {
                fields
                    .next()
                    .ok_or_else(|| TraceError::new(line, format!("missing {name}")))?
                    .parse::<u32>()
                    .map_err(|_| TraceError::new(line, format!("bad vertex id {name}")))
            };
            let op = match sigil {
                "+" => {
                    let (u, v) = (vertex("u")?, vertex("v")?);
                    let w = match fields.next() {
                        Some(s) => s
                            .parse()
                            .map_err(|_| TraceError::new(line, "bad weight".into()))?,
                        None => 1,
                    };
                    UpdateOp::Insert { u, v, w }
                }
                "-" => UpdateOp::Delete {
                    u: vertex("u")?,
                    v: vertex("v")?,
                },
                other => {
                    return Err(TraceError::new(
                        line,
                        format!("expected `+`, `-` or `---`, found `{other}`"),
                    ));
                }
            };
            if fields.next().is_some() {
                return Err(TraceError::new(line, "trailing fields".into()));
            }
            cur.push(op);
        }
        if !cur.is_empty() {
            batches.push(cur);
        }
        Ok(batches)
    }
}

fn validate_endpoints(n: usize, u: u32, v: u32) -> Result<(), UpdateError> {
    if u == v {
        return Err(UpdateError::SelfLoop { v: u });
    }
    if u as usize >= n || v as usize >= n {
        return Err(UpdateError::OutOfRange { u, v, n });
    }
    Ok(())
}

/// Why a batch was rejected (nothing is staged on rejection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// An op named the same vertex twice.
    SelfLoop {
        /// The offending vertex.
        v: u32,
    },
    /// An endpoint is outside `[0, n)`.
    OutOfRange {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// The cluster's vertex count.
        n: usize,
    },
    /// An insertion of an edge that already exists (at batch-apply time).
    DuplicateEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// A deletion of an edge that does not exist (at batch-apply time).
    MissingEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::SelfLoop { v } => write!(f, "self-loop at vertex {v}"),
            UpdateError::OutOfRange { u, v, n } => {
                write!(f, "endpoint of ({u}, {v}) outside [0, {n})")
            }
            UpdateError::DuplicateEdge { u, v } => {
                write!(f, "insert of existing edge ({u}, {v})")
            }
            UpdateError::MissingEdge { u, v } => write!(f, "delete of absent edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// A malformed update-trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl TraceError {
    fn new(line: usize, msg: String) -> Self {
        TraceError { line, msg }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------
// Configuration and reports
// ---------------------------------------------------------------------

/// Knobs of the dynamic layer.
#[derive(Clone, Debug)]
pub struct DynConfig {
    /// Compact a shard's delta log into its CSR once any shard's pending
    /// half-edge count reaches this bound (solves always compact first, so
    /// this only limits storage between solves).
    pub compaction_threshold: usize,
    /// Run the sketch certification exchange after every incremental
    /// re-solve (one superstep of per-label incidence-sketch sums; a
    /// non-zero sum escalates to a full re-solve).
    pub certify: bool,
    /// Deterministic fault plan applied to the dynamic layer's own
    /// supersteps (update routing and certification); solves carry their
    /// plan in their [`ConnectivityConfig`]/[`MstConfig`]. Masked by the
    /// reliable-delivery protocol, so batches and certificates stay
    /// bit-identical to fault-free runs while the costs are counted.
    pub faults: Option<kmachine::fault::FaultPlan>,
    /// Structured event tracer (DESIGN.md §3.14; default off). The dynamic
    /// layer narrates batch routing and certification; inner solves thread
    /// the same tracer through their engine runs.
    pub trace: Tracer,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            compaction_threshold: 1024,
            certify: true,
            faults: None,
            trace: Tracer::off(),
        }
    }
}

/// What [`DynamicCluster::apply`] did with one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Ops applied.
    pub ops: usize,
    /// Insertions among them.
    pub inserts: usize,
    /// Deletions among them.
    pub deletes: usize,
    /// Rounds the routing superstep cost.
    pub rounds: u64,
    /// Bits the routing superstep moved.
    pub bits: u64,
    /// Pending half-edge deltas after the batch (0 if compaction ran).
    pub pending: usize,
    /// Whether the batch tripped the compaction threshold.
    pub compacted: bool,
}

/// Which path the last structure refresh took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshKind {
    /// Nothing structural changed since the last solve: cached answers.
    Cached,
    /// Only the touched components were re-solved.
    Incremental {
        /// Vertices in the re-solved region.
        active_vertices: usize,
    },
    /// The whole graph was (re-)solved.
    Full,
}

/// Maintained structure: the last solve's canonical labels and forest,
/// plus the labels dirtied by updates since.
#[derive(Clone, Debug)]
struct DynState {
    labels: Vec<Label>,
    forest: Vec<Edge>,
    touched: FxHashSet<Label>,
}

/// The engine knobs that shape the solve *trajectory* (and hence the
/// forest choice): maintained structure is only reusable under the same
/// key — a solve with different knobs forces a full refresh. Bandwidth,
/// cost model and the §2.2 charge only affect accounting, not answers.
type TrajectoryKey = (u32, crate::engine::MergeStrategy, u32, Option<u32>, bool);

fn trajectory_key(ecfg: &EngineConfig) -> TrajectoryKey {
    (
        ecfg.reps,
        ecfg.merge,
        ecfg.sketch_reuse_period,
        ecfg.max_phases,
        ecfg.contract,
    )
}

/// Everything a structure refresh produced (the solve-facing slice of an
/// engine run, or zeros for the cached path).
struct Refresh {
    stats: CommStats,
    phases: u32,
    phase_components: Vec<usize>,
    drr_depths: Vec<u32>,
    edges_per_machine: Vec<usize>,
    sketch_builds: u64,
    sketch_cache_hits: u64,
}

// ---------------------------------------------------------------------
// DynamicCluster
// ---------------------------------------------------------------------

/// A live cluster: an ingested [`Cluster`] plus the update machinery —
/// delta-logged shards, per-vertex incidence sketches maintained through
/// sketch linearity, and the incrementally maintained component structure.
///
/// See the [module docs](self) for the architecture and the bit-identity
/// contract with static runs.
#[derive(Debug)]
pub struct DynamicCluster {
    inner: Cluster,
    cfg: DynConfig,
    /// The public home hashing (cloned out of the shards so `apply` can
    /// route while mutably staging).
    home: Partition,
    /// Shared functions of the maintained incidence sketches.
    fns: SketchFns,
    params: SketchParams,
    /// Per machine: home vertex → maintained incidence sketch.
    sketches: Vec<FxHashMap<u32, L0Sketch>>,
    state: Option<DynState>,
    /// The trajectory knobs the maintained state was computed under.
    trajectory: Option<TrajectoryKey>,
    last_refresh: RefreshKind,
    /// Update-phase accounting since the last solve (stamped into the next
    /// [`RunReport`], then reset) and over the cluster's lifetime. The
    /// fault counters cover the routing supersteps, so a batch whose
    /// routing needed recovery is reported even when the solve ran clean.
    epoch_rounds: u64,
    epoch_bits: u64,
    epoch_faults: u64,
    epoch_retransmit_bits: u64,
    epoch_recovery_rounds: u64,
    update_stats: CommStats,
    batches: u64,
    compactions: u64,
    inserts: u64,
    deletes: u64,
}

impl DynamicCluster {
    /// Wraps an ingested cluster. Builds the per-vertex incidence sketches
    /// from the current shards (one linear pass, local to each home); from
    /// here on they are only ever updated in place.
    pub fn wrap(cluster: Cluster, cfg: DynConfig) -> Self {
        let n = cluster.n();
        let k = cluster.k();
        // One cell per sketch: the level-0 cell already holds the net sum
        // of every incident edge, which is all the zero-certification
        // needs (a cancelled component is *exactly* zero; a survivor edge
        // escapes the fingerprint with probability 1 − O(1/p)).
        let params = SketchParams {
            n,
            levels: 1,
            reps: 1,
            independence: (id_bits(n.max(2)) as usize).max(8),
        };
        let fns = SketchFns::new(&SharedRandomness::new(cluster.seed()), DYN_CERT_TAG, params);
        let mut sketches: Vec<FxHashMap<u32, L0Sketch>> = vec![FxHashMap::default(); k];
        for (i, per_machine) in sketches.iter_mut().enumerate() {
            let view = cluster.sharded().view(i);
            for &v in view.verts() {
                let mut sk = L0Sketch::new(params);
                for &(nb, _) in view.neighbors(v) {
                    sk.add_incident_edge(&fns, v, nb);
                }
                per_machine.insert(v, sk);
            }
        }
        let home = cluster.partition().clone();
        let update_stats = CommStats::new(k);
        DynamicCluster {
            inner: cluster,
            cfg,
            home,
            fns,
            params,
            sketches,
            state: None,
            trajectory: None,
            last_refresh: RefreshKind::Full,
            epoch_rounds: 0,
            epoch_bits: 0,
            epoch_faults: 0,
            epoch_retransmit_bits: 0,
            epoch_recovery_rounds: 0,
            update_stats,
            batches: 0,
            compactions: 0,
            inserts: 0,
            deletes: 0,
        }
    }

    // -----------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------

    /// Applies one batch: validates every op against the staged state (in
    /// sequence — nothing is staged unless the whole batch is valid),
    /// routes each op to its two endpoint homes in one comm-accounted
    /// superstep, updates the incidence sketches in place, stages the
    /// half-edge deltas, marks the endpoints' components as touched, and
    /// compacts if any shard's log crossed the threshold.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateReport, UpdateError> {
        // Pass 1: validation against base ∪ staged log ∪ batch overlay.
        let n = self.inner.n();
        let mut overlay: FxHashMap<(u32, u32), bool> = FxHashMap::default();
        for op in batch.ops() {
            let (u, v) = op.endpoints();
            validate_endpoints(n, u, v)?;
            let key = (u.min(v), u.max(v));
            let present = match overlay.get(&key) {
                Some(&p) => p,
                None => self
                    .inner
                    .sharded()
                    .staged_edge_weight(key.0, key.1)
                    .is_some(),
            };
            match op {
                UpdateOp::Insert { .. } if present => {
                    return Err(UpdateError::DuplicateEdge { u, v });
                }
                UpdateOp::Delete { .. } if !present => {
                    return Err(UpdateError::MissingEdge { u, v });
                }
                UpdateOp::Insert { .. } => {
                    overlay.insert(key, true);
                }
                UpdateOp::Delete { .. } => {
                    overlay.insert(key, false);
                }
            }
        }
        // Pass 2: route, stage, maintain sketches, dirty the structure.
        let l = id_bits(n);
        let mut envelopes = Vec::with_capacity(2 * batch.len());
        let mut inserts = 0usize;
        let mut deletes = 0usize;
        for op in batch.ops() {
            let (u, v) = op.endpoints();
            let (insert, w) = match *op {
                UpdateOp::Insert { w, .. } => {
                    inserts += 1;
                    self.inner.sharded_mut().stage_insert(u, v, w);
                    self.sketch_mut(u).add_incident_edge_for(v);
                    self.sketch_mut(v).add_incident_edge_for(u);
                    (true, w)
                }
                UpdateOp::Delete { .. } => {
                    deletes += 1;
                    self.inner.sharded_mut().stage_delete(u, v);
                    self.sketch_mut(u).remove_incident_edge_for(v);
                    self.sketch_mut(v).remove_incident_edge_for(u);
                    (false, 0)
                }
            };
            for (vertex, other) in [(u, v), (v, u)] {
                let payload = Payload::EdgeUpdate {
                    vertex,
                    other,
                    weight: w,
                    insert,
                };
                let bits = payload.wire_bits_lw(l, l);
                envelopes.push(Envelope::with_bits(
                    COORDINATOR,
                    self.home.home(vertex),
                    payload,
                    bits,
                ));
            }
            if let Some(state) = &mut self.state {
                state.touched.insert(state.labels[u as usize]);
                state.touched.insert(state.labels[v as usize]);
            }
        }
        let mut bsp: Bsp<Payload> = Bsp::new(self.network());
        crate::engine::attach_transport(&mut bsp, self.inner.defaults().transport, self.k());
        bsp.set_tracer(self.cfg.trace.clone());
        if let Some(plan) = self.cfg.faults.clone() {
            bsp.install_faults(plan, true);
        }
        bsp.superstep(envelopes);
        let stats = bsp.into_stats();
        self.epoch_rounds += stats.rounds;
        self.epoch_bits += stats.total_bits;
        self.epoch_faults += stats.faults_injected;
        self.epoch_retransmit_bits += stats.retransmit_bits;
        self.epoch_recovery_rounds += stats.recovery_rounds;
        self.update_stats.absorb(&stats);
        self.batches += 1;
        self.inserts += inserts as u64;
        self.deletes += deletes as u64;
        let compacted =
            self.inner.sharded().max_pending_per_shard() >= self.cfg.compaction_threshold;
        if compacted {
            self.inner.sharded_mut().compact();
            self.compactions += 1;
        }
        let (ops, ins, del) = (batch.len() as u64, inserts as u64, deletes as u64);
        let (rounds, bits) = (stats.rounds, stats.total_bits);
        self.cfg.trace.emit(|| TraceEvent::DynBatch {
            ops,
            inserts: ins,
            deletes: del,
            rounds,
            bits,
            compacted,
        });
        Ok(UpdateReport {
            ops: batch.len(),
            inserts,
            deletes,
            rounds: stats.rounds,
            bits: stats.total_bits,
            pending: self.inner.sharded().pending_half_ops(),
            compacted,
        })
    }

    fn sketch_mut(&mut self, v: u32) -> SketchHandle<'_> {
        let machine = self.home.home(v);
        SketchHandle {
            sketch: self.sketches[machine]
                .get_mut(&v)
                .expect("every home vertex has a maintained sketch"),
            fns: &self.fns,
            v,
        }
    }

    // -----------------------------------------------------------------
    // Solves
    // -----------------------------------------------------------------

    /// Incremental connected components: compacts, re-solves only the
    /// touched components, splices the surviving labels through, and
    /// certifies the refreshed labeling against the incidence sketches.
    /// The answer (canonical labels, component count) is bit-identical to
    /// a fresh static [`Cluster::run`] of
    /// [`crate::session::Connectivity`] on the mutated edge set.
    ///
    /// The maintained structure is keyed by the trajectory-shaping knobs
    /// (`reps`, `merge`, `sketch_reuse_period`, `max_phases`): solving
    /// with different knobs than the previous solve forces a full refresh
    /// instead of splicing answers from two different merge histories.
    pub fn connectivity(&mut self, cfg: &ConnectivityConfig) -> Run<ConnectivityOutput> {
        let started = Instant::now();
        let ecfg = EngineConfig {
            bandwidth: cfg.bandwidth,
            reps: cfg.reps,
            charge_shared_randomness: cfg.charge_shared_randomness,
            run_output_protocol: false,
            max_phases: cfg.max_phases,
            merge: cfg.merge,
            cost_model: cfg.cost_model,
            sketch_reuse_period: cfg.sketch_reuse_period,
            faults: cfg.faults.clone(),
            recovery: cfg.recovery,
            contract: cfg.contract,
            encoding: cfg.encoding,
            transport: cfg.transport,
            trace: cfg.trace.clone(),
        };
        let r = self.refresh(ecfg);
        let report = self.report("conn", &r, started);
        let state = self.state.as_ref().expect("refresh leaves state set");
        let labels = state.labels.clone();
        let counted = cfg.run_output_protocol.then(|| {
            // The incremental path derives the count from the maintained
            // labels instead of re-running the §2.6 exchange (the machines
            // already hold their refreshed labels); instrumentation only.
            let mut set: Vec<Label> = labels.clone();
            set.sort_unstable();
            set.dedup();
            set.len() as u64
        });
        let output = ConnectivityOutput {
            labels,
            stats: r.stats,
            phases: r.phases,
            phase_components: r.phase_components,
            drr_depths: r.drr_depths,
            counted_components: counted,
            sketch_builds: r.sketch_builds,
            sketch_cache_hits: r.sketch_cache_hits,
        };
        Run { output, report }
    }

    /// Incremental spanning forest: the maintained forest keeps every
    /// untouched component's edges and splices in the re-solved region's.
    /// Bit-identical to a fresh static run of
    /// [`crate::session::SpanningForest`] on the mutated edge set. Keyed
    /// by the same trajectory knobs as [`DynamicCluster::connectivity`].
    pub fn spanning_forest(&mut self, cfg: &MstConfig) -> Run<SpanningForestOutput> {
        let started = Instant::now();
        let ecfg = EngineConfig {
            bandwidth: cfg.bandwidth,
            reps: cfg.reps,
            charge_shared_randomness: cfg.charge_shared_randomness,
            run_output_protocol: false,
            max_phases: cfg.max_phases,
            faults: cfg.faults.clone(),
            recovery: cfg.recovery,
            contract: cfg.contract,
            encoding: cfg.encoding,
            transport: cfg.transport,
            trace: cfg.trace.clone(),
            ..EngineConfig::default()
        };
        let r = self.refresh(ecfg);
        let report = self.report("st", &r, started);
        let state = self.state.as_ref().expect("refresh leaves state set");
        let output = SpanningForestOutput {
            edges: state.forest.clone(),
            stats: r.stats,
            phases: r.phases,
            edges_per_machine: r.edges_per_machine,
        };
        Run { output, report }
    }

    /// Full re-solve on the compacted shards through the ordinary
    /// [`Problem`] plumbing — the path for problems with no incremental
    /// decomposition here (MST: mutated weights reshape the whole tree
    /// order; min cut: a global estimate). The report still carries the
    /// update-phase counters.
    pub fn run_full<P: Problem>(&mut self, problem: P) -> Run<P::Output> {
        self.compact_now();
        let mut run = self.inner.run(problem);
        run.report.update_rounds = self.epoch_rounds;
        run.report.update_bits = self.epoch_bits;
        run.report.faults_injected += self.epoch_faults;
        run.report.retransmit_bits += self.epoch_retransmit_bits;
        run.report.recovery_rounds += self.epoch_recovery_rounds;
        self.reset_epoch();
        run
    }

    // -----------------------------------------------------------------
    // Structure maintenance
    // -----------------------------------------------------------------

    /// Refreshes the maintained labels + forest under `ecfg`, taking the
    /// cheapest valid path: cached (no updates since the last solve),
    /// incremental (restricted engine run over touched components, then
    /// certification), or full.
    fn refresh(&mut self, ecfg: EngineConfig) -> Refresh {
        self.compact_now();
        // Maintained structure is only valid under the trajectory knobs it
        // was computed with: a solve under different knobs would splice
        // answers from two different merge histories. Drop it and refresh
        // fully instead.
        let key = trajectory_key(&ecfg);
        if self.trajectory != Some(key) {
            self.state = None;
            self.trajectory = Some(key);
        }
        if matches!(&self.state, Some(st) if st.touched.is_empty()) {
            // Nothing structural changed since the last solve: the
            // maintained answers are the answers, at zero model cost.
            self.last_refresh = RefreshKind::Cached;
            return Refresh {
                stats: CommStats::new(self.k()),
                phases: 0,
                phase_components: Vec::new(),
                drr_depths: Vec::new(),
                edges_per_machine: vec![0; self.k()],
                sketch_builds: 0,
                sketch_cache_hits: 0,
            };
        }
        let (active, active_count) = match &self.state {
            None => (None, 0),
            // Supergraph contraction densifies the label space with global
            // prefix sums, so a restricted run's dense ids (and hence its
            // merge trajectory) differ from the full run's. Splicing would
            // mix two merge histories; refresh fully instead.
            Some(_) if ecfg.contract => (None, 0),
            Some(st) => {
                let mask: Vec<bool> = st
                    .labels
                    .iter()
                    .map(|lab| st.touched.contains(lab))
                    .collect();
                let count = mask.iter().filter(|&&a| a).count();
                (Some(mask), count)
            }
        };
        let seed = self.inner.seed();
        let mut engine = Engine::new(
            self.inner.sharded(),
            Mode::SpanningForest,
            seed,
            ecfg.clone(),
        );
        if let Some(mask) = &active {
            engine.restrict(mask);
        }
        let result = engine.run();
        let mut stats = result.stats.clone();
        let kind;
        match (active, self.state.take()) {
            (Some(mask), Some(old)) => {
                let mut labels = old.labels;
                for (v, lab) in labels.iter_mut().enumerate() {
                    if mask[v] {
                        *lab = result.labels[v];
                    }
                }
                let mut forest: Vec<Edge> = old
                    .forest
                    .into_iter()
                    .filter(|e| !mask[e.u as usize])
                    .collect();
                forest.extend(result.mst_edges.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
                forest.sort_unstable_by_key(|e| (e.u, e.v));
                forest.dedup();
                let certified = if self.cfg.certify {
                    let fresh_labels: FxHashSet<Label> = labels
                        .iter()
                        .zip(&mask)
                        .filter(|&(_, &a)| a)
                        .map(|(&lab, _)| lab)
                        .collect();
                    let (ok, cert_stats) = self.certify(&fresh_labels, &labels, &ecfg);
                    stats.absorb(&cert_stats);
                    ok
                } else {
                    true
                };
                self.state = Some(DynState {
                    labels,
                    forest,
                    touched: FxHashSet::default(),
                });
                if !certified {
                    // The sketches exposed a missed merge (a Monte-Carlo
                    // sampling whiff in the restricted run): escalate to a
                    // full refresh, keeping the bits spent so far on the
                    // books.
                    self.state = None;
                    let mut full = self.refresh(ecfg.clone());
                    let mut merged = stats;
                    merged.absorb(&full.stats);
                    full.stats = merged;
                    return full;
                }
                kind = RefreshKind::Incremental {
                    active_vertices: active_count,
                };
            }
            (None, _) => {
                let mut forest: Vec<Edge> = result
                    .mst_edges
                    .iter()
                    .map(|&(u, v, w)| Edge::new(u, v, w))
                    .collect();
                forest.sort_unstable_by_key(|e| (e.u, e.v));
                forest.dedup();
                self.state = Some(DynState {
                    labels: result.labels.clone(),
                    forest,
                    touched: FxHashSet::default(),
                });
                kind = RefreshKind::Full;
            }
            (Some(_), None) => unreachable!("restriction requires maintained state"),
        }
        self.last_refresh = kind;
        Refresh {
            stats,
            phases: result.phases,
            phase_components: result.phase_components,
            drr_depths: result.drr_depths,
            edges_per_machine: result.mst_edges_per_machine,
            sketch_builds: result.sketch_builds,
            sketch_cache_hits: result.sketch_cache_hits,
        }
    }

    /// The certification exchange: every machine sums the incidence
    /// sketches of its home vertices per refreshed label and ships the sum
    /// to the label's referee — the home machine of the canonical
    /// representative (labels *are* vertex ids). Linearity cancels intra-
    /// component edges exactly, so each referee sees zero iff its label
    /// class has no outgoing edge; the per-machine verdicts are OR-reduced
    /// at the coordinator with 1-bit flags.
    fn certify(
        &self,
        fresh_labels: &FxHashSet<Label>,
        labels: &[Label],
        ecfg: &EngineConfig,
    ) -> (bool, CommStats) {
        let k = self.k();
        let l = id_bits(self.n());
        let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig {
            k,
            bandwidth: ecfg.bandwidth,
            n: self.n(),
            cost_model: ecfg.cost_model,
            encoding: ecfg.encoding,
        });
        crate::engine::attach_transport(&mut bsp, ecfg.transport, k);
        bsp.set_tracer(self.cfg.trace.clone());
        if let Some(plan) = self.cfg.faults.clone() {
            bsp.install_faults(plan, true);
        }
        let mut envelopes = Vec::new();
        for (i, per_machine) in self.sketches.iter().enumerate() {
            let mut agg: FxHashMap<Label, L0Sketch> = FxHashMap::default();
            for &v in self.inner.sharded().view(i).verts() {
                let lab = labels[v as usize];
                if fresh_labels.contains(&lab) {
                    agg.entry(lab)
                        .or_insert_with(|| L0Sketch::new(self.params))
                        .merge(&per_machine[&v]);
                }
            }
            for (label, sketch) in det::into_sorted_entries(agg) {
                let payload = Payload::CertSketch {
                    label,
                    sketch: Box::new(sketch),
                };
                let bits = payload.wire_bits_lw(l, l);
                envelopes.push(Envelope::with_bits(
                    i,
                    self.home.home(label as u32),
                    payload,
                    bits,
                ));
            }
        }
        bsp.superstep(envelopes);
        let inboxes = bsp.take_all_inboxes();
        let mut verdicts = vec![false; k];
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let mut sums: FxHashMap<Label, L0Sketch> = FxHashMap::default();
            for env in inbox {
                if let Payload::CertSketch { label, sketch } = env.payload {
                    match sums.get_mut(&label) {
                        Some(acc) => acc.merge(&sketch),
                        None => {
                            sums.insert(label, *sketch);
                        }
                    }
                }
            }
            verdicts[i] = det::any_value(&sums, |s| !s.is_zero());
        }
        let flag_bits = Payload::Flag { bit: false }.wire_bits_lw(l, l);
        bsp.superstep(
            (1..k)
                .map(|i| {
                    Envelope::with_bits(
                        i,
                        COORDINATOR,
                        Payload::Flag { bit: verdicts[i] },
                        flag_bits,
                    )
                })
                .collect(),
        );
        let bad = verdicts.iter().any(|&b| b);
        let n_labels = fresh_labels.len() as u64;
        self.cfg.trace.emit(|| TraceEvent::DynCertify {
            labels: n_labels,
            ok: !bad,
        });
        (!bad, bsp.into_stats())
    }

    fn compact_now(&mut self) {
        if self.inner.sharded().pending_half_ops() > 0 {
            self.inner.sharded_mut().compact();
            self.compactions += 1;
        }
    }

    fn report(&mut self, problem: &'static str, r: &Refresh, started: Instant) -> RunReport {
        let report = RunReport {
            problem,
            stats: r.stats.clone(),
            phases: r.phases,
            sketch_builds: r.sketch_builds,
            sketch_cache_hits: r.sketch_cache_hits,
            update_rounds: self.epoch_rounds,
            update_bits: self.epoch_bits,
            faults_injected: r.stats.faults_injected + self.epoch_faults,
            retransmit_bits: r.stats.retransmit_bits + self.epoch_retransmit_bits,
            recovery_rounds: r.stats.recovery_rounds + self.epoch_recovery_rounds,
            wall: started.elapsed(),
            phase_breakdown: None,
        };
        self.reset_epoch();
        report
    }

    fn reset_epoch(&mut self) {
        self.epoch_rounds = 0;
        self.epoch_bits = 0;
        self.epoch_faults = 0;
        self.epoch_retransmit_bits = 0;
        self.epoch_recovery_rounds = 0;
    }

    fn network(&self) -> NetworkConfig {
        NetworkConfig {
            k: self.k(),
            bandwidth: self.inner.defaults().bandwidth,
            n: self.n(),
            cost_model: self.inner.defaults().cost_model,
            encoding: self.inner.defaults().encoding,
        }
    }

    // -----------------------------------------------------------------
    // Accessors
    // -----------------------------------------------------------------

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Number of edges as of the last compaction (staged deltas land at
    /// the next solve or threshold crossing).
    pub fn m(&self) -> usize {
        self.inner.sharded().m()
    }

    /// The wrapped cluster (read access; solves go through the dynamic
    /// entry points so the maintained structure stays fresh).
    pub fn cluster(&self) -> &Cluster {
        &self.inner
    }

    /// The maintained canonical labels, if a solve has run.
    pub fn labels(&self) -> Option<&[Label]> {
        self.state.as_ref().map(|s| s.labels.as_slice())
    }

    /// The maintained spanning forest, if a solve has run.
    pub fn forest(&self) -> Option<&[Edge]> {
        self.state.as_ref().map(|s| s.forest.as_slice())
    }

    /// Which path the most recent solve took.
    pub fn last_refresh(&self) -> RefreshKind {
        self.last_refresh
    }

    /// Batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Compactions run so far (threshold-tripped or pre-solve).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Insertions and deletions applied so far.
    pub fn ops_applied(&self) -> (u64, u64) {
        (self.inserts, self.deletes)
    }

    /// Staged half-edge deltas not yet compacted.
    pub fn pending_half_ops(&self) -> usize {
        self.inner.sharded().pending_half_ops()
    }

    /// Cumulative update-phase accounting over the cluster's lifetime.
    pub fn update_stats(&self) -> &CommStats {
        &self.update_stats
    }

    /// The communication a *full re-ingestion* of the current edge set
    /// would cost under the same routing as the update path (coordinator →
    /// both endpoint homes, one superstep): the baseline the incremental
    /// path is measured against in kbench's dynamic family. Requires
    /// compacted shards.
    pub fn full_reingest_stats(&self) -> CommStats {
        debug_assert_eq!(self.pending_half_ops(), 0, "compact before measuring");
        let l = id_bits(self.n());
        let mut bsp: Bsp<Payload> = Bsp::new(self.network());
        crate::engine::attach_transport(&mut bsp, self.inner.defaults().transport, self.k());
        let mut envelopes = Vec::with_capacity(2 * self.m());
        for i in 0..self.k() {
            for e in self.inner.sharded().view(i).local_edges() {
                for (vertex, other) in [(e.u, e.v), (e.v, e.u)] {
                    let payload = Payload::EdgeUpdate {
                        vertex,
                        other,
                        weight: e.w,
                        insert: true,
                    };
                    let bits = payload.wire_bits_lw(l, l);
                    envelopes.push(Envelope::with_bits(
                        COORDINATOR,
                        self.home.home(vertex),
                        payload,
                        bits,
                    ));
                }
            }
        }
        bsp.superstep(envelopes);
        bsp.into_stats()
    }
}

/// A borrowed maintained sketch plus the shared functions — lets `apply`
/// update sketches without re-borrowing `self` per call.
struct SketchHandle<'a> {
    sketch: &'a mut L0Sketch,
    fns: &'a SketchFns,
    v: u32,
}

impl SketchHandle<'_> {
    fn add_incident_edge_for(self, other: u32) {
        self.sketch.add_incident_edge(self.fns, self.v, other);
    }

    fn remove_incident_edge_for(self, other: u32) {
        self.sketch.remove_incident_edge(self.fns, self.v, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Connectivity, Mst, Problem, SpanningForest};
    use kgraph::{generators, refalgo, Graph};

    fn mutated_graph(g: &Graph, batches: &[UpdateBatch]) -> Graph {
        let mut edges = g.edges().to_vec();
        for b in batches {
            b.apply_to_edge_list(g.n(), &mut edges)
                .expect("valid batch");
        }
        Graph::from_dedup_edges(g.n(), edges)
    }

    #[test]
    fn batch_validation_is_transactional() {
        let g = generators::path(10);
        let cluster = Cluster::builder(2).seed(1).ingest_graph(&g);
        let mut dc = DynamicCluster::wrap(cluster, DynConfig::default());
        // Second op is invalid: nothing of the batch may be staged.
        let bad = UpdateBatch::new().insert(0, 5, 1).insert(3, 4, 9);
        assert_eq!(
            dc.apply(&bad),
            Err(UpdateError::DuplicateEdge { u: 3, v: 4 })
        );
        assert_eq!(dc.pending_half_ops(), 0);
        assert_eq!(dc.batches(), 0);
        // Sequential semantics: delete-then-reinsert in one batch is fine.
        let ok = UpdateBatch::new().delete(3, 4).insert(3, 4, 7);
        dc.apply(&ok).expect("sequentially valid");
        assert_eq!(dc.pending_half_ops(), 4, "two ops, two half-edges each");
        // And the staged view reflects it before compaction.
        assert_eq!(dc.cluster().sharded().staged_edge_weight(3, 4), Some(7));
    }

    #[test]
    fn rejects_the_documented_error_cases() {
        let g = generators::cycle(8);
        let cluster = Cluster::builder(2).seed(2).ingest_graph(&g);
        let mut dc = DynamicCluster::wrap(cluster, DynConfig::default());
        assert_eq!(
            dc.apply(&UpdateBatch::new().insert(3, 3, 1)),
            Err(UpdateError::SelfLoop { v: 3 })
        );
        assert_eq!(
            dc.apply(&UpdateBatch::new().delete(0, 99)),
            Err(UpdateError::OutOfRange { u: 0, v: 99, n: 8 })
        );
        assert_eq!(
            dc.apply(&UpdateBatch::new().delete(2, 5)),
            Err(UpdateError::MissingEdge { u: 2, v: 5 })
        );
    }

    #[test]
    fn incremental_answers_match_fresh_static_runs() {
        let g = generators::planted_components(90, 3, 4, 11);
        let (k, seed) = (4, 13);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        let cfg = ConnectivityConfig::default();
        dc.connectivity(&cfg);
        assert_eq!(dc.last_refresh(), RefreshKind::Full);
        // Bridge components 0 and 1, and cut one edge inside component 2.
        let e = g.edges()[g.m() - 1];
        let batch = UpdateBatch::new().insert(0, 89, 3).delete(e.u, e.v);
        let applied = dc.apply(&batch).unwrap();
        assert_eq!(applied.ops, 2);
        assert!(applied.bits > 0);
        let run = dc.connectivity(&cfg);
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        assert!(run.report.update_bits > 0);
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::with(cfg));
        assert_eq!(
            run.output.labels, fresh.output.labels,
            "bit-identical labels"
        );
        assert_eq!(run.output.component_count(), fresh.output.component_count());
        let st = dc.spanning_forest(&MstConfig::default());
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Cached,
            "no updates in between"
        );
        let fresh_st = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(SpanningForest::with(MstConfig::default()));
        assert_eq!(
            st.output.edges, fresh_st.output.edges,
            "bit-identical forest"
        );
    }

    #[test]
    fn cached_path_costs_nothing() {
        let g = generators::grid(6, 6);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(3).seed(5).ingest_graph(&g),
            DynConfig::default(),
        );
        let cfg = ConnectivityConfig::default();
        let first = dc.connectivity(&cfg);
        let again = dc.connectivity(&cfg);
        assert_eq!(dc.last_refresh(), RefreshKind::Cached);
        assert_eq!(again.report.stats.rounds, 0);
        assert_eq!(again.report.stats.total_bits, 0);
        assert_eq!(first.output.labels, again.output.labels);
    }

    #[test]
    fn full_resolve_path_serves_mst() {
        let g = generators::randomize_weights(&generators::gnm(60, 150, 21), 100, 22);
        let (k, seed) = (3, 23);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        // Insert the two lightest-possible non-edges (found against the
        // generator output, so the batch always validates).
        let mut batch = UpdateBatch::new();
        let mut added = 0;
        'outer: for u in 0..60u32 {
            for v in (u + 1)..60u32 {
                if g.edge_weight(u, v).is_none() {
                    batch.push(UpdateOp::Insert { u, v, w: 1 });
                    added += 1;
                    if added == 2 {
                        break 'outer;
                    }
                }
            }
        }
        dc.apply(&batch).unwrap();
        let run = dc.run_full(Mst::with(MstConfig::default()));
        assert!(
            run.report.update_bits > 0,
            "update phase must be on the report"
        );
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        assert_eq!(
            run.output.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&mutated)),
            "full re-solve answers on the mutated edge set"
        );
    }

    #[test]
    fn compaction_threshold_bounds_the_log() {
        let g = generators::path(40);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(2).seed(3).ingest_graph(&g),
            DynConfig {
                compaction_threshold: 8,
                ..DynConfig::default()
            },
        );
        let mut compactions = 0;
        for i in 0..12u32 {
            let r = dc.apply(&UpdateBatch::new().insert(i, 39 - i, 2)).unwrap();
            compactions += u64::from(r.compacted);
            // Bounded: k shards, each log under threshold + one batch.
            assert!(dc.pending_half_ops() < 2 * (8 + 2), "log must stay bounded");
        }
        assert!(compactions > 0, "threshold must have tripped");
        assert_eq!(dc.compactions(), compactions);
    }

    #[test]
    fn mixed_trajectory_configs_force_a_full_refresh() {
        // Maintained structure from one merge history must never be served
        // under different trajectory knobs — the answers would not match a
        // fresh static run with those knobs.
        let g = generators::random_connected(80, 40, 41);
        let (k, seed) = (4, 43);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        dc.connectivity(&ConnectivityConfig::default());
        let odd = MstConfig {
            reps: 7,
            ..MstConfig::default()
        };
        let st = dc.spanning_forest(&odd);
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Full,
            "different reps must invalidate the maintained structure"
        );
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&g)
            .run(SpanningForest::with(odd));
        assert_eq!(st.output.edges, fresh.output.edges);
        // And back to the defaults: again a full refresh, again identical.
        let back = dc.connectivity(&ConnectivityConfig::default());
        assert_eq!(dc.last_refresh(), RefreshKind::Full);
        let fresh_conn = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&g)
            .run(Connectivity::default());
        assert_eq!(back.output.labels, fresh_conn.output.labels);
    }

    #[test]
    fn trace_parsing_round_trips() {
        let text = "# demo\n+ 0 9 5\n- 3 4\n---\n+ 3 4 2\n\n---\n";
        let batches = UpdateBatch::parse_trace(text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0].ops(),
            &[
                UpdateOp::Insert { u: 0, v: 9, w: 5 },
                UpdateOp::Delete { u: 3, v: 4 }
            ]
        );
        assert_eq!(batches[1].ops(), &[UpdateOp::Insert { u: 3, v: 4, w: 2 }]);
        let err = UpdateBatch::parse_trace("+ 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = UpdateBatch::parse_trace("+ 1 2\n* 3 4\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn deletions_that_split_components_are_re_solved() {
        // A path: deleting an interior edge splits the component; the
        // incremental path must discover the split and match fresh runs.
        let g = generators::path(50);
        let (k, seed) = (4, 31);
        let cfg = ConnectivityConfig::default();
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        dc.connectivity(&cfg);
        let batch = UpdateBatch::new().delete(24, 25);
        dc.apply(&batch).unwrap();
        let run = dc.connectivity(&cfg);
        assert_eq!(run.output.component_count(), 2);
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::with(cfg));
        assert_eq!(run.output.labels, fresh.output.labels);
    }
}
