//! The dynamic update subsystem: batched edge insertions/deletions on a
//! live cluster, with answers maintained incrementally (DESIGN.md §3.9).
//!
//! The paper's algorithms are built on *linear* graph sketches, which
//! support deletions for free — yet a plain [`Cluster`] can only solve
//! static snapshots. [`DynamicCluster`] closes that gap: it wraps an
//! ingested cluster and accepts [`UpdateBatch`]es of edge insertions and
//! deletions, which are validated, routed to the owning shards (one
//! comm-accounted superstep per batch), staged into per-shard delta logs
//! ([`kgraph::ShardedGraph::stage_insert`]), and folded into the CSRs by
//! periodic compaction — so per-machine storage stays `O(m/k + Δ)` plus
//! the bounded pending log, and a batch never re-ingests the graph.
//!
//! Three layers make the updates cheap:
//!
//! 1. **Storage.** Delta-log + compaction, as above. Compacted shards are
//!    bit-identical to fresh ingestion of the mutated edge sequence, so
//!    every static algorithm runs on them unchanged.
//! 2. **Sketches.** Each vertex's home maintains a linear incidence
//!    sketch, updated *in place* by adding the inserted (or subtracting
//!    the deleted) edge contribution — sketch linearity, the property the
//!    paper's §2.3 machinery is built on. After an incremental re-solve
//!    the refreshed component labels are *certified* with one exchange
//!    round: machines ship per-label sketch sums to the label's referee,
//!    where a true component cancels to exactly zero; a non-zero sum
//!    exposes a missed merge and escalates to a full re-solve.
//! 3. **Answers.** [`DynamicCluster::connectivity`] and
//!    [`DynamicCluster::spanning_forest`] re-solve *incrementally*: only
//!    the components touched by updates since the last solve are re-run
//!    (through [`Engine::restrict`]), and the surviving component
//!    structure — labels and forest edges of untouched components — is
//!    spliced through unchanged. Because the engine's per-component
//!    trajectory is keyed entirely by vertex ids, labels and shared
//!    randomness, the spliced answer is bit-identical to a fresh static
//!    [`Cluster::run`] on the mutated graph (pinned across the scenario
//!    matrix in `tests/dynamic.rs`). [`DynamicCluster::mst`] maintains
//!    the MST forest the same way, but per *net update class*: inserts by
//!    cycle replacement at the component owner, single tree-deletions by
//!    sketch replacement-edge search over the split halves, everything
//!    else by a restricted engine re-run — exact in every tier because
//!    the tie-free edge key makes the MST unique. Min cut has no such
//!    decomposition here; [`DynamicCluster::run_full`] re-solves it on
//!    the compacted shards through the ordinary [`Problem`] plumbing.
//!
//! ```
//! use kconn::dynamic::{DynConfig, DynamicCluster, UpdateBatch};
//! use kconn::session::Cluster;
//! use kconn::ConnectivityConfig;
//! use kgraph::Graph;
//!
//! // Two disjoint paths: 0–…–9 and 10–…–19.
//! let g = Graph::unweighted(20, (0..9).map(|i| (i, i + 1)).chain((10..19).map(|i| (i, i + 1))));
//! let cluster = Cluster::builder(3).seed(7).ingest_graph(&g);
//! let mut dynamic = DynamicCluster::wrap(cluster, DynConfig::default());
//! let before = dynamic.connectivity(&ConnectivityConfig::default());
//! assert_eq!(before.output.component_count(), 2);
//! // Bridge the two paths; the next solve re-runs only the touched
//! // components and reports the update phase on its `RunReport`.
//! let bridge = UpdateBatch::new().insert(9, 10, 5);
//! dynamic.apply(&bridge).unwrap();
//! let after = dynamic.connectivity(&ConnectivityConfig::default());
//! assert_eq!(after.output.component_count(), 1);
//! assert_eq!(dynamic.batches(), 1);
//! ```

use crate::connectivity::{ConnectivityConfig, ConnectivityOutput};
use crate::engine::{Engine, EngineConfig, Mode};
use crate::messages::{id_bits, EdgeKey, Label, Payload};
use crate::mst::MstConfig;
use crate::session::{Cluster, Problem, Run, RunReport};
use crate::st::SpanningForestOutput;
use kgraph::graph::Edge;
use kgraph::Partition;
use kmachine::bsp::Bsp;
use kmachine::det;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use kmachine::trace::{phase_breakdown, TraceEvent, Tracer};
use krand::shared::SharedRandomness;
use ksketch::{L0Sketch, SketchFns, SketchParams};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use std::time::Instant;

/// Sketch-function tag of the dynamic incidence sketches: disjoint from
/// every engine tag (`phase·64 + iter` elimination tags and the `2³⁰`-based
/// epoch tags), so the maintained sketches never alias a solve's.
const DYN_CERT_TAG: u32 = u32::MAX;

/// The machine that receives the external update stream and routes each
/// update to the endpoint home shards (the ingest coordinator).
const COORDINATOR: usize = 0;

// ---------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------

/// One edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `{u, v}` with weight `w`. The edge must not exist.
    Insert {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// The edge weight.
        w: u64,
    },
    /// Delete edge `{u, v}`. The edge must exist.
    Delete {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl UpdateOp {
    /// The endpoints of the op.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            UpdateOp::Insert { u, v, .. } | UpdateOp::Delete { u, v } => (u, v),
        }
    }
}

/// A batch of edge mutations, applied atomically by
/// [`DynamicCluster::apply`]: either every op validates (in sequence, so a
/// batch may delete an edge it inserted) or nothing is staged.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Builder-style: appends an insertion.
    pub fn insert(mut self, u: u32, v: u32, w: u64) -> Self {
        self.ops.push(UpdateOp::Insert { u, v, w });
        self
    }

    /// Builder-style: appends a deletion.
    pub fn delete(mut self, u: u32, v: u32) -> Self {
        self.ops.push(UpdateOp::Delete { u, v });
        self
    }

    /// Appends an op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the batch to a plain edge list under the *reference
    /// semantics* every implementation must match: a deletion removes the
    /// edge's current list position (later edges keep their relative
    /// order), an insertion appends. Fresh ingestion of the resulting list
    /// is what compacted shards are pinned bit-identical to. Used by the
    /// differential harness to maintain the oracle graph.
    pub fn apply_to_edge_list(&self, n: usize, edges: &mut Vec<Edge>) -> Result<(), UpdateError> {
        for op in &self.ops {
            let (u, v) = op.endpoints();
            validate_endpoints(n, u, v)?;
            let key = (u.min(v), u.max(v));
            let pos = edges.iter().position(|e| (e.u, e.v) == key);
            match (op, pos) {
                (UpdateOp::Insert { u, v, .. }, Some(_)) => {
                    return Err(UpdateError::DuplicateEdge { u: *u, v: *v });
                }
                (UpdateOp::Insert { u, v, w }, None) => edges.push(Edge::new(*u, *v, *w)),
                (UpdateOp::Delete { u, v }, None) => {
                    return Err(UpdateError::MissingEdge { u: *u, v: *v });
                }
                (UpdateOp::Delete { .. }, Some(p)) => {
                    edges.remove(p);
                }
            }
        }
        Ok(())
    }

    /// Parses an update trace into batches (the `kmm dyn --trace FILE`
    /// format). One op per line; `---` ends the current batch:
    ///
    /// ```text
    /// # churn trace
    /// + 0 9 5     <- insert {0, 9} with weight 5 (weight defaults to 1)
    /// - 3 4       <- delete {3, 4}
    /// ---         <- batch boundary
    /// + 3 4 2
    /// ```
    pub fn parse_trace(text: &str) -> Result<Vec<UpdateBatch>, TraceError> {
        let mut batches = Vec::new();
        let mut cur = UpdateBatch::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if t == "---" {
                if !cur.is_empty() {
                    batches.push(std::mem::take(&mut cur));
                }
                continue;
            }
            let mut fields = t.split_whitespace();
            let sigil = fields.next().expect("nonempty line has a first field");
            let mut vertex = |name: &str| -> Result<u32, TraceError> {
                fields
                    .next()
                    .ok_or_else(|| TraceError::new(line, format!("missing {name}")))?
                    .parse::<u32>()
                    .map_err(|_| TraceError::new(line, format!("bad vertex id {name}")))
            };
            let op = match sigil {
                "+" => {
                    let (u, v) = (vertex("u")?, vertex("v")?);
                    let w = match fields.next() {
                        Some(s) => s
                            .parse()
                            .map_err(|_| TraceError::new(line, "bad weight".into()))?,
                        None => 1,
                    };
                    UpdateOp::Insert { u, v, w }
                }
                "-" => UpdateOp::Delete {
                    u: vertex("u")?,
                    v: vertex("v")?,
                },
                other => {
                    return Err(TraceError::new(
                        line,
                        format!("expected `+`, `-` or `---`, found `{other}`"),
                    ));
                }
            };
            if fields.next().is_some() {
                return Err(TraceError::new(line, "trailing fields".into()));
            }
            cur.push(op);
        }
        if !cur.is_empty() {
            batches.push(cur);
        }
        Ok(batches)
    }
}

fn validate_endpoints(n: usize, u: u32, v: u32) -> Result<(), UpdateError> {
    if u == v {
        return Err(UpdateError::SelfLoop { v: u });
    }
    if u as usize >= n || v as usize >= n {
        return Err(UpdateError::OutOfRange { u, v, n });
    }
    Ok(())
}

/// Why a batch was rejected (nothing is staged on rejection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// An op named the same vertex twice.
    SelfLoop {
        /// The offending vertex.
        v: u32,
    },
    /// An endpoint is outside `[0, n)`.
    OutOfRange {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// The cluster's vertex count.
        n: usize,
    },
    /// An insertion of an edge that already exists (at batch-apply time).
    DuplicateEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// A deletion of an edge that does not exist (at batch-apply time).
    MissingEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::SelfLoop { v } => write!(f, "self-loop at vertex {v}"),
            UpdateError::OutOfRange { u, v, n } => {
                write!(f, "endpoint of ({u}, {v}) outside [0, {n})")
            }
            UpdateError::DuplicateEdge { u, v } => {
                write!(f, "insert of existing edge ({u}, {v})")
            }
            UpdateError::MissingEdge { u, v } => write!(f, "delete of absent edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// A malformed update-trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl TraceError {
    fn new(line: usize, msg: String) -> Self {
        TraceError { line, msg }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------
// Configuration and reports
// ---------------------------------------------------------------------

/// Knobs of the dynamic layer.
#[derive(Clone, Debug)]
pub struct DynConfig {
    /// Compact a shard's delta log into its CSR once any shard's pending
    /// half-edge count reaches this bound (solves always compact first, so
    /// this only limits storage between solves).
    pub compaction_threshold: usize,
    /// Run the sketch certification exchange after every incremental
    /// re-solve (one superstep of per-label incidence-sketch sums; a
    /// non-zero sum escalates to a full re-solve).
    pub certify: bool,
    /// Deterministic fault plan applied to the dynamic layer's own
    /// supersteps (update routing and certification); solves carry their
    /// plan in their [`ConnectivityConfig`]/[`MstConfig`]. Masked by the
    /// reliable-delivery protocol, so batches and certificates stay
    /// bit-identical to fault-free runs while the costs are counted.
    pub faults: Option<kmachine::fault::FaultPlan>,
    /// Structured event tracer (DESIGN.md §3.14; default off). The dynamic
    /// layer narrates batch routing and certification; inner solves thread
    /// the same tracer through their engine runs.
    pub trace: Tracer,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            compaction_threshold: 1024,
            certify: true,
            faults: None,
            trace: Tracer::off(),
        }
    }
}

/// What [`DynamicCluster::apply`] did with one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Ops applied.
    pub ops: usize,
    /// Insertions among them.
    pub inserts: usize,
    /// Deletions among them.
    pub deletes: usize,
    /// Rounds the routing superstep cost.
    pub rounds: u64,
    /// Bits the routing superstep moved.
    pub bits: u64,
    /// Pending half-edge deltas after the batch (0 if compaction ran).
    pub pending: usize,
    /// Whether the batch tripped the compaction threshold.
    pub compacted: bool,
}

/// Which path the last structure refresh took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshKind {
    /// Nothing structural changed since the last solve: cached answers.
    Cached,
    /// Only the touched components were re-solved.
    Incremental {
        /// Vertices in the re-solved region.
        active_vertices: usize,
    },
    /// The whole graph was (re-)solved.
    Full,
}

/// Maintained structure: the last solve's canonical labels and forest,
/// plus the labels dirtied by updates since.
#[derive(Clone, Debug)]
struct DynState {
    labels: Vec<Label>,
    forest: Vec<Edge>,
    touched: FxHashSet<Label>,
}

/// Maintained MST structure: the forest (with weights) of the last MST
/// solve plus its per-vertex component labels (each component labelled by
/// its minimum vertex). Unlike the connectivity state this carries no
/// trajectory key: the tie-free edge order makes the MST *unique*, so any
/// correct maintenance path lands on bit-identical edges whatever knobs
/// the solve ran under.
#[derive(Clone, Debug)]
struct MstDynState {
    /// The maintained minimum spanning forest, sorted by endpoints.
    forest: Vec<Edge>,
    /// Component label (minimum member vertex) per vertex.
    labels: Vec<Label>,
}

/// Net effect of the updates on one edge since the last MST solve: the
/// weight the edge had when the MST was last computed (`None` — absent)
/// and the weight it has now. Insert-then-delete nets out; a reweight
/// (delete-then-reinsert with a new weight) carries both sides.
type MstPendingNet = (Option<u64>, Option<u64>);

/// The engine knobs that shape the solve *trajectory* (and hence the
/// forest choice): maintained structure is only reusable under the same
/// key — a solve with different knobs forces a full refresh. Bandwidth,
/// cost model and the §2.2 charge only affect accounting, not answers.
type TrajectoryKey = (u32, crate::engine::MergeStrategy, u32, Option<u32>, bool);

fn trajectory_key(ecfg: &EngineConfig) -> TrajectoryKey {
    (
        ecfg.reps,
        ecfg.merge,
        ecfg.sketch_reuse_period,
        ecfg.max_phases,
        ecfg.contract,
    )
}

/// Everything a structure refresh produced (the solve-facing slice of an
/// engine run, or zeros for the cached path).
struct Refresh {
    stats: CommStats,
    phases: u32,
    phase_components: Vec<usize>,
    drr_depths: Vec<u32>,
    edges_per_machine: Vec<usize>,
    sketch_builds: u64,
    sketch_cache_hits: u64,
}

// ---------------------------------------------------------------------
// DynamicCluster
// ---------------------------------------------------------------------

/// A live cluster: an ingested [`Cluster`] plus the update machinery —
/// delta-logged shards, per-vertex incidence sketches maintained through
/// sketch linearity, and the incrementally maintained component structure.
///
/// See the [module docs](self) for the architecture and the bit-identity
/// contract with static runs.
#[derive(Debug)]
pub struct DynamicCluster {
    inner: Cluster,
    cfg: DynConfig,
    /// The public home hashing (cloned out of the shards so `apply` can
    /// route while mutably staging).
    home: Partition,
    /// Shared functions of the maintained incidence sketches.
    fns: SketchFns,
    params: SketchParams,
    /// Per machine: home vertex → maintained incidence sketch.
    sketches: Vec<FxHashMap<u32, L0Sketch>>,
    state: Option<DynState>,
    /// The maintained MST forest (independent of the connectivity state:
    /// the two are refreshed by different entry points).
    mst_state: Option<MstDynState>,
    /// Net per-edge effect of the updates since the last MST solve,
    /// keyed by canonical endpoints. Only tracked while `mst_state` is
    /// live; cleared by every MST refresh.
    mst_pending: FxHashMap<(u32, u32), MstPendingNet>,
    /// The trajectory knobs the maintained state was computed under.
    trajectory: Option<TrajectoryKey>,
    last_refresh: RefreshKind,
    /// Update-phase accounting since the last solve (stamped into the next
    /// [`RunReport`], then reset) and over the cluster's lifetime. The
    /// fault counters cover the routing supersteps, so a batch whose
    /// routing needed recovery is reported even when the solve ran clean.
    epoch_rounds: u64,
    epoch_bits: u64,
    epoch_faults: u64,
    epoch_retransmit_bits: u64,
    epoch_recovery_rounds: u64,
    update_stats: CommStats,
    batches: u64,
    compactions: u64,
    inserts: u64,
    deletes: u64,
}

impl DynamicCluster {
    /// Wraps an ingested cluster. Builds the per-vertex incidence sketches
    /// from the current shards (one linear pass, local to each home); from
    /// here on they are only ever updated in place.
    pub fn wrap(cluster: Cluster, cfg: DynConfig) -> Self {
        let n = cluster.n();
        let k = cluster.k();
        // One cell per sketch: the level-0 cell already holds the net sum
        // of every incident edge, which is all the zero-certification
        // needs (a cancelled component is *exactly* zero; a survivor edge
        // escapes the fingerprint with probability 1 − O(1/p)).
        let params = SketchParams {
            n,
            levels: 1,
            reps: 1,
            independence: (id_bits(n.max(2)) as usize).max(8),
        };
        let fns = SketchFns::new(&SharedRandomness::new(cluster.seed()), DYN_CERT_TAG, params);
        let mut sketches: Vec<FxHashMap<u32, L0Sketch>> = vec![FxHashMap::default(); k];
        for (i, per_machine) in sketches.iter_mut().enumerate() {
            let view = cluster.sharded().view(i);
            for &v in view.verts() {
                let mut sk = L0Sketch::new(params);
                for &(nb, _) in view.neighbors(v) {
                    sk.add_incident_edge(&fns, v, nb);
                }
                per_machine.insert(v, sk);
            }
        }
        let home = cluster.partition().clone();
        let update_stats = CommStats::new(k);
        DynamicCluster {
            inner: cluster,
            cfg,
            home,
            fns,
            params,
            sketches,
            state: None,
            mst_state: None,
            mst_pending: FxHashMap::default(),
            trajectory: None,
            last_refresh: RefreshKind::Full,
            epoch_rounds: 0,
            epoch_bits: 0,
            epoch_faults: 0,
            epoch_retransmit_bits: 0,
            epoch_recovery_rounds: 0,
            update_stats,
            batches: 0,
            compactions: 0,
            inserts: 0,
            deletes: 0,
        }
    }

    // -----------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------

    /// Applies one batch: validates every op against the staged state (in
    /// sequence — nothing is staged unless the whole batch is valid),
    /// routes each op to its two endpoint homes in one comm-accounted
    /// superstep, updates the incidence sketches in place, stages the
    /// half-edge deltas, marks the endpoints' components as touched, and
    /// compacts if any shard's log crossed the threshold.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateReport, UpdateError> {
        // Pass 1: validation against base ∪ staged log ∪ batch overlay.
        let n = self.inner.n();
        let mut overlay: FxHashMap<(u32, u32), bool> = FxHashMap::default();
        for op in batch.ops() {
            let (u, v) = op.endpoints();
            validate_endpoints(n, u, v)?;
            let key = (u.min(v), u.max(v));
            let present = match overlay.get(&key) {
                Some(&p) => p,
                None => self
                    .inner
                    .sharded()
                    .staged_edge_weight(key.0, key.1)
                    .is_some(),
            };
            match op {
                UpdateOp::Insert { .. } if present => {
                    return Err(UpdateError::DuplicateEdge { u, v });
                }
                UpdateOp::Delete { .. } if !present => {
                    return Err(UpdateError::MissingEdge { u, v });
                }
                UpdateOp::Insert { .. } => {
                    overlay.insert(key, true);
                }
                UpdateOp::Delete { .. } => {
                    overlay.insert(key, false);
                }
            }
        }
        // Pass 2: route, stage, maintain sketches, dirty the structure.
        let l = id_bits(n);
        let mut envelopes = Vec::with_capacity(2 * batch.len());
        let mut inserts = 0usize;
        let mut deletes = 0usize;
        for op in batch.ops() {
            let (u, v) = op.endpoints();
            if self.mst_state.is_some() {
                // First touch since the last MST solve captures the
                // edge's weight *as of that solve* (nothing else mutated
                // it in between); later touches only move the current
                // side, so insert-then-delete nets out and a reweight
                // carries both weights.
                let key = (u.min(v), u.max(v));
                let base = self.inner.sharded().staged_edge_weight(key.0, key.1);
                let net = self.mst_pending.entry(key).or_insert((base, base));
                net.1 = match *op {
                    UpdateOp::Insert { w, .. } => Some(w),
                    UpdateOp::Delete { .. } => None,
                };
            }
            let (insert, w) = match *op {
                UpdateOp::Insert { w, .. } => {
                    inserts += 1;
                    self.inner.sharded_mut().stage_insert(u, v, w);
                    self.sketch_mut(u).add_incident_edge_for(v);
                    self.sketch_mut(v).add_incident_edge_for(u);
                    (true, w)
                }
                UpdateOp::Delete { .. } => {
                    deletes += 1;
                    self.inner.sharded_mut().stage_delete(u, v);
                    self.sketch_mut(u).remove_incident_edge_for(v);
                    self.sketch_mut(v).remove_incident_edge_for(u);
                    (false, 0)
                }
            };
            for (vertex, other) in [(u, v), (v, u)] {
                let payload = Payload::EdgeUpdate {
                    vertex,
                    other,
                    weight: w,
                    insert,
                };
                let bits = payload.wire_bits_lw(l, l);
                envelopes.push(Envelope::with_bits(
                    COORDINATOR,
                    self.home.home(vertex),
                    payload,
                    bits,
                ));
            }
            if let Some(state) = &mut self.state {
                state.touched.insert(state.labels[u as usize]);
                state.touched.insert(state.labels[v as usize]);
            }
        }
        let mut bsp: Bsp<Payload> = Bsp::new(self.network());
        crate::engine::attach_transport(&mut bsp, self.inner.defaults().transport, self.k());
        bsp.set_tracer(self.cfg.trace.clone());
        if let Some(plan) = self.cfg.faults.clone() {
            bsp.install_faults(plan, true);
        }
        bsp.superstep(envelopes);
        let stats = bsp.into_stats();
        self.epoch_rounds += stats.rounds;
        self.epoch_bits += stats.total_bits;
        self.epoch_faults += stats.faults_injected;
        self.epoch_retransmit_bits += stats.retransmit_bits;
        self.epoch_recovery_rounds += stats.recovery_rounds;
        self.update_stats.absorb(&stats);
        self.batches += 1;
        self.inserts += inserts as u64;
        self.deletes += deletes as u64;
        let compacted =
            self.inner.sharded().max_pending_per_shard() >= self.cfg.compaction_threshold;
        if compacted {
            self.inner.sharded_mut().compact();
            self.compactions += 1;
        }
        let (ops, ins, del) = (batch.len() as u64, inserts as u64, deletes as u64);
        let (rounds, bits) = (stats.rounds, stats.total_bits);
        self.cfg.trace.emit(|| TraceEvent::DynBatch {
            ops,
            inserts: ins,
            deletes: del,
            rounds,
            bits,
            compacted,
        });
        Ok(UpdateReport {
            ops: batch.len(),
            inserts,
            deletes,
            rounds: stats.rounds,
            bits: stats.total_bits,
            pending: self.inner.sharded().pending_half_ops(),
            compacted,
        })
    }

    fn sketch_mut(&mut self, v: u32) -> SketchHandle<'_> {
        let machine = self.home.home(v);
        SketchHandle {
            sketch: self.sketches[machine]
                .get_mut(&v)
                .expect("every home vertex has a maintained sketch"),
            fns: &self.fns,
            v,
        }
    }

    // -----------------------------------------------------------------
    // Solves
    // -----------------------------------------------------------------

    /// Incremental connected components: compacts, re-solves only the
    /// touched components, splices the surviving labels through, and
    /// certifies the refreshed labeling against the incidence sketches.
    /// The answer (canonical labels, component count) is bit-identical to
    /// a fresh static [`Cluster::run`] of
    /// [`crate::session::Connectivity`] on the mutated edge set.
    ///
    /// The maintained structure is keyed by the trajectory-shaping knobs
    /// (`reps`, `merge`, `sketch_reuse_period`, `max_phases`): solving
    /// with different knobs than the previous solve forces a full refresh
    /// instead of splicing answers from two different merge histories.
    pub fn connectivity(&mut self, cfg: &ConnectivityConfig) -> Run<ConnectivityOutput> {
        let started = Instant::now();
        let mark = self.cfg.trace.mark();
        let ecfg = EngineConfig {
            bandwidth: cfg.bandwidth,
            reps: cfg.reps,
            charge_shared_randomness: cfg.charge_shared_randomness,
            run_output_protocol: false,
            max_phases: cfg.max_phases,
            merge: cfg.merge,
            cost_model: cfg.cost_model,
            sketch_reuse_period: cfg.sketch_reuse_period,
            faults: cfg.faults.clone(),
            recovery: cfg.recovery,
            contract: cfg.contract,
            encoding: cfg.encoding,
            transport: cfg.transport,
            trace: cfg.trace.clone(),
        };
        let r = self.refresh(ecfg);
        let report = self.report("conn", &r, started, mark);
        let state = self.state.as_ref().expect("refresh leaves state set");
        let labels = state.labels.clone();
        let counted = cfg.run_output_protocol.then(|| {
            // The incremental path derives the count from the maintained
            // labels instead of re-running the §2.6 exchange (the machines
            // already hold their refreshed labels); instrumentation only.
            let mut set: Vec<Label> = labels.clone();
            set.sort_unstable();
            set.dedup();
            set.len() as u64
        });
        let output = ConnectivityOutput {
            labels,
            stats: r.stats,
            phases: r.phases,
            phase_components: r.phase_components,
            drr_depths: r.drr_depths,
            counted_components: counted,
            sketch_builds: r.sketch_builds,
            sketch_cache_hits: r.sketch_cache_hits,
        };
        Run { output, report }
    }

    /// Incremental spanning forest: the maintained forest keeps every
    /// untouched component's edges and splices in the re-solved region's.
    /// Bit-identical to a fresh static run of
    /// [`crate::session::SpanningForest`] on the mutated edge set. Keyed
    /// by the same trajectory knobs as [`DynamicCluster::connectivity`].
    pub fn spanning_forest(&mut self, cfg: &MstConfig) -> Run<SpanningForestOutput> {
        let started = Instant::now();
        let mark = self.cfg.trace.mark();
        let ecfg = EngineConfig {
            bandwidth: cfg.bandwidth,
            reps: cfg.reps,
            charge_shared_randomness: cfg.charge_shared_randomness,
            run_output_protocol: false,
            max_phases: cfg.max_phases,
            faults: cfg.faults.clone(),
            recovery: cfg.recovery,
            contract: cfg.contract,
            encoding: cfg.encoding,
            transport: cfg.transport,
            trace: cfg.trace.clone(),
            ..EngineConfig::default()
        };
        let r = self.refresh(ecfg);
        let report = self.report("st", &r, started, mark);
        let state = self.state.as_ref().expect("refresh leaves state set");
        let output = SpanningForestOutput {
            edges: state.forest.clone(),
            stats: r.stats,
            phases: r.phases,
            edges_per_machine: r.edges_per_machine,
        };
        Run { output, report }
    }

    /// Incremental minimum spanning forest (DESIGN.md §3.9). The net
    /// updates since the last MST solve are grouped by the old components
    /// they touch, and each group takes the cheapest *exact* path:
    ///
    /// * **no-op** — only non-tree deletions: a non-MST edge never
    ///   re-enters the tree by its removal, so the maintained forest is
    ///   already the MST of the mutated graph;
    /// * **cycle replacement** — insertions only: each new edge is routed
    ///   to its component owner ([`Payload::MstCycleEdge`]), which finds
    ///   the maximum-key edge on the tree cycle the insertion closes and
    ///   swaps if the new edge is lighter ([`Payload::MstSwap`]) — exact
    ///   because `MST(G + e) ⊆ MST(G) + e` under the tie-free key;
    /// * **replacement-edge search** — a single tree deletion: the forest
    ///   splits in two; per-machine sums of the maintained L0 incidence
    ///   sketches over one half ([`Payload::MstCutSketch`]) cancel to
    ///   exactly zero iff no crossing edge survives (a genuine split),
    ///   otherwise the machines min-reduce the lightest crossing edge at
    ///   the piece referee ([`Payload::MstCandidate`]) — exact by the cut
    ///   property;
    /// * **restricted engine re-run** otherwise: a [`Mode::Mst`] run over
    ///   the affected components, spliced like the connectivity path.
    ///
    /// The refreshed forest is certified against the incidence sketches
    /// and escalates to a full re-solve on failure, exactly like
    /// [`DynamicCluster::connectivity`]. Because the tie-free edge key
    /// `(w, u, v)` makes the MST *unique*, the answer is bit-identical to
    /// a fresh static [`crate::session::Mst`] run on the mutated edge set
    /// — no trajectory key is needed, unlike the connectivity state. On
    /// the incremental path `edges_per_machine` reports the maintained
    /// forest's distribution over the `u`-endpoint homes.
    pub fn mst(&mut self, cfg: &MstConfig) -> Run<crate::mst::MstOutput> {
        let started = Instant::now();
        let mark = self.cfg.trace.mark();
        self.compact_now();
        let ecfg = EngineConfig {
            bandwidth: cfg.bandwidth,
            reps: cfg.reps,
            charge_shared_randomness: cfg.charge_shared_randomness,
            run_output_protocol: false,
            max_phases: cfg.max_phases,
            faults: cfg.faults.clone(),
            recovery: cfg.recovery,
            contract: cfg.contract,
            encoding: cfg.encoding,
            transport: cfg.transport,
            trace: cfg.trace.clone(),
            ..EngineConfig::default()
        };
        // Net out the update log: an edge whose current weight equals its
        // weight at the last MST solve contributes nothing (insert-then-
        // delete, delete-then-reinsert at the same weight, …).
        let mut net_deletes = Vec::new();
        let mut net_inserts = Vec::new();
        let pending = std::mem::take(&mut self.mst_pending);
        for ((u, v), (base, cur)) in det::into_sorted_entries(pending) {
            if base == cur {
                continue;
            }
            if let Some(w0) = base {
                net_deletes.push(Edge::new(u, v, w0));
            }
            if let Some(w1) = cur {
                net_inserts.push(Edge::new(u, v, w1));
            }
        }
        let (r, endpoint_routing) = match self.mst_state.take() {
            Some(state) if net_deletes.is_empty() && net_inserts.is_empty() => {
                // Nothing net-changed since the last MST solve: the
                // maintained forest is the answer, at zero model cost.
                self.mst_state = Some(state);
                self.last_refresh = RefreshKind::Cached;
                (
                    Refresh {
                        stats: CommStats::new(self.k()),
                        phases: 0,
                        phase_components: Vec::new(),
                        drr_depths: Vec::new(),
                        edges_per_machine: vec![0; self.k()],
                        sketch_builds: 0,
                        sketch_cache_hits: 0,
                    },
                    None,
                )
            }
            Some(state) => self.mst_incremental(state, net_deletes, net_inserts, cfg, &ecfg, mark),
            None => self.mst_full(cfg),
        };
        let report = self.report("mst", &r, started, mark);
        let state = self
            .mst_state
            .as_ref()
            .expect("an MST refresh leaves state set");
        let edges = state.forest.clone();
        let total_weight = edges.iter().map(|e| e.w as u128).sum();
        let output = crate::mst::MstOutput {
            edges,
            total_weight,
            stats: r.stats,
            phases: r.phases,
            edges_per_machine: r.edges_per_machine,
            endpoint_routing,
        };
        Run { output, report }
    }

    /// Full MST re-solve on the compacted shards, seeding the maintained
    /// forest — the first-solve path and the certification escape hatch.
    fn mst_full(&mut self, cfg: &MstConfig) -> (Refresh, Option<CommStats>) {
        let out =
            crate::mst::minimum_spanning_tree_sharded(self.inner.sharded(), self.inner.seed(), cfg);
        let labels = forest_labels(self.n(), &out.edges);
        self.mst_state = Some(MstDynState {
            forest: out.edges,
            labels,
        });
        self.last_refresh = RefreshKind::Full;
        (
            Refresh {
                stats: out.stats,
                phases: out.phases,
                phase_components: Vec::new(),
                drr_depths: Vec::new(),
                edges_per_machine: out.edges_per_machine,
                sketch_builds: 0,
                sketch_cache_hits: 0,
            },
            out.endpoint_routing,
        )
    }

    /// The incremental MST refresh: group classification and the three
    /// replacement tiers (see [`DynamicCluster::mst`] for the contract).
    fn mst_incremental(
        &mut self,
        state: MstDynState,
        net_deletes: Vec<Edge>,
        net_inserts: Vec<Edge>,
        cfg: &MstConfig,
        ecfg: &EngineConfig,
        mark: usize,
    ) -> (Refresh, Option<CommStats>) {
        let (n, k) = (self.n(), self.k());
        let l = id_bits(n);
        let MstDynState {
            mut forest,
            labels: old_labels,
        } = state;
        // --- Group the net ops by the old components they touch: a
        // union-find over component labels, merged through each net
        // insert (the only op kind that can join components). Unioning
        // toward the smaller index keeps every root at its group's
        // minimum label.
        let mut group_labels: Vec<Label> = net_deletes
            .iter()
            .chain(&net_inserts)
            .flat_map(|e| [old_labels[e.u as usize], old_labels[e.v as usize]])
            .collect();
        group_labels.sort_unstable();
        group_labels.dedup();
        let index: FxHashMap<Label, usize> = group_labels
            .iter()
            .enumerate()
            .map(|(i, &lab)| (lab, i))
            .collect();
        fn lfind(luf: &mut [usize], mut x: usize) -> usize {
            while luf[x] != x {
                let gp = luf[luf[x]];
                luf[x] = gp;
                x = gp;
            }
            x
        }
        let mut luf: Vec<usize> = (0..group_labels.len()).collect();
        for e in &net_inserts {
            let a = lfind(&mut luf, index[&old_labels[e.u as usize]]);
            let b = lfind(&mut luf, index[&old_labels[e.v as usize]]);
            if a != b {
                luf[a.max(b)] = a.min(b);
            }
        }
        // --- Classify each group by its net tree-deletions and inserts.
        let tree: FxHashSet<(u32, u32)> = forest.iter().map(|e| (e.u, e.v)).collect();
        #[derive(Default)]
        struct Group {
            tree_dels: Vec<Edge>,
            inserts: Vec<Edge>,
        }
        let mut groups: BTreeMap<usize, Group> = BTreeMap::new();
        for e in &net_deletes {
            let root = lfind(&mut luf, index[&old_labels[e.u as usize]]);
            let g = groups.entry(root).or_default();
            if tree.contains(&(e.u, e.v)) {
                g.tree_dels.push(*e);
            }
        }
        for e in &net_inserts {
            let root = lfind(&mut luf, index[&old_labels[e.u as usize]]);
            groups.entry(root).or_default().inserts.push(*e);
        }
        let mut tier_cycle: Vec<(Label, Vec<Edge>)> = Vec::new();
        let mut tier_cut: Vec<Edge> = Vec::new();
        let mut engine_label_set: FxHashSet<Label> = FxHashSet::default();
        for (root, g) in &groups {
            match (g.tree_dels.len(), g.inserts.len()) {
                // Only non-tree deletions: the forest is already the MST
                // of the mutated graph.
                (0, 0) => {}
                (0, _) => tier_cycle.push((group_labels[*root], g.inserts.clone())),
                (1, 0) => tier_cut.push(g.tree_dels[0]),
                // Multiple tree-deletions, or deletions mixed with
                // inserts: re-run the engine over the whole group.
                _ => {
                    for (i, &lab) in group_labels.iter().enumerate() {
                        if lfind(&mut luf, i) == *root {
                            engine_label_set.insert(lab);
                        }
                    }
                }
            }
        }
        let mut stats = CommStats::new(k);
        // Newly chosen forest edges, attributed to the machine that chose
        // them, for the criterion (b) routing stage.
        let mut new_edges: Vec<(usize, (u32, u32, u64))> = Vec::new();
        // --- Tier: cycle replacement (inserts into otherwise-unchanged
        // components). Each group's inserts are applied sequentially in
        // tie-free key order at the group owner.
        if !tier_cycle.is_empty() {
            let mut uf = VertexUf::new(n);
            let mut adj: FxHashMap<u32, Vec<(u32, u64)>> = FxHashMap::default();
            for e in &forest {
                uf.union(e.u, e.v);
                adj.entry(e.u).or_default().push((e.v, e.w));
                adj.entry(e.v).or_default().push((e.u, e.w));
            }
            let mut route = Vec::new();
            let mut replies = Vec::new();
            for (comp, mut ins) in tier_cycle {
                ins.sort_unstable_by_key(|e| (e.w, e.u, e.v));
                let owner = self.home.home(comp as u32);
                for e in ins {
                    let payload = Payload::MstCycleEdge {
                        comp,
                        u: e.u,
                        v: e.v,
                        weight: e.w,
                    };
                    let bits = payload.wire_bits_lw(l, l);
                    route.push(Envelope::with_bits(COORDINATOR, owner, payload, bits));
                    let mut evicted = None;
                    let mut accept = true;
                    if uf.connected(e.u, e.v) {
                        let (mw, ma, mb) = tree_path_max(&adj, e.u, e.v);
                        if (mw, ma, mb) > (e.w, e.u, e.v) {
                            // The new edge undercuts the heaviest cycle
                            // edge: swap them.
                            forest.retain(|f| (f.u, f.v) != (ma, mb));
                            for (a, b) in [(ma, mb), (mb, ma)] {
                                adj.get_mut(&a)
                                    .expect("tree edge endpoint has adjacency")
                                    .retain(|&(nb, _)| nb != b);
                            }
                            evicted = Some((mw, ma, mb));
                        } else {
                            // The new edge is the heaviest on its own
                            // cycle: the MST is unchanged.
                            accept = false;
                        }
                    } else {
                        // Joins two trees of the group: no cycle to break.
                        uf.union(e.u, e.v);
                    }
                    if accept {
                        forest.push(e);
                        adj.entry(e.u).or_default().push((e.v, e.w));
                        adj.entry(e.v).or_default().push((e.u, e.w));
                        new_edges.push((owner, (e.u, e.v, e.w)));
                    }
                    let reply = Payload::MstSwap { comp, evicted };
                    let rbits = reply.wire_bits_lw(l, l);
                    replies.push(Envelope::with_bits(owner, COORDINATOR, reply, rbits));
                }
            }
            let mut bsp = self.dyn_bsp(ecfg);
            bsp.superstep(route);
            let _ = bsp.take_all_inboxes();
            bsp.superstep(replies);
            let _ = bsp.take_all_inboxes();
            let s = bsp.into_stats();
            let (rounds, bits) = (s.rounds, s.total_bits);
            self.cfg.trace.emit(|| TraceEvent::Segment {
                name: "mst_cycle".to_string(),
                rounds,
                bits,
            });
            stats.absorb(&s);
        }
        // --- Tier: sketch replacement-edge search (a single tree
        // deletion splits its component in two).
        if !tier_cut.is_empty() {
            let mut adj: FxHashMap<u32, Vec<(u32, u64)>> = FxHashMap::default();
            for e in &forest {
                adj.entry(e.u).or_default().push((e.v, e.w));
                adj.entry(e.v).or_default().push((e.u, e.w));
            }
            struct CutPlan {
                piece: Label,
                other: Label,
                probe: Vec<u32>,
                other_set: FxHashSet<u32>,
                del: Edge,
            }
            let mut bsp = self.dyn_bsp(ecfg);
            let mut sketch_env = Vec::new();
            let mut plans = Vec::new();
            for del in tier_cut {
                let side_u = tree_piece(&adj, del.u, del);
                let side_v = tree_piece(&adj, del.v, del);
                // Probe the smaller piece: its sketch sum cancels every
                // intra-piece edge by linearity, leaving exactly the
                // crossing edges.
                let (probe, other) = if (side_u.len(), del.u) <= (side_v.len(), del.v) {
                    (side_u, side_v)
                } else {
                    (side_v, side_u)
                };
                let piece = Label::from(*probe.iter().min().expect("piece is nonempty"));
                let other_label = Label::from(*other.iter().min().expect("piece is nonempty"));
                let mut per_machine: Vec<Option<L0Sketch>> = (0..k).map(|_| None).collect();
                for &x in &probe {
                    let m = self.home.home(x);
                    per_machine[m]
                        .get_or_insert_with(|| L0Sketch::new(self.params))
                        .merge(&self.sketches[m][&x]);
                }
                let referee = self.home.home(piece as u32);
                for (i, sk) in per_machine.into_iter().enumerate() {
                    if let Some(sk) = sk {
                        let payload = Payload::MstCutSketch {
                            piece,
                            sketch: Box::new(sk),
                        };
                        let bits = payload.wire_bits_lw(l, l);
                        sketch_env.push(Envelope::with_bits(i, referee, payload, bits));
                    }
                }
                plans.push(CutPlan {
                    piece,
                    other: other_label,
                    probe,
                    other_set: other.into_iter().collect(),
                    del,
                });
            }
            bsp.superstep(sketch_env);
            let mut nonzero: FxHashSet<Label> = FxHashSet::default();
            for inbox in bsp.take_all_inboxes() {
                let mut sums: FxHashMap<Label, L0Sketch> = FxHashMap::default();
                for env in inbox {
                    if let Payload::MstCutSketch { piece, sketch } = env.payload {
                        match sums.get_mut(&piece) {
                            Some(acc) => acc.merge(&sketch),
                            None => {
                                sums.insert(piece, *sketch);
                            }
                        }
                    }
                }
                for piece in det::sorted_keys(&sums) {
                    if !sums[&piece].is_zero() {
                        nonzero.insert(piece);
                    }
                }
            }
            // Pieces with a non-zero sum have a surviving crossing edge:
            // every machine nominates its lightest one (every crossing
            // edge has an endpoint in the probe piece, so scanning the
            // probe homes' shard views covers the whole cut).
            let mut cand_env = Vec::new();
            for plan in &plans {
                if !nonzero.contains(&plan.piece) {
                    continue;
                }
                let mut best: Vec<Option<EdgeKey>> = vec![None; k];
                for &x in &plan.probe {
                    let m = self.home.home(x);
                    for &(nb, w) in self.inner.sharded().view(m).neighbors(x) {
                        if plan.other_set.contains(&nb) {
                            let key = (w, x.min(nb), x.max(nb));
                            if best[m].is_none_or(|b| key < b) {
                                best[m] = Some(key);
                            }
                        }
                    }
                }
                let referee = self.home.home(plan.piece as u32);
                for (i, key) in best.into_iter().enumerate() {
                    if let Some(key) = key {
                        let payload = Payload::MstCandidate {
                            piece: plan.piece,
                            key,
                            to_piece: plan.other,
                        };
                        let bits = payload.wire_bits_lw(l, l);
                        cand_env.push(Envelope::with_bits(i, referee, payload, bits));
                    }
                }
            }
            let mut winners: FxHashMap<Label, EdgeKey> = FxHashMap::default();
            if !cand_env.is_empty() {
                bsp.superstep(cand_env);
                for inbox in bsp.take_all_inboxes() {
                    for env in inbox {
                        if let Payload::MstCandidate { piece, key, .. } = env.payload {
                            match winners.get_mut(&piece) {
                                Some(best) => *best = (*best).min(key),
                                None => {
                                    winners.insert(piece, key);
                                }
                            }
                        }
                    }
                }
            }
            for plan in &plans {
                forest.retain(|f| (f.u, f.v) != (plan.del.u, plan.del.v));
                if let Some(&(w, a, b)) = winners.get(&plan.piece) {
                    // The cut property under the tie-free order: the
                    // minimum crossing edge rejoins the two pieces.
                    forest.push(Edge::new(a, b, w));
                    new_edges.push((self.home.home(plan.piece as u32), (a, b, w)));
                }
                // A zero sum certifies a genuine split: the component
                // stays divided and the labels recompute below.
            }
            let s = bsp.into_stats();
            let (rounds, bits) = (s.rounds, s.total_bits);
            self.cfg.trace.emit(|| TraceEvent::Segment {
                name: "mst_cut".to_string(),
                rounds,
                bits,
            });
            stats.absorb(&s);
        }
        // --- Tier: restricted engine re-run over the remaining groups.
        let mut engine_phases = 0u32;
        let mut engine_pc: Vec<usize> = Vec::new();
        let mut engine_drr: Vec<u32> = Vec::new();
        let (mut sketch_builds, mut sketch_cache_hits) = (0u64, 0u64);
        if !engine_label_set.is_empty() {
            let mask: Vec<bool> = old_labels
                .iter()
                .map(|lab| engine_label_set.contains(lab))
                .collect();
            let mut engine = Engine::new(self.inner.sharded(), Mode::Mst, self.inner.seed(), {
                let mut c = ecfg.clone();
                // Contraction densifies label ids but the MST is unique
                // either way; the restricted run keeps the plain path.
                c.contract = false;
                c
            });
            engine.restrict(&mask);
            let result = engine.run();
            stats.absorb(&result.stats);
            let survivors: Vec<Edge> = std::mem::take(&mut forest)
                .into_iter()
                .filter(|e| !mask[e.u as usize])
                .collect();
            forest = splice_forest(&result.mst_edges, survivors);
            let mut idx = 0usize;
            for (machine, &cnt) in result.mst_edges_per_machine.iter().enumerate() {
                for _ in 0..cnt {
                    new_edges.push((machine, result.mst_edges[idx]));
                    idx += 1;
                }
            }
            engine_phases = result.phases;
            engine_pc = result.phase_components;
            engine_drr = result.drr_depths;
            sketch_builds = result.sketch_builds;
            sketch_cache_hits = result.sketch_cache_hits;
        }
        forest.sort_unstable_by_key(|e| (e.u, e.v));
        let labels = forest_labels(n, &forest);
        let affected: Vec<bool> = old_labels
            .iter()
            .map(|lab| index.contains_key(lab))
            .collect();
        let active_count = affected.iter().filter(|&&a| a).count();
        self.mst_state = Some(MstDynState { forest, labels });
        let certified = if self.cfg.certify {
            let st = self.mst_state.as_ref().expect("state was just set");
            let fresh_labels: FxHashSet<Label> = st
                .labels
                .iter()
                .zip(&affected)
                .filter(|&(_, &a)| a)
                .map(|(&lab, _)| lab)
                .collect();
            let (ok, cert_stats) = self.certify(&fresh_labels, &st.labels, ecfg);
            stats.absorb(&cert_stats);
            ok
        } else {
            true
        };
        if !certified {
            // Same escape hatch as the connectivity path: record the
            // aborted attempt as a rolled-back breakdown span and
            // re-solve fully, keeping the bits spent so far on the books.
            self.mst_state = None;
            let span = phase_breakdown(&self.cfg.trace.events_since(mark)).len() as u64;
            let (rounds, bits) = (stats.rounds, stats.total_bits);
            self.cfg
                .trace
                .emit(|| TraceEvent::DynEscalate { span, rounds, bits });
            let (mut full, routing) = self.mst_full(cfg);
            let mut merged = stats;
            merged.absorb(&full.stats);
            full.stats = merged;
            return (full, routing);
        }
        self.last_refresh = RefreshKind::Incremental {
            active_vertices: active_count,
        };
        // Criterion (b): only the newly chosen edges need routing — the
        // surviving forest is already known at its endpoint homes.
        let mut endpoint_routing = None;
        if cfg.criterion == crate::mst::OutputCriterion::BothEndpoints && !new_edges.is_empty() {
            let routing =
                crate::mst::route_edges_to_endpoints(self.inner.sharded(), &new_edges, cfg);
            stats.absorb(&routing);
            endpoint_routing = Some(routing);
        }
        let st = self.mst_state.as_ref().expect("state was just set");
        let mut edges_per_machine = vec![0usize; k];
        for e in &st.forest {
            edges_per_machine[self.home.home(e.u)] += 1;
        }
        (
            Refresh {
                stats,
                phases: engine_phases,
                phase_components: engine_pc,
                drr_depths: engine_drr,
                edges_per_machine,
                sketch_builds,
                sketch_cache_hits,
            },
            endpoint_routing,
        )
    }

    /// The maintained MST forest, if an MST solve has run.
    pub fn mst_forest(&self) -> Option<&[Edge]> {
        self.mst_state.as_ref().map(|s| s.forest.as_slice())
    }

    /// Full re-solve on the compacted shards through the ordinary
    /// [`Problem`] plumbing — the path for problems with no incremental
    /// decomposition here (min cut: a global estimate; MST has its own
    /// incremental entry point, [`DynamicCluster::mst`]). The report
    /// still carries the update-phase counters.
    pub fn run_full<P: Problem>(&mut self, problem: P) -> Run<P::Output> {
        self.compact_now();
        let mut run = self.inner.run(problem);
        run.report.update_rounds = self.epoch_rounds;
        run.report.update_bits = self.epoch_bits;
        run.report.faults_injected += self.epoch_faults;
        run.report.retransmit_bits += self.epoch_retransmit_bits;
        run.report.recovery_rounds += self.epoch_recovery_rounds;
        self.reset_epoch();
        run
    }

    // -----------------------------------------------------------------
    // Structure maintenance
    // -----------------------------------------------------------------

    /// Refreshes the maintained labels + forest under `ecfg`, taking the
    /// cheapest valid path: cached (no updates since the last solve),
    /// incremental (restricted engine run over touched components, then
    /// certification), or full.
    fn refresh(&mut self, ecfg: EngineConfig) -> Refresh {
        let attempt_mark = self.cfg.trace.mark();
        self.compact_now();
        // Maintained structure is only valid under the trajectory knobs it
        // was computed with: a solve under different knobs would splice
        // answers from two different merge histories. Drop it and refresh
        // fully instead.
        let key = trajectory_key(&ecfg);
        if self.trajectory != Some(key) {
            self.state = None;
            self.trajectory = Some(key);
        }
        if matches!(&self.state, Some(st) if st.touched.is_empty()) {
            // Nothing structural changed since the last solve: the
            // maintained answers are the answers, at zero model cost.
            self.last_refresh = RefreshKind::Cached;
            return Refresh {
                stats: CommStats::new(self.k()),
                phases: 0,
                phase_components: Vec::new(),
                drr_depths: Vec::new(),
                edges_per_machine: vec![0; self.k()],
                sketch_builds: 0,
                sketch_cache_hits: 0,
            };
        }
        let (active, active_count) = match &self.state {
            None => (None, 0),
            // Supergraph contraction densifies the label space with global
            // prefix sums, so a restricted run's dense ids (and hence its
            // merge trajectory) differ from the full run's. Splicing would
            // mix two merge histories; refresh fully instead.
            Some(_) if ecfg.contract => (None, 0),
            Some(st) => {
                let mask: Vec<bool> = st
                    .labels
                    .iter()
                    .map(|lab| st.touched.contains(lab))
                    .collect();
                let count = mask.iter().filter(|&&a| a).count();
                (Some(mask), count)
            }
        };
        let seed = self.inner.seed();
        let mut engine = Engine::new(
            self.inner.sharded(),
            Mode::SpanningForest,
            seed,
            ecfg.clone(),
        );
        if let Some(mask) = &active {
            engine.restrict(mask);
        }
        let result = engine.run();
        let mut stats = result.stats.clone();
        let kind;
        match (active, self.state.take()) {
            (Some(mask), Some(old)) => {
                let mut labels = old.labels;
                for (v, lab) in labels.iter_mut().enumerate() {
                    if mask[v] {
                        *lab = result.labels[v];
                    }
                }
                let survivors: Vec<Edge> = old
                    .forest
                    .into_iter()
                    .filter(|e| !mask[e.u as usize])
                    .collect();
                let forest = splice_forest(&result.mst_edges, survivors);
                let certified = if self.cfg.certify {
                    let fresh_labels: FxHashSet<Label> = labels
                        .iter()
                        .zip(&mask)
                        .filter(|&(_, &a)| a)
                        .map(|(&lab, _)| lab)
                        .collect();
                    let (ok, cert_stats) = self.certify(&fresh_labels, &labels, &ecfg);
                    stats.absorb(&cert_stats);
                    ok
                } else {
                    true
                };
                self.state = Some(DynState {
                    labels,
                    forest,
                    touched: FxHashSet::default(),
                });
                if !certified {
                    // The sketches exposed a missed merge (a Monte-Carlo
                    // sampling whiff in the restricted run): escalate to a
                    // full refresh, keeping the bits spent so far on the
                    // books. The aborted attempt stays in the per-phase
                    // breakdown as a rolled-back span, so the §3.14 tiling
                    // invariant keeps holding against the merged stats.
                    self.state = None;
                    let span =
                        phase_breakdown(&self.cfg.trace.events_since(attempt_mark)).len() as u64;
                    let (rounds, bits) = (stats.rounds, stats.total_bits);
                    self.cfg
                        .trace
                        .emit(|| TraceEvent::DynEscalate { span, rounds, bits });
                    let mut full = self.refresh(ecfg.clone());
                    let mut merged = stats;
                    merged.absorb(&full.stats);
                    full.stats = merged;
                    return full;
                }
                kind = RefreshKind::Incremental {
                    active_vertices: active_count,
                };
            }
            (None, _) => {
                let forest = splice_forest(&result.mst_edges, Vec::new());
                self.state = Some(DynState {
                    labels: result.labels.clone(),
                    forest,
                    touched: FxHashSet::default(),
                });
                kind = RefreshKind::Full;
            }
            (Some(_), None) => unreachable!("restriction requires maintained state"),
        }
        self.last_refresh = kind;
        Refresh {
            stats,
            phases: result.phases,
            phase_components: result.phase_components,
            drr_depths: result.drr_depths,
            edges_per_machine: result.mst_edges_per_machine,
            sketch_builds: result.sketch_builds,
            sketch_cache_hits: result.sketch_cache_hits,
        }
    }

    /// The certification exchange: every machine sums the incidence
    /// sketches of its home vertices per refreshed label and ships the sum
    /// to the label's referee — the home machine of the canonical
    /// representative (labels *are* vertex ids). Linearity cancels intra-
    /// component edges exactly, so each referee sees zero iff its label
    /// class has no outgoing edge; the per-machine verdicts are OR-reduced
    /// at the coordinator with 1-bit flags.
    fn certify(
        &self,
        fresh_labels: &FxHashSet<Label>,
        labels: &[Label],
        ecfg: &EngineConfig,
    ) -> (bool, CommStats) {
        let k = self.k();
        let l = id_bits(self.n());
        let mut bsp = self.dyn_bsp(ecfg);
        let mut envelopes = Vec::new();
        for (i, per_machine) in self.sketches.iter().enumerate() {
            let mut agg: FxHashMap<Label, L0Sketch> = FxHashMap::default();
            for &v in self.inner.sharded().view(i).verts() {
                let lab = labels[v as usize];
                if fresh_labels.contains(&lab) {
                    agg.entry(lab)
                        .or_insert_with(|| L0Sketch::new(self.params))
                        .merge(&per_machine[&v]);
                }
            }
            for (label, sketch) in det::into_sorted_entries(agg) {
                let payload = Payload::CertSketch {
                    label,
                    sketch: Box::new(sketch),
                };
                let bits = payload.wire_bits_lw(l, l);
                envelopes.push(Envelope::with_bits(
                    i,
                    self.home.home(label as u32),
                    payload,
                    bits,
                ));
            }
        }
        bsp.superstep(envelopes);
        let inboxes = bsp.take_all_inboxes();
        let mut verdicts = vec![false; k];
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let mut sums: FxHashMap<Label, L0Sketch> = FxHashMap::default();
            for env in inbox {
                if let Payload::CertSketch { label, sketch } = env.payload {
                    match sums.get_mut(&label) {
                        Some(acc) => acc.merge(&sketch),
                        None => {
                            sums.insert(label, *sketch);
                        }
                    }
                }
            }
            verdicts[i] = det::any_value(&sums, |s| !s.is_zero());
        }
        let flag_bits = Payload::Flag { bit: false }.wire_bits_lw(l, l);
        bsp.superstep(
            (1..k)
                .map(|i| {
                    Envelope::with_bits(
                        i,
                        COORDINATOR,
                        Payload::Flag { bit: verdicts[i] },
                        flag_bits,
                    )
                })
                .collect(),
        );
        let bad = verdicts.iter().any(|&b| b);
        let n_labels = fresh_labels.len() as u64;
        let stats = bsp.into_stats();
        // The certification exchange is absorbed into the solve's stats,
        // so the event carries its cost and folds into the per-phase
        // breakdown as a `"certify"` row (keeping the tiling exact).
        let (rounds, bits) = (stats.rounds, stats.total_bits);
        self.cfg.trace.emit(|| TraceEvent::DynCertify {
            labels: n_labels,
            rounds,
            bits,
            ok: !bad,
        });
        (!bad, stats)
    }

    /// A superstep runner for the dynamic layer's own exchanges
    /// (certification, cycle replacement, replacement-edge search): the
    /// solve's network/encoding/transport envelope, the dynamic tracer,
    /// and the dynamic layer's fault plan — so chaos plans exercise these
    /// supersteps through the same reliable delivery as the engine's.
    fn dyn_bsp(&self, ecfg: &EngineConfig) -> Bsp<Payload> {
        let k = self.k();
        let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig {
            k,
            bandwidth: ecfg.bandwidth,
            n: self.n(),
            cost_model: ecfg.cost_model,
            encoding: ecfg.encoding,
        });
        crate::engine::attach_transport(&mut bsp, ecfg.transport, k);
        bsp.set_tracer(self.cfg.trace.clone());
        if let Some(plan) = self.cfg.faults.clone() {
            bsp.install_faults(plan, true);
        }
        bsp
    }

    fn compact_now(&mut self) {
        if self.inner.sharded().pending_half_ops() > 0 {
            self.inner.sharded_mut().compact();
            self.compactions += 1;
        }
    }

    fn report(
        &mut self,
        problem: &'static str,
        r: &Refresh,
        started: Instant,
        mark: usize,
    ) -> RunReport {
        // Bracketing the whole solve with the dynamic tracer yields a
        // breakdown that tiles `r.stats` exactly — engine segments, the
        // certify row, the incremental-MST segments, and (on escalation)
        // the rolled-back attempt rows all land inside the bracket —
        // provided the solve config threads the *same* tracer as
        // `DynConfig::trace` (as `kmm dyn --trace` does).
        let breakdown = self
            .cfg
            .trace
            .is_on()
            .then(|| phase_breakdown(&self.cfg.trace.events_since(mark)))
            .filter(|rows| !rows.is_empty());
        let report = RunReport {
            problem,
            stats: r.stats.clone(),
            phases: r.phases,
            sketch_builds: r.sketch_builds,
            sketch_cache_hits: r.sketch_cache_hits,
            update_rounds: self.epoch_rounds,
            update_bits: self.epoch_bits,
            faults_injected: r.stats.faults_injected + self.epoch_faults,
            retransmit_bits: r.stats.retransmit_bits + self.epoch_retransmit_bits,
            recovery_rounds: r.stats.recovery_rounds + self.epoch_recovery_rounds,
            wall: started.elapsed(),
            phase_breakdown: breakdown,
        };
        self.reset_epoch();
        report
    }

    fn reset_epoch(&mut self) {
        self.epoch_rounds = 0;
        self.epoch_bits = 0;
        self.epoch_faults = 0;
        self.epoch_retransmit_bits = 0;
        self.epoch_recovery_rounds = 0;
    }

    fn network(&self) -> NetworkConfig {
        NetworkConfig {
            k: self.k(),
            bandwidth: self.inner.defaults().bandwidth,
            n: self.n(),
            cost_model: self.inner.defaults().cost_model,
            encoding: self.inner.defaults().encoding,
        }
    }

    // -----------------------------------------------------------------
    // Accessors
    // -----------------------------------------------------------------

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Number of edges as of the last compaction (staged deltas land at
    /// the next solve or threshold crossing).
    pub fn m(&self) -> usize {
        self.inner.sharded().m()
    }

    /// The wrapped cluster (read access; solves go through the dynamic
    /// entry points so the maintained structure stays fresh).
    pub fn cluster(&self) -> &Cluster {
        &self.inner
    }

    /// The maintained canonical labels, if a solve has run.
    pub fn labels(&self) -> Option<&[Label]> {
        self.state.as_ref().map(|s| s.labels.as_slice())
    }

    /// The maintained spanning forest, if a solve has run.
    pub fn forest(&self) -> Option<&[Edge]> {
        self.state.as_ref().map(|s| s.forest.as_slice())
    }

    /// Which path the most recent solve took.
    pub fn last_refresh(&self) -> RefreshKind {
        self.last_refresh
    }

    /// Batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Compactions run so far (threshold-tripped or pre-solve).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Insertions and deletions applied so far.
    pub fn ops_applied(&self) -> (u64, u64) {
        (self.inserts, self.deletes)
    }

    /// Staged half-edge deltas not yet compacted.
    pub fn pending_half_ops(&self) -> usize {
        self.inner.sharded().pending_half_ops()
    }

    /// Cumulative update-phase accounting over the cluster's lifetime.
    pub fn update_stats(&self) -> &CommStats {
        &self.update_stats
    }

    /// The communication a *full re-ingestion* of the current edge set
    /// would cost under the same routing as the update path (coordinator →
    /// both endpoint homes, one superstep): the baseline the incremental
    /// path is measured against in kbench's dynamic family. Requires
    /// compacted shards.
    pub fn full_reingest_stats(&self) -> CommStats {
        debug_assert_eq!(self.pending_half_ops(), 0, "compact before measuring");
        let l = id_bits(self.n());
        let mut bsp: Bsp<Payload> = Bsp::new(self.network());
        crate::engine::attach_transport(&mut bsp, self.inner.defaults().transport, self.k());
        let mut envelopes = Vec::with_capacity(2 * self.m());
        for i in 0..self.k() {
            for e in self.inner.sharded().view(i).local_edges() {
                for (vertex, other) in [(e.u, e.v), (e.v, e.u)] {
                    let payload = Payload::EdgeUpdate {
                        vertex,
                        other,
                        weight: e.w,
                        insert: true,
                    };
                    let bits = payload.wire_bits_lw(l, l);
                    envelopes.push(Envelope::with_bits(
                        COORDINATOR,
                        self.home.home(vertex),
                        payload,
                        bits,
                    ));
                }
            }
        }
        bsp.superstep(envelopes);
        bsp.into_stats()
    }
}

/// Splices a weighted forest: freshly re-solved edges win over surviving
/// old edges *by endpoints*, so a delete-then-reinsert with a new weight
/// can never leave both the stale and the fresh copy of the same edge in
/// the forest (full-`Edge` dedup would keep both, since their weights
/// differ).
fn splice_forest(fresh: &[(u32, u32, u64)], survivors: Vec<Edge>) -> Vec<Edge> {
    let mut forest: Vec<Edge> = fresh.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
    forest.sort_unstable_by_key(|e| (e.u, e.v));
    forest.dedup_by_key(|e| (e.u, e.v));
    let resolved: FxHashSet<(u32, u32)> = forest.iter().map(|e| (e.u, e.v)).collect();
    forest.extend(
        survivors
            .into_iter()
            .filter(|e| !resolved.contains(&(e.u, e.v))),
    );
    forest.sort_unstable_by_key(|e| (e.u, e.v));
    debug_assert!(
        forest
            .windows(2)
            .all(|p| (p[0].u, p[0].v) != (p[1].u, p[1].v)),
        "spliced forest endpoints must be unique"
    );
    forest
}

/// Canonical (minimum-member) component labels of a forest over `n`
/// vertices.
fn forest_labels(n: usize, forest: &[Edge]) -> Vec<Label> {
    let mut uf = VertexUf::new(n);
    for e in forest {
        uf.union(e.u, e.v);
    }
    (0..n as u32).map(|v| Label::from(uf.find(v))).collect()
}

/// A plain union-find over vertex ids: path-halving, union by *minimum*
/// root — so every root is its component's canonical label.
struct VertexUf {
    parent: Vec<u32>,
}

impl VertexUf {
    fn new(n: usize) -> Self {
        VertexUf {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The maximum-key edge on the unique tree path between `u` and `v`
/// (which must be connected in the forest `adj` describes), as a
/// tie-free `(w, min, max)` key.
fn tree_path_max(adj: &FxHashMap<u32, Vec<(u32, u64)>>, u: u32, v: u32) -> (u64, u32, u32) {
    let mut parent: FxHashMap<u32, (u32, u64)> = FxHashMap::default();
    let mut queue = vec![u];
    let mut head = 0usize;
    while head < queue.len() {
        let x = queue[head];
        head += 1;
        if x == v {
            break;
        }
        for &(nb, w) in adj.get(&x).into_iter().flatten() {
            if nb != u && !parent.contains_key(&nb) {
                parent.insert(nb, (x, w));
                queue.push(nb);
            }
        }
    }
    let mut best: Option<(u64, u32, u32)> = None;
    let mut x = v;
    while x != u {
        let &(p, w) = parent.get(&x).expect("endpoints are tree-connected");
        let key = (w, x.min(p), x.max(p));
        if best.is_none_or(|b| key > b) {
            best = Some(key);
        }
        x = p;
    }
    best.expect("tree path has at least one edge")
}

/// The vertices reachable from `start` in the forest without crossing
/// the (still-present) deleted edge — one side of the split.
fn tree_piece(adj: &FxHashMap<u32, Vec<(u32, u64)>>, start: u32, del: Edge) -> Vec<u32> {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    seen.insert(start);
    let mut order = vec![start];
    let mut head = 0usize;
    while head < order.len() {
        let x = order[head];
        head += 1;
        for &(nb, _) in adj.get(&x).into_iter().flatten() {
            let crossing = (x.min(nb), x.max(nb)) == (del.u, del.v);
            if !crossing && seen.insert(nb) {
                order.push(nb);
            }
        }
    }
    order
}

/// A borrowed maintained sketch plus the shared functions — lets `apply`
/// update sketches without re-borrowing `self` per call.
struct SketchHandle<'a> {
    sketch: &'a mut L0Sketch,
    fns: &'a SketchFns,
    v: u32,
}

impl SketchHandle<'_> {
    fn add_incident_edge_for(self, other: u32) {
        self.sketch.add_incident_edge(self.fns, self.v, other);
    }

    fn remove_incident_edge_for(self, other: u32) {
        self.sketch.remove_incident_edge(self.fns, self.v, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Connectivity, Mst, Problem, SpanningForest};
    use kgraph::{generators, refalgo, Graph};

    fn mutated_graph(g: &Graph, batches: &[UpdateBatch]) -> Graph {
        let mut edges = g.edges().to_vec();
        for b in batches {
            b.apply_to_edge_list(g.n(), &mut edges)
                .expect("valid batch");
        }
        Graph::from_dedup_edges(g.n(), edges)
    }

    #[test]
    fn batch_validation_is_transactional() {
        let g = generators::path(10);
        let cluster = Cluster::builder(2).seed(1).ingest_graph(&g);
        let mut dc = DynamicCluster::wrap(cluster, DynConfig::default());
        // Second op is invalid: nothing of the batch may be staged.
        let bad = UpdateBatch::new().insert(0, 5, 1).insert(3, 4, 9);
        assert_eq!(
            dc.apply(&bad),
            Err(UpdateError::DuplicateEdge { u: 3, v: 4 })
        );
        assert_eq!(dc.pending_half_ops(), 0);
        assert_eq!(dc.batches(), 0);
        // Sequential semantics: delete-then-reinsert in one batch is fine.
        let ok = UpdateBatch::new().delete(3, 4).insert(3, 4, 7);
        dc.apply(&ok).expect("sequentially valid");
        assert_eq!(dc.pending_half_ops(), 4, "two ops, two half-edges each");
        // And the staged view reflects it before compaction.
        assert_eq!(dc.cluster().sharded().staged_edge_weight(3, 4), Some(7));
    }

    #[test]
    fn rejects_the_documented_error_cases() {
        let g = generators::cycle(8);
        let cluster = Cluster::builder(2).seed(2).ingest_graph(&g);
        let mut dc = DynamicCluster::wrap(cluster, DynConfig::default());
        assert_eq!(
            dc.apply(&UpdateBatch::new().insert(3, 3, 1)),
            Err(UpdateError::SelfLoop { v: 3 })
        );
        assert_eq!(
            dc.apply(&UpdateBatch::new().delete(0, 99)),
            Err(UpdateError::OutOfRange { u: 0, v: 99, n: 8 })
        );
        assert_eq!(
            dc.apply(&UpdateBatch::new().delete(2, 5)),
            Err(UpdateError::MissingEdge { u: 2, v: 5 })
        );
    }

    #[test]
    fn incremental_answers_match_fresh_static_runs() {
        let g = generators::planted_components(90, 3, 4, 11);
        let (k, seed) = (4, 13);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        let cfg = ConnectivityConfig::default();
        dc.connectivity(&cfg);
        assert_eq!(dc.last_refresh(), RefreshKind::Full);
        // Bridge components 0 and 1, and cut one edge inside component 2.
        let e = g.edges()[g.m() - 1];
        let batch = UpdateBatch::new().insert(0, 89, 3).delete(e.u, e.v);
        let applied = dc.apply(&batch).unwrap();
        assert_eq!(applied.ops, 2);
        assert!(applied.bits > 0);
        let run = dc.connectivity(&cfg);
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        assert!(run.report.update_bits > 0);
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::with(cfg));
        assert_eq!(
            run.output.labels, fresh.output.labels,
            "bit-identical labels"
        );
        assert_eq!(run.output.component_count(), fresh.output.component_count());
        let st = dc.spanning_forest(&MstConfig::default());
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Cached,
            "no updates in between"
        );
        let fresh_st = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(SpanningForest::with(MstConfig::default()));
        assert_eq!(
            st.output.edges, fresh_st.output.edges,
            "bit-identical forest"
        );
    }

    #[test]
    fn cached_path_costs_nothing() {
        let g = generators::grid(6, 6);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(3).seed(5).ingest_graph(&g),
            DynConfig::default(),
        );
        let cfg = ConnectivityConfig::default();
        let first = dc.connectivity(&cfg);
        let again = dc.connectivity(&cfg);
        assert_eq!(dc.last_refresh(), RefreshKind::Cached);
        assert_eq!(again.report.stats.rounds, 0);
        assert_eq!(again.report.stats.total_bits, 0);
        assert_eq!(first.output.labels, again.output.labels);
    }

    #[test]
    fn full_resolve_path_serves_mst() {
        let g = generators::randomize_weights(&generators::gnm(60, 150, 21), 100, 22);
        let (k, seed) = (3, 23);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        // Insert the two lightest-possible non-edges (found against the
        // generator output, so the batch always validates).
        let mut batch = UpdateBatch::new();
        let mut added = 0;
        'outer: for u in 0..60u32 {
            for v in (u + 1)..60u32 {
                if g.edge_weight(u, v).is_none() {
                    batch.push(UpdateOp::Insert { u, v, w: 1 });
                    added += 1;
                    if added == 2 {
                        break 'outer;
                    }
                }
            }
        }
        dc.apply(&batch).unwrap();
        let run = dc.run_full(Mst::with(MstConfig::default()));
        assert!(
            run.report.update_bits > 0,
            "update phase must be on the report"
        );
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        assert_eq!(
            run.output.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&mutated)),
            "full re-solve answers on the mutated edge set"
        );
    }

    #[test]
    fn compaction_threshold_bounds_the_log() {
        let g = generators::path(40);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(2).seed(3).ingest_graph(&g),
            DynConfig {
                compaction_threshold: 8,
                ..DynConfig::default()
            },
        );
        let mut compactions = 0;
        for i in 0..12u32 {
            let r = dc.apply(&UpdateBatch::new().insert(i, 39 - i, 2)).unwrap();
            compactions += u64::from(r.compacted);
            // Bounded: k shards, each log under threshold + one batch.
            assert!(dc.pending_half_ops() < 2 * (8 + 2), "log must stay bounded");
        }
        assert!(compactions > 0, "threshold must have tripped");
        assert_eq!(dc.compactions(), compactions);
    }

    #[test]
    fn mixed_trajectory_configs_force_a_full_refresh() {
        // Maintained structure from one merge history must never be served
        // under different trajectory knobs — the answers would not match a
        // fresh static run with those knobs.
        let g = generators::random_connected(80, 40, 41);
        let (k, seed) = (4, 43);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        dc.connectivity(&ConnectivityConfig::default());
        let odd = MstConfig {
            reps: 7,
            ..MstConfig::default()
        };
        let st = dc.spanning_forest(&odd);
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Full,
            "different reps must invalidate the maintained structure"
        );
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&g)
            .run(SpanningForest::with(odd));
        assert_eq!(st.output.edges, fresh.output.edges);
        // And back to the defaults: again a full refresh, again identical.
        let back = dc.connectivity(&ConnectivityConfig::default());
        assert_eq!(dc.last_refresh(), RefreshKind::Full);
        let fresh_conn = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&g)
            .run(Connectivity::default());
        assert_eq!(back.output.labels, fresh_conn.output.labels);
    }

    #[test]
    fn trace_parsing_round_trips() {
        let text = "# demo\n+ 0 9 5\n- 3 4\n---\n+ 3 4 2\n\n---\n";
        let batches = UpdateBatch::parse_trace(text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0].ops(),
            &[
                UpdateOp::Insert { u: 0, v: 9, w: 5 },
                UpdateOp::Delete { u: 3, v: 4 }
            ]
        );
        assert_eq!(batches[1].ops(), &[UpdateOp::Insert { u: 3, v: 4, w: 2 }]);
        let err = UpdateBatch::parse_trace("+ 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = UpdateBatch::parse_trace("+ 1 2\n* 3 4\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn deletions_that_split_components_are_re_solved() {
        // A path: deleting an interior edge splits the component; the
        // incremental path must discover the split and match fresh runs.
        let g = generators::path(50);
        let (k, seed) = (4, 31);
        let cfg = ConnectivityConfig::default();
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        dc.connectivity(&cfg);
        let batch = UpdateBatch::new().delete(24, 25);
        dc.apply(&batch).unwrap();
        let run = dc.connectivity(&cfg);
        assert_eq!(run.output.component_count(), 2);
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::with(cfg));
        assert_eq!(run.output.labels, fresh.output.labels);
    }

    /// A controllable weighted instance for the MST tiers: three
    /// components with distinct weights everywhere.
    ///
    /// ```text
    /// X: 0-1(10) 1-2(11) 2-3(12) 3-4(13) 4-5(14)  + 0-2(50) 2-4(60)
    /// Y: 6-7(20) 7-8(21) 8-9(22) 9-6(23)
    /// Z: 10-11(30)
    /// ```
    fn mst_playground() -> Graph {
        Graph::from_edges(
            12,
            [
                (0, 1, 10),
                (1, 2, 11),
                (2, 3, 12),
                (3, 4, 13),
                (4, 5, 14),
                (0, 2, 50),
                (2, 4, 60),
                (6, 7, 20),
                (7, 8, 21),
                (8, 9, 22),
                (9, 6, 23),
                (10, 11, 30),
            ],
        )
    }

    fn assert_mst_matches_fresh(
        dc: &mut DynamicCluster,
        applied: &[UpdateBatch],
        g: &Graph,
        k: usize,
        seed: u64,
        what: &str,
    ) {
        let cfg = MstConfig::default();
        let run = dc.mst(&cfg);
        let mutated = mutated_graph(g, applied);
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Mst::with(cfg));
        assert_eq!(run.output.edges, fresh.output.edges, "{what}: forest edges");
        assert_eq!(
            run.output.total_weight, fresh.output.total_weight,
            "{what}: weight"
        );
        assert_eq!(
            run.output.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&mutated)),
            "{what}: Kruskal oracle"
        );
        assert!(
            run.output
                .edges
                .windows(2)
                .all(|p| (p[0].u, p[0].v) != (p[1].u, p[1].v)),
            "{what}: endpoint-unique forest"
        );
    }

    #[test]
    fn incremental_mst_covers_every_tier() {
        let g = mst_playground();
        let (k, seed) = (3, 61);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        dc.mst(&MstConfig::default());
        assert_eq!(dc.last_refresh(), RefreshKind::Full);
        let mut applied: Vec<UpdateBatch> = Vec::new();
        // Tier: cycle replacement. 1-3(5) closes the cycle 1-2-3 and
        // evicts 2-3(12); 5-6(99) joins X and Y (same group, no cycle).
        let b = UpdateBatch::new().insert(1, 3, 5).insert(5, 6, 99);
        dc.apply(&b).unwrap();
        applied.push(b);
        assert_mst_matches_fresh(&mut dc, &applied, &g, k, seed, "cycle tier");
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        // Tier: replacement-edge search with a survivor. Deleting tree
        // edge 7-8 splits {…,7} from {8,9}; the non-tree edge 9-6(23)
        // crosses the cut and must be swapped in.
        let b = UpdateBatch::new().delete(7, 8);
        dc.apply(&b).unwrap();
        applied.push(b);
        assert_mst_matches_fresh(&mut dc, &applied, &g, k, seed, "cut tier (replacement)");
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        // Tier: replacement-edge search with a genuine split. 10-11 is a
        // bridge: the zero sketch sum certifies there is no crossing edge.
        let b = UpdateBatch::new().delete(10, 11);
        dc.apply(&b).unwrap();
        applied.push(b);
        assert_mst_matches_fresh(&mut dc, &applied, &g, k, seed, "cut tier (split)");
        // No-op tier: deleting the non-tree edge 0-2(50) leaves the MST
        // untouched.
        let b = UpdateBatch::new().delete(0, 2);
        dc.apply(&b).unwrap();
        applied.push(b);
        assert_mst_matches_fresh(&mut dc, &applied, &g, k, seed, "non-tree delete");
        // Engine tier: a reweight (tree-delete + reinsert) plus a second
        // tree deletion in the same component.
        let b = UpdateBatch::new()
            .delete(4, 5)
            .insert(4, 5, 200)
            .delete(8, 9);
        dc.apply(&b).unwrap();
        applied.push(b);
        assert_mst_matches_fresh(&mut dc, &applied, &g, k, seed, "engine tier");
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        // Cached tier: an insert-then-delete nets out to nothing.
        let b = UpdateBatch::new().insert(0, 2, 50).delete(0, 2);
        dc.apply(&b).unwrap();
        applied.push(b);
        let run = dc.mst(&MstConfig::default());
        assert_eq!(dc.last_refresh(), RefreshKind::Cached);
        assert_eq!(run.report.stats.rounds, 0);
        assert_eq!(run.report.stats.total_bits, 0);
    }

    #[test]
    fn incremental_mst_routes_new_edges_under_criterion_b() {
        let g = mst_playground();
        let (k, seed) = (3, 67);
        let cfg = MstConfig {
            criterion: crate::mst::OutputCriterion::BothEndpoints,
            ..MstConfig::default()
        };
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        let full = dc.mst(&cfg);
        assert!(full.output.endpoint_routing.is_some());
        let batch = UpdateBatch::new().insert(1, 3, 5);
        dc.apply(&batch).unwrap();
        let run = dc.mst(&cfg);
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        let routing = run
            .output
            .endpoint_routing
            .expect("a swapped-in edge must be routed");
        assert!(routing.total_bits > 0);
        assert!(
            routing.total_bits < full.output.endpoint_routing.unwrap().total_bits,
            "only the new edge is routed, not the whole forest"
        );
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Mst::with(cfg));
        assert_eq!(run.output.edges, fresh.output.edges);
    }

    #[test]
    fn single_batch_reweight_agrees_everywhere() {
        // Satellite of ISSUE 10: a delete-then-reinsert with a different
        // weight inside ONE batch must flow identically through staged
        // compaction, the `apply_to_edge_list` oracle, and the
        // incremental conn + MST paths — and never leave two copies of
        // the edge behind.
        let g = mst_playground();
        let (k, seed) = (3, 71);
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig::default(),
        );
        let conn_cfg = ConnectivityConfig::default();
        let mst_cfg = MstConfig::default();
        dc.connectivity(&conn_cfg);
        dc.mst(&mst_cfg);
        let batch = UpdateBatch::new().delete(2, 3).insert(2, 3, 1);
        dc.apply(&batch).unwrap();
        // Staged overlay sees the reweight before compaction…
        assert_eq!(dc.cluster().sharded().staged_edge_weight(2, 3), Some(1));
        // …and the reference oracle agrees: one copy, new weight.
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let copies: Vec<_> = mutated
            .edges()
            .iter()
            .filter(|e| (e.u, e.v) == (2, 3))
            .collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].w, 1);
        let conn = dc.connectivity(&conn_cfg);
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        let forest = dc.forest().expect("solved");
        assert!(
            forest
                .windows(2)
                .all(|p| (p[0].u, p[0].v) != (p[1].u, p[1].v)),
            "reweight must not leave a stale forest copy"
        );
        assert_eq!(
            forest.iter().filter(|e| (e.u, e.v) == (2, 3)).count(),
            1,
            "exactly the fresh copy survives the splice"
        );
        let fresh_conn = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::with(conn_cfg));
        assert_eq!(conn.output.labels, fresh_conn.output.labels);
        let mst = dc.mst(&mst_cfg);
        let fresh_mst = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Mst::with(mst_cfg));
        assert_eq!(mst.output.edges, fresh_mst.output.edges);
        assert!(
            mst.output
                .edges
                .iter()
                .any(|e| (e.u, e.v, e.w) == (2, 3, 1)),
            "the reweighted edge is now light enough for the MST"
        );
    }

    /// Poisons `v`'s maintained incidence sketch with a phantom edge, so
    /// the next certification over `v`'s component cannot cancel to zero
    /// and must escalate.
    fn poison_sketch(dc: &mut DynamicCluster, v: u32) {
        let DynamicCluster {
            sketches,
            fns,
            home,
            ..
        } = dc;
        let m = home.home(v);
        sketches[m]
            .get_mut(&v)
            .expect("home vertex has a sketch")
            .add_incident_edge(fns, v, v ^ 1);
    }

    fn assert_tiles(rows: &[kmachine::trace::PhaseSummary], stats: &CommStats, what: &str) {
        let rounds: u64 = rows.iter().map(|r| r.rounds).sum();
        let bits: u64 = rows.iter().map(|r| r.bits).sum();
        assert_eq!(rounds, stats.rounds, "{what}: breakdown rounds must tile");
        assert_eq!(bits, stats.total_bits, "{what}: breakdown bits must tile");
    }

    #[test]
    fn conn_escalation_is_a_rolled_back_breakdown_span() {
        let g = generators::planted_components(60, 2, 4, 51);
        let (k, seed) = (3, 53);
        let trace = Tracer::recording();
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig {
                trace: trace.clone(),
                ..DynConfig::default()
            },
        );
        let cfg = ConnectivityConfig {
            trace: trace.clone(),
            ..ConnectivityConfig::default()
        };
        dc.connectivity(&cfg);
        let e = g.edges()[0];
        poison_sketch(&mut dc, e.u);
        let batch = UpdateBatch::new().delete(e.u, e.v);
        dc.apply(&batch).unwrap();
        let run = dc.connectivity(&cfg);
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Full,
            "certification must escalate to a full refresh"
        );
        // The answer still matches a fresh static run (the escape hatch).
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Connectivity::default());
        assert_eq!(run.output.labels, fresh.output.labels);
        // And the merged stats stay exactly tiled: the aborted attempt is
        // a first-class rolled-back span, the full refresh follows it.
        let rows = run.report.phase_breakdown.as_deref().expect("tracing on");
        assert_tiles(rows, &run.report.stats, "conn escalation");
        assert!(
            rows.iter().any(|r| r.rolled_back && r.label == "certify"),
            "the failed certification must be a rolled-back certify row"
        );
        assert!(
            rows.iter().any(|r| !r.rolled_back),
            "the full refresh rows stay live"
        );
    }

    #[test]
    fn mst_escalation_is_a_rolled_back_breakdown_span() {
        let g = mst_playground();
        let (k, seed) = (3, 73);
        let trace = Tracer::recording();
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig {
                trace: trace.clone(),
                ..DynConfig::default()
            },
        );
        let cfg = MstConfig {
            trace: trace.clone(),
            ..MstConfig::default()
        };
        dc.mst(&cfg);
        poison_sketch(&mut dc, 7);
        let batch = UpdateBatch::new().delete(7, 8);
        dc.apply(&batch).unwrap();
        let run = dc.mst(&cfg);
        assert_eq!(
            dc.last_refresh(),
            RefreshKind::Full,
            "certification must escalate to a full MST re-solve"
        );
        let mutated = mutated_graph(&g, std::slice::from_ref(&batch));
        let fresh = Cluster::builder(k)
            .seed(seed)
            .ingest_graph(&mutated)
            .run(Mst::with(MstConfig::default()));
        assert_eq!(run.output.edges, fresh.output.edges);
        let rows = run.report.phase_breakdown.as_deref().expect("tracing on");
        assert_tiles(rows, &run.report.stats, "mst escalation");
        assert!(
            rows.iter().any(|r| r.rolled_back && r.label == "mst_cut"),
            "the aborted replacement search must be a rolled-back row"
        );
        assert!(rows.iter().any(|r| !r.rolled_back));
    }

    #[test]
    fn incremental_mst_breakdown_tiles_clean_runs() {
        let g = mst_playground();
        let (k, seed) = (3, 79);
        let trace = Tracer::recording();
        let mut dc = DynamicCluster::wrap(
            Cluster::builder(k).seed(seed).ingest_graph(&g),
            DynConfig {
                trace: trace.clone(),
                ..DynConfig::default()
            },
        );
        let cfg = MstConfig {
            trace: trace.clone(),
            ..MstConfig::default()
        };
        dc.mst(&cfg);
        let batch = UpdateBatch::new().insert(1, 3, 5).delete(10, 11);
        dc.apply(&batch).unwrap();
        let run = dc.mst(&cfg);
        assert!(matches!(dc.last_refresh(), RefreshKind::Incremental { .. }));
        let rows = run.report.phase_breakdown.as_deref().expect("tracing on");
        assert_tiles(rows, &run.report.stats, "incremental mst");
        for label in ["mst_cycle", "mst_cut", "certify"] {
            assert!(
                rows.iter().any(|r| r.label == label && !r.rolled_back),
                "row {label} must be present and live"
            );
        }
    }
}
