//! `O(log n)`-approximate minimum cut (paper §3.2, Theorem 3).
//!
//! Karger random-sampling probes \[18\], as proposed for the CONGEST model in
//! Ghaffari–Kuhn \[15\], with our fast connectivity algorithm as the
//! connectivity tester: sample every edge independently with geometrically
//! decreasing probabilities `p_i = 2^{-i}`; the first probe whose sampled
//! subgraph disconnects localizes the min cut weight λ within an `O(log n)`
//! factor (a cut of weight λ survives sampling w.h.p. while `p·λ ≳ log n`).
//!
//! Sampling uses shared randomness keyed by the canonical edge, so both
//! endpoint home machines make identical decisions with zero communication
//! — each probe's subsampled graph is materialized *per shard*
//! ([`kgraph::ShardedGraph::filter_edges`]), never centrally. Integer
//! weights are treated as edge multiplicities: an edge of weight `w`
//! survives with probability `1 − (1−p)^w`.

use crate::connectivity::{connected_components_sharded, ConnectivityConfig};
use kgraph::{Graph, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::message::Encoding;
use kmachine::metrics::CommStats;
use kmachine::trace::Tracer;
use kmachine::transport::TransportSel;
use krand::shared::{SharedRandomness, Use};

/// Configuration for the min-cut approximation.
#[derive(Clone, Debug)]
pub struct MinCutConfig {
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Sketch repetitions for the inner connectivity runs.
    pub reps: u32,
    /// Charge the §2.2 shared-randomness distribution cost.
    pub charge_shared_randomness: bool,
    /// Deterministic fault-injection plan every connectivity probe must
    /// survive (`None` — the default — keeps fault-free behaviour).
    pub faults: Option<kmachine::fault::FaultPlan>,
    /// How injected faults are survived (see
    /// [`crate::engine::RecoveryPolicy`]).
    pub recovery: crate::engine::RecoveryPolicy,
    /// Supergraph contraction in the inner connectivity probes
    /// (DESIGN.md §3.11; default `false`).
    pub contract: bool,
    /// Wire encoding the superstep layer charges bandwidth under (default
    /// per-message [`Encoding::Naive`]). Accounting only.
    pub encoding: Encoding,
    /// Byte transport for the inner connectivity probes (default
    /// [`TransportSel::Sim`]; see DESIGN.md §3.12).
    pub transport: TransportSel,
    /// Structured event tracer shared by all inner connectivity probes
    /// (DESIGN.md §3.14; default off).
    pub trace: Tracer,
}

impl Default for MinCutConfig {
    fn default() -> Self {
        MinCutConfig {
            bandwidth: Bandwidth::default(),
            reps: 5,
            charge_shared_randomness: true,
            faults: None,
            recovery: crate::engine::RecoveryPolicy::default(),
            contract: false,
            encoding: Encoding::Naive,
            transport: TransportSel::Sim,
            trace: Tracer::off(),
        }
    }
}

/// The result of a min-cut approximation run.
#[derive(Clone, Debug)]
pub struct MinCutOutput {
    /// The estimate `λ̂` (an `O(log n)`-approximation of λ w.h.p.).
    pub estimate: u64,
    /// The probe index at which the sampled graph first disconnected.
    pub disconnecting_probe: u32,
    /// Total probes run.
    pub probes: u32,
    /// Combined communication accounting over all probes.
    pub stats: CommStats,
}

/// Approximates the min cut of a *connected* graph `g` over `k` machines.
///
/// Returns `estimate = 0` immediately (after one probe) if `g` is already
/// disconnected.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::MinCut`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
///
/// ```
/// use kconn::mincut::{approx_min_cut, MinCutConfig};
/// use kgraph::generators;
///
/// // Two dense blocks joined by 2 unit bridges: lambda = 2.
/// let g = generators::barbell(16, 2, 1, 5);
/// let out = approx_min_cut(&g, 4, 5, &MinCutConfig::default());
/// // The estimate is within the Theorem-3 O(log n) factor of 2.
/// let ratio = (out.estimate.max(1) as f64 / 2.0).max(2.0 / out.estimate.max(1) as f64);
/// assert!(ratio <= 4.0 * (g.n() as f64).log2());
/// ```
pub fn approx_min_cut(g: &Graph, k: usize, seed: u64, cfg: &MinCutConfig) -> MinCutOutput {
    use crate::session::{Cluster, MinCut, Problem};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(MinCut::with(cfg.clone()))
        .output
}

/// Approximates the min cut directly on sharded storage (the streaming
/// ingestion path; see [`approx_min_cut`] for semantics).
pub fn approx_min_cut_sharded(sg: &ShardedGraph, seed: u64, cfg: &MinCutConfig) -> MinCutOutput {
    let k = sg.k();
    let shared = SharedRandomness::new(seed ^ 0xC07);
    let conn_cfg = ConnectivityConfig {
        bandwidth: cfg.bandwidth,
        reps: cfg.reps,
        charge_shared_randomness: cfg.charge_shared_randomness,
        run_output_protocol: true,
        faults: cfg.faults.clone(),
        recovery: cfg.recovery,
        contract: cfg.contract,
        encoding: cfg.encoding,
        transport: cfg.transport,
        trace: cfg.trace.clone(),
        ..ConnectivityConfig::default()
    };
    let mut stats = CommStats::new(k);
    // Probe i = 0 is p = 1 (the input graph itself). Each machine knows its
    // local maximum weight; the global max is free to aggregate in-model.
    let max_w = (0..k)
        .filter_map(|i| {
            let view = sg.view(i);
            view.verts()
                .iter()
                .flat_map(move |&v| view.neighbors(v).iter().map(|&(_, w)| w))
                .max()
        })
        .max()
        .unwrap_or(1);
    let max_probe = 2 + 64 - max_w.leading_zeros() + kmachine::bandwidth::ceil_log2(sg.n().max(2));
    let mut disconnecting = None;
    let mut probes = 0;
    for i in 0..max_probe {
        probes += 1;
        let sampled = sample_sharded(sg, &shared, i);
        let out = connected_components_sharded(&sampled, seed ^ (i as u64) << 32, &conn_cfg);
        stats.absorb(&out.stats);
        if out.component_count() > 1 {
            disconnecting = Some(i);
            break;
        }
    }
    let i_star = disconnecting.unwrap_or(max_probe);
    // λ is localized around 2^{i*} · Θ(log n); report the geometric pivot.
    // With p = 2^{-i*} the graph disconnected, so λ ≲ 2^{i*} · O(log n);
    // with p = 2^{-(i*-1)} it stayed connected, so λ ≳ 2^{i*-1} / O(log n).
    let estimate = if i_star == 0 { 0 } else { 1u64 << (i_star - 1) };
    MinCutOutput {
        estimate,
        disconnecting_probe: i_star,
        probes,
        stats,
    }
}

/// The sampled sharded subgraph of probe `i` (`p = 2^{-i}`): a
/// shared-randomness decision per canonical edge, so both endpoint home
/// shards keep or drop it identically with zero communication.
fn sample_sharded(sg: &ShardedGraph, shared: &SharedRandomness, probe: u32) -> ShardedGraph {
    if probe == 0 {
        return sg.clone();
    }
    let prf = shared.prf(Use::MinCutSample { probe });
    let n = sg.n();
    sg.filter_edges(|u, v, w| {
        // Keep with probability 1 − (1−p)^w: simulate w Bernoulli(p) coins
        // via one PRF stream per unit of weight (w is small in practice;
        // cap the loop at 64 units — beyond that survival is certain for
        // any p ≥ 2^-32 we ever probe... keep exact with the cap noted).
        let id = u as u64 * n as u64 + v as u64;
        let units = w.min(64);
        (0..units).any(|t| {
            let h = prf.eval(id, t);
            // Keep this unit with probability 2^{-probe}: all `probe`
            // leading bits zero.
            probe >= 64 || h >> (64 - probe) == 0
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, mincut, refalgo};

    fn shard(g: &Graph, k: usize, seed: u64) -> ShardedGraph {
        ShardedGraph::from_graph(g, &kgraph::Partition::random_vertex(g, k, seed))
    }

    #[test]
    fn sampling_probe0_is_identity() {
        let g = generators::gnm(50, 120, 1);
        let shared = SharedRandomness::new(2);
        let s = sample_sharded(&shard(&g, 4, 1), &shared, 0);
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn sampling_rate_halves_per_probe() {
        let g = generators::gnm(200, 4000, 3);
        let shared = SharedRandomness::new(4);
        let sg = shard(&g, 4, 3);
        let m1 = sample_sharded(&sg, &shared, 1).m() as f64;
        let m2 = sample_sharded(&sg, &shared, 2).m() as f64;
        assert!((m1 / g.m() as f64 - 0.5).abs() < 0.1, "p=1/2 keeps ~half");
        assert!(
            (m2 / g.m() as f64 - 0.25).abs() < 0.1,
            "p=1/4 keeps ~quarter"
        );
    }

    #[test]
    fn heavier_edges_survive_longer() {
        let n = 400;
        let edges: Vec<(u32, u32, u64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 16)).collect();
        let g = Graph::from_edges(n, edges);
        let shared = SharedRandomness::new(5);
        // p = 1/2 with w = 16: survival 1 - 2^-16 each.
        let s = sample_sharded(&shard(&g, 4, 5), &shared, 1);
        assert!(s.m() as f64 > 0.99 * g.m() as f64);
    }

    #[test]
    fn barbell_estimate_is_within_log_factor() {
        // Bridge weight 4 between two dense blocks: λ = 4.
        let g = generators::barbell(24, 4, 1, 7);
        let lambda = mincut::stoer_wagner(&g).unwrap();
        assert_eq!(lambda, 4);
        let out = approx_min_cut(&g, 4, 9, &MinCutConfig::default());
        let logn = (g.n() as f64).log2();
        let est = out.estimate.max(1) as f64;
        let ratio = (est / lambda as f64).max(lambda as f64 / est);
        assert!(
            ratio <= 4.0 * logn,
            "ratio {ratio} exceeds O(log n) = {logn}"
        );
        assert!(out.stats.rounds > 0);
    }

    #[test]
    fn denser_graphs_need_deeper_probes() {
        // λ(K_n restricted)… use G(n, m) with increasing density: the
        // disconnecting probe index must not decrease.
        let sparse = generators::random_connected(128, 30, 11);
        let dense = generators::random_connected(128, 1500, 12);
        let a = approx_min_cut(&sparse, 4, 13, &MinCutConfig::default());
        let b = approx_min_cut(&dense, 4, 13, &MinCutConfig::default());
        assert!(
            b.disconnecting_probe >= a.disconnecting_probe,
            "denser graph disconnects later: {} vs {}",
            b.disconnecting_probe,
            a.disconnecting_probe
        );
    }

    #[test]
    fn disconnected_input_estimates_zero() {
        let g = generators::planted_components(60, 2, 4, 15);
        assert!(refalgo::component_count(&g) > 1);
        let out = approx_min_cut(&g, 4, 16, &MinCutConfig::default());
        assert_eq!(out.estimate, 0);
        assert_eq!(out.disconnecting_probe, 0);
    }
}
