//! The 2-party simulation harness (Theorem 5's measurement side).
//!
//! Splits the `k` machines into Alice's half and Bob's half, runs the real
//! SCS verifier (a connectivity run on `H`) on the Figure-1 gadget, and
//! counts every bit that crosses the Alice/Bob cut. Theorem 5's argument
//! is that a `T`-round algorithm yields a 2-party protocol exchanging
//! `O(T · k² · polylog n)` bits, while Lemma 8 forces `Ω(b)` bits —
//! experiment E13 exhibits both sides empirically: cut bits grow linearly
//! in `b`, and `rounds · k² · W` upper-bounds the cut traffic.

use crate::connectivity::ConnectivityConfig;
use crate::engine::{Engine, EngineConfig, Mode};
use crate::lowerbound::disjointness::DisjointnessInstance;
use crate::lowerbound::figure1::scs_gadget;
use kgraph::Partition;

/// What one 2-party simulation measured.
#[derive(Clone, Debug)]
pub struct TwoPartyReport {
    /// Instance length `b`.
    pub b: usize,
    /// Ground truth: were the sets disjoint?
    pub disjoint: bool,
    /// The verifier's verdict (H is a spanning connected subgraph).
    pub verdict: bool,
    /// Bits that crossed the Alice/Bob machine cut.
    pub cut_bits: u64,
    /// Total bits over all links.
    pub total_bits: u64,
    /// Rounds of the k-machine execution.
    pub rounds: u64,
    /// The per-link bandwidth `W` used (for the `T·k²·W` comparison).
    pub link_bits: u64,
}

impl TwoPartyReport {
    /// The `T · k² · polylog(n)` upper bound on 2-party communication that
    /// the simulation argument extracts from a `T`-round execution.
    pub fn simulation_budget(&self, k: usize) -> u64 {
        self.rounds * (k as u64) * (k as u64) * self.link_bits
    }
}

/// Runs the SCS verifier on the Figure-1 gadget with machines split into
/// Alice = `[0, k/2)` and Bob = `[k/2, k)`, and reports the cut traffic.
pub fn simulate_scs_two_party(
    inst: &DisjointnessInstance,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> TwoPartyReport {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "need an even machine count to split"
    );
    let (g, h_edges) = scs_gadget(inst);
    let h = g.edge_subgraph(&h_edges);
    let part = Partition::random_vertex(&g, k, seed);
    let sh = kgraph::ShardedGraph::from_graph(&h, &part);
    let engine_cfg = EngineConfig {
        bandwidth: cfg.bandwidth,
        reps: cfg.reps,
        charge_shared_randomness: cfg.charge_shared_randomness,
        run_output_protocol: cfg.run_output_protocol,
        max_phases: cfg.max_phases,
        merge: cfg.merge,
        cost_model: cfg.cost_model,
        sketch_reuse_period: cfg.sketch_reuse_period,
        faults: cfg.faults.clone(),
        recovery: cfg.recovery,
        contract: cfg.contract,
        encoding: cfg.encoding,
        transport: cfg.transport,
        trace: cfg.trace.clone(),
    };
    let mut engine = Engine::new(&sh, Mode::Connectivity, seed, engine_cfg);
    engine.set_cut((0..k).map(|m| m < k / 2).collect());
    let result = engine.run();
    let verdict = result.component_count() == 1;
    TwoPartyReport {
        b: inst.len(),
        disjoint: inst.disjoint(),
        verdict,
        cut_bits: result.stats.cut_bits,
        total_bits: result.stats.total_bits,
        rounds: result.stats.rounds,
        link_bits: cfg.bandwidth.bits_per_round(g.n()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConnectivityConfig {
        ConnectivityConfig::default()
    }

    #[test]
    fn verdict_matches_disjointness_ground_truth() {
        for seed in 0..8u64 {
            for force in [Some(true), Some(false)] {
                let inst = DisjointnessInstance::random(32, 300, seed, force);
                let r = simulate_scs_two_party(&inst, 4, seed + 100, &cfg());
                assert_eq!(r.verdict, r.disjoint, "seed {seed} force {force:?}");
            }
        }
    }

    #[test]
    fn cut_bits_grow_with_instance_length() {
        let small = DisjointnessInstance::random(32, 300, 1, Some(true));
        let large = DisjointnessInstance::random(256, 300, 1, Some(true));
        let a = simulate_scs_two_party(&small, 4, 2, &cfg());
        let b = simulate_scs_two_party(&large, 4, 2, &cfg());
        assert!(
            b.cut_bits > 3 * a.cut_bits,
            "8x the instance should move much more across the cut: {} vs {}",
            a.cut_bits,
            b.cut_bits
        );
    }

    #[test]
    fn simulation_budget_dominates_cut_traffic() {
        let inst = DisjointnessInstance::random(128, 250, 3, None);
        let r = simulate_scs_two_party(&inst, 4, 4, &cfg());
        assert!(
            r.simulation_budget(4) >= r.cut_bits,
            "T·k²·W = {} must bound the cut bits = {}",
            r.simulation_budget(4),
            r.cut_bits
        );
        assert!(r.cut_bits > 0);
        assert!(r.cut_bits <= r.total_bits);
    }
}
