//! The §4 lower-bound apparatus.
//!
//! The paper proves `Ω~(n/k²)` rounds for connectivity-flavored
//! verification problems by reducing random-input-partition 2-party set
//! disjointness (Lemma 8) to spanning-connected-subgraph (SCS) verification
//! on the Figure-1 gadget, then simulating any k-machine algorithm as a
//! 2-party protocol whose communication is the bits crossing the
//! Alice/Bob machine cut.
//!
//! * [`disjointness`] — instances and the random input partition model.
//! * [`figure1`] — the gadget graph `G` and subgraph `H` of Figure 1.
//! * [`simulation`] — runs the real SCS verifier with the machine set split
//!   between Alice and Bob and reports the cut traffic (experiment E13).

pub mod disjointness;
pub mod figure1;
pub mod simulation;

pub use disjointness::{DisjointnessInstance, RandomInputPartition};
pub use figure1::scs_gadget;
pub use simulation::{simulate_scs_two_party, TwoPartyReport};
