//! The Figure-1 gadget: spanning-connected-subgraph from set disjointness.
//!
//! For an instance `(X, Y)` of length `b`, the graph `G` has `n = 2b + 2`
//! vertices `s, t, u_1..u_b, v_1..v_b` and edges `(s,t)`, `(u_i,v_i)`,
//! `(s,u_i)`, `(v_i,t)` — diameter 2. The subgraph `H` keeps all `(u_i,v_i)`
//! and `(s,t)`, plus `(s,u_i)` iff `X[i] = 0` and `(v_i,t)` iff `Y[i] = 0`.
//!
//! `H` is a spanning connected subgraph of `G` **iff** `X` and `Y` are
//! disjoint: index `i` has `X[i] = Y[i] = 1` exactly when the pair
//! `{u_i, v_i}` loses both its attachments and floats away.

use crate::lowerbound::disjointness::DisjointnessInstance;
use kgraph::graph::Edge;
use kgraph::Graph;
use rustc_hash::FxHashSet;

/// Vertex ids of the gadget.
pub const S: u32 = 0;
/// The second special vertex `t`.
pub const T: u32 = 1;

/// The id of `u_i`.
pub fn u(i: usize) -> u32 {
    2 + i as u32
}

/// The id of `v_i` for instance length `b`.
pub fn v(i: usize, b: usize) -> u32 {
    2 + (b + i) as u32
}

/// Builds `(G, H)` for a disjointness instance.
pub fn scs_gadget(inst: &DisjointnessInstance) -> (Graph, FxHashSet<(u32, u32)>) {
    let b = inst.len();
    let n = 2 * b + 2;
    let mut edges: Vec<Edge> = Vec::with_capacity(3 * b + 1);
    let mut h: FxHashSet<(u32, u32)> = FxHashSet::default();
    let canon = |a: u32, c: u32| (a.min(c), a.max(c));
    edges.push(Edge::new(S, T, 1));
    h.insert(canon(S, T));
    for i in 0..b {
        edges.push(Edge::new(u(i), v(i, b), 1));
        h.insert(canon(u(i), v(i, b)));
        edges.push(Edge::new(S, u(i), 1));
        if !inst.x[i] {
            h.insert(canon(S, u(i)));
        }
        edges.push(Edge::new(v(i, b), T, 1));
        if !inst.y[i] {
            h.insert(canon(v(i, b), T));
        }
    }
    (Graph::from_dedup_edges(n, edges), h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::refalgo;

    #[test]
    fn gadget_shape_and_diameter() {
        let inst = DisjointnessInstance::random(16, 400, 1, None);
        let (g, _) = scs_gadget(&inst);
        assert_eq!(g.n(), 34);
        assert_eq!(g.m(), 3 * 16 + 1);
        assert!(refalgo::is_connected(&g));
        // Diameter 2: everything is within one hop of {s, t} which are
        // adjacent; check eccentricity of s is ≤ 2.
        assert!(refalgo::eccentricity(&g, S) <= 2);
    }

    #[test]
    fn h_is_scs_iff_disjoint() {
        for seed in 0..30u64 {
            for force in [Some(true), Some(false), None] {
                let inst = DisjointnessInstance::random(24, 350, seed, force);
                let (g, h) = scs_gadget(&inst);
                let hg = g.edge_subgraph(&h);
                assert_eq!(
                    refalgo::is_connected(&hg),
                    inst.disjoint(),
                    "seed {seed} force {force:?}"
                );
            }
        }
    }

    #[test]
    fn exactly_the_intersection_indices_disconnect() {
        // X[3] = Y[3] = 1, everything else 0.
        let mut inst = DisjointnessInstance {
            x: vec![false; 8],
            y: vec![false; 8],
        };
        inst.x[3] = true;
        inst.y[3] = true;
        let (g, h) = scs_gadget(&inst);
        let hg = g.edge_subgraph(&h);
        let labels = refalgo::connected_components(&hg);
        assert_eq!(refalgo::component_count(&hg), 2);
        // The floating component is exactly {u_3, v_3}.
        assert_eq!(labels[u(3) as usize], labels[v(3, 8) as usize]);
        assert_ne!(labels[u(3) as usize], labels[S as usize]);
        assert_eq!(labels[u(2) as usize], labels[S as usize]);
    }
}
