//! 2-party set disjointness in the random input partition model (§4).
//!
//! Alice holds `X ∈ {0,1}^b`, Bob holds `Y ∈ {0,1}^b`; they must decide
//! whether there is an index with `X[i] = Y[i] = 1`. In the *random input
//! partition* model each bit of the other player's input is additionally
//! revealed with probability 1/2 (Lemma 8 shows the problem still needs
//! `Ω(b)` bits of communication).

use krand::prf::Prf;

/// A set-disjointness instance.
#[derive(Clone, Debug)]
pub struct DisjointnessInstance {
    /// Alice's input vector.
    pub x: Vec<bool>,
    /// Bob's input vector.
    pub y: Vec<bool>,
}

impl DisjointnessInstance {
    /// A random instance where each bit is 1 with probability `density`
    /// (per mille). With `force` the instance is conditioned to be
    /// disjoint (`Some(true)`) or intersecting (`Some(false)`).
    pub fn random(b: usize, density_per_mille: u64, seed: u64, force: Option<bool>) -> Self {
        assert!(b > 0);
        let prf = Prf::new(seed).derive(0xD15);
        let mut x: Vec<bool> = (0..b as u64)
            .map(|i| prf.eval(0, i) % 1000 < density_per_mille)
            .collect();
        let mut y: Vec<bool> = (0..b as u64)
            .map(|i| prf.eval(1, i) % 1000 < density_per_mille)
            .collect();
        match force {
            Some(true) => {
                // Clear every intersection.
                for i in 0..b {
                    if x[i] && y[i] {
                        y[i] = false;
                    }
                }
            }
            Some(false) => {
                // Plant one intersection at a pseudo-random index.
                let i = (prf.eval(2, 0) % b as u64) as usize;
                x[i] = true;
                y[i] = true;
            }
            None => {}
        }
        DisjointnessInstance { x, y }
    }

    /// Whether the sets are disjoint (the answer the protocol must compute).
    pub fn disjoint(&self) -> bool {
        !self.x.iter().zip(&self.y).any(|(&a, &b)| a && b)
    }

    /// Instance length `b`.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the instance is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// The random reveals of the random-input-partition model: which of Bob's
/// bits Alice also sees and vice versa (each independently w.p. 1/2).
#[derive(Clone, Debug)]
pub struct RandomInputPartition {
    /// `y_to_alice[i]`: Alice also knows `Y[i]`.
    pub y_to_alice: Vec<bool>,
    /// `x_to_bob[i]`: Bob also knows `X[i]`.
    pub x_to_bob: Vec<bool>,
}

impl RandomInputPartition {
    /// Draws the reveal sets for an instance of length `b`.
    pub fn random(b: usize, seed: u64) -> Self {
        let prf = Prf::new(seed).derive(0x9EA);
        RandomInputPartition {
            y_to_alice: (0..b as u64).map(|i| prf.eval(0, i) & 1 == 1).collect(),
            x_to_bob: (0..b as u64).map(|i| prf.eval(1, i) & 1 == 1).collect(),
        }
    }

    /// In the reduction, vertex `u_i` is placed by Alice iff Bob was *not*
    /// given `X[i]` (and symmetrically for `v_i`); this accessor mirrors
    /// the paper's "if Alice received X\[i\]" phrasing.
    pub fn alice_places_u(&self, i: usize) -> bool {
        !self.x_to_bob[i]
    }

    /// Whether Bob places `v_i`.
    pub fn bob_places_v(&self, i: usize) -> bool {
        !self.y_to_alice[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_disjoint_and_intersecting() {
        for seed in 0..20u64 {
            let d = DisjointnessInstance::random(64, 300, seed, Some(true));
            assert!(d.disjoint());
            let i = DisjointnessInstance::random(64, 300, seed, Some(false));
            assert!(!i.disjoint());
        }
    }

    #[test]
    fn density_controls_bit_rate() {
        let sparse = DisjointnessInstance::random(2000, 100, 1, None);
        let dense = DisjointnessInstance::random(2000, 700, 1, None);
        let count = |v: &[bool]| v.iter().filter(|&&b| b).count();
        assert!(count(&sparse.x) < count(&dense.x));
        let rate = count(&dense.x) as f64 / 2000.0;
        assert!((rate - 0.7).abs() < 0.08);
    }

    #[test]
    fn reveals_are_roughly_half() {
        let p = RandomInputPartition::random(4000, 5);
        let c = p.y_to_alice.iter().filter(|&&b| b).count();
        assert!((1800..2200).contains(&c), "reveal count {c}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DisjointnessInstance::random(128, 500, 9, None);
        let b = DisjointnessInstance::random(128, 500, 9, None);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }
}
