//! The `O~(n/k²)`-round connected-components algorithm (paper §2,
//! Theorem 1).
//!
//! Monte-Carlo: with the default sketch repetitions the output labels match
//! the true connected components with high probability; every output is
//! cheap to validate against [`kgraph::refalgo::connected_components`].

use crate::engine::{Engine, EngineConfig, EngineResult, MergeStrategy, Mode, RecoveryPolicy};
use crate::messages::Label;
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::fault::FaultPlan;
use kmachine::message::Encoding;
use kmachine::metrics::CommStats;
use kmachine::trace::Tracer;
use kmachine::transport::TransportSel;

/// Configuration for a connectivity run.
#[derive(Clone, Debug)]
pub struct ConnectivityConfig {
    /// Per-link bandwidth policy (default: `8·log²n` bits per round).
    pub bandwidth: Bandwidth,
    /// Sketch repetitions (default 5).
    pub reps: u32,
    /// Charge the §2.2 shared-randomness distribution cost (default true).
    pub charge_shared_randomness: bool,
    /// Run the §2.6 component-counting output protocol (default true).
    pub run_output_protocol: bool,
    /// Optional hard phase cap (default: the paper's `12 log₂ n`).
    pub max_phases: Option<u32>,
    /// Merge-partner rule: DRR ranks (§2.5, default) or footnote 9's
    /// coin flips (the E17 ablation).
    pub merge: MergeStrategy,
    /// Which §1.1 communication restriction to charge rounds under
    /// (per-link default; per-machine for the E19 equivalence check).
    pub cost_model: kmachine::bandwidth::CostModel,
    /// Phases per iteration-0 sketch-function epoch (incremental sketch
    /// reuse; `0` rebuilds everything every phase — the ablation).
    pub sketch_reuse_period: u32,
    /// Deterministic fault-injection plan the run must survive (`None` —
    /// the default — keeps the fault-free behaviour bit for bit).
    pub faults: Option<FaultPlan>,
    /// How injected faults are survived (ack/retransmit + phase
    /// checkpoints, both on by default).
    pub recovery: RecoveryPolicy,
    /// Supergraph contraction after phase 0 (DESIGN.md §3.11; default
    /// `false` — the paper's sketch path, kept as the pinned ablation).
    pub contract: bool,
    /// Wire encoding the superstep layer charges bandwidth under (default
    /// per-message [`Encoding::Naive`]; [`Encoding::Varint`] batch-encodes
    /// each link's traffic). Accounting only — never the trajectory.
    pub encoding: Encoding,
    /// Byte transport carrying each superstep window (default
    /// [`TransportSel::Sim`], the in-process oracle; see DESIGN.md §3.12).
    pub transport: TransportSel,
    /// Structured event tracer (DESIGN.md §3.14; default off). Never
    /// changes outputs or [`CommStats`].
    pub trace: Tracer,
}

impl Default for ConnectivityConfig {
    fn default() -> Self {
        let e = EngineConfig::default();
        ConnectivityConfig {
            bandwidth: e.bandwidth,
            reps: e.reps,
            charge_shared_randomness: e.charge_shared_randomness,
            run_output_protocol: e.run_output_protocol,
            max_phases: e.max_phases,
            merge: e.merge,
            cost_model: e.cost_model,
            sketch_reuse_period: e.sketch_reuse_period,
            faults: e.faults,
            recovery: e.recovery,
            contract: e.contract,
            encoding: e.encoding,
            transport: e.transport,
            trace: e.trace,
        }
    }
}

impl ConnectivityConfig {
    fn engine(&self) -> EngineConfig {
        EngineConfig {
            bandwidth: self.bandwidth,
            reps: self.reps,
            charge_shared_randomness: self.charge_shared_randomness,
            run_output_protocol: self.run_output_protocol,
            max_phases: self.max_phases,
            merge: self.merge,
            cost_model: self.cost_model,
            sketch_reuse_period: self.sketch_reuse_period,
            faults: self.faults.clone(),
            recovery: self.recovery,
            contract: self.contract,
            encoding: self.encoding,
            transport: self.transport,
            trace: self.trace.clone(),
        }
    }
}

/// The result of a connectivity run.
#[derive(Clone, Debug)]
pub struct ConnectivityOutput {
    /// Final component label per vertex (labels are representative ids).
    pub labels: Vec<Label>,
    /// Full communication accounting (rounds = the model's cost).
    pub stats: CommStats,
    /// Phases executed (Lemma 7: `O(log n)` w.h.p.).
    pub phases: u32,
    /// Distinct labels at the start of each phase.
    pub phase_components: Vec<usize>,
    /// Max DRR tree depth per phase (Lemma 6: `O(log n)` w.h.p.).
    pub drr_depths: Vec<u32>,
    /// Component count from the §2.6 output protocol, if run.
    pub counted_components: Option<u64>,
    /// Part sketches built from scratch (local hashing work).
    pub sketch_builds: u64,
    /// Part sketches served from the incremental cache.
    pub sketch_cache_hits: u64,
}

impl ConnectivityOutput {
    /// Number of distinct final labels.
    pub fn component_count(&self) -> usize {
        let mut set = self.labels.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Whether two vertices ended in the same component.
    pub fn same_component(&self, a: u32, b: u32) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }
}

impl From<EngineResult> for ConnectivityOutput {
    fn from(r: EngineResult) -> Self {
        ConnectivityOutput {
            labels: r.labels,
            stats: r.stats,
            phases: r.phases,
            phase_components: r.phase_components,
            drr_depths: r.drr_depths,
            counted_components: r.counted_components,
            sketch_builds: r.sketch_builds,
            sketch_cache_hits: r.sketch_cache_hits,
        }
    }
}

/// Runs the connectivity algorithm on `g` over `k` machines under a random
/// vertex partition derived from `seed`.
///
/// Deprecated-in-place: a thin shim over the session API — it builds a
/// single-use [`crate::session::Cluster`] and runs
/// [`crate::session::Connectivity`] on it, so it is bit-identical to the
/// session path. New code that runs more than one algorithm on the same
/// input should build the cluster once and reuse it.
///
/// ```
/// use kconn::connectivity::{connected_components, ConnectivityConfig};
/// use kgraph::generators;
///
/// // Two planted components over 4 machines.
/// let g = generators::planted_components(120, 2, 3, 7);
/// let out = connected_components(&g, 4, 7, &ConnectivityConfig::default());
/// assert_eq!(out.component_count(), 2);
/// assert!(out.stats.rounds > 0); // every round is accounted
/// ```
pub fn connected_components(
    g: &Graph,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> ConnectivityOutput {
    use crate::session::{Cluster, Connectivity, Problem};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(Connectivity::with(cfg.clone()))
        .output
}

/// Runs the connectivity algorithm with an explicit partition — the
/// harness path for callers that carry their own partition (the
/// bipartiteness double-cover reduction, the §4 cut simulation); everyone
/// else goes through [`crate::session::Cluster`]. Shards the graph first —
/// the engine itself only ever sees per-machine views.
pub fn connected_components_with_partition(
    g: &Graph,
    part: &Partition,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> ConnectivityOutput {
    let sg = ShardedGraph::from_graph(g, part);
    connected_components_sharded(&sg, seed, cfg)
}

/// Runs the connectivity algorithm directly on sharded storage — the
/// streaming ingestion path (`ShardedGraph::from_stream`), with no central
/// `Graph` anywhere in the pipeline.
pub fn connected_components_sharded(
    sg: &ShardedGraph,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> ConnectivityOutput {
    Engine::new(sg, Mode::Connectivity, seed, cfg.engine())
        .run()
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    fn check(g: &Graph, k: usize, seed: u64) -> ConnectivityOutput {
        let out = connected_components(g, k, seed, &ConnectivityConfig::default());
        let truth = refalgo::connected_components(g);
        // Labels must induce exactly the true partition into components.
        for e in g.edges() {
            assert_eq!(
                out.labels[e.u as usize], out.labels[e.v as usize],
                "edge ({}, {}) endpoints must share a label",
                e.u, e.v
            );
        }
        let mut seen: std::collections::HashMap<Label, u32> = Default::default();
        for (v, &t) in truth.iter().enumerate() {
            let rep = seen.entry(out.labels[v]).or_insert(t);
            assert_eq!(*rep, t, "label classes must match true components");
        }
        assert_eq!(out.component_count(), refalgo::component_count(g));
        if let Some(c) = out.counted_components {
            assert_eq!(c as usize, refalgo::component_count(g));
        }
        out
    }

    #[test]
    fn single_edge_graph() {
        let g = Graph::unweighted(4, [(0, 1)]);
        let out = check(&g, 2, 7);
        assert_eq!(out.component_count(), 3);
    }

    #[test]
    fn path_graph_small() {
        let g = generators::path(40);
        check(&g, 4, 1);
    }

    #[test]
    fn cycle_graph() {
        let g = generators::cycle(64);
        check(&g, 4, 2);
    }

    #[test]
    fn planted_components_various_k() {
        for (parts, k, seed) in [(1usize, 2usize, 3u64), (3, 4, 4), (7, 8, 5)] {
            let g = generators::planted_components(200, parts, 4, seed);
            let out = check(&g, k, seed * 11 + 1);
            assert_eq!(out.component_count(), parts);
        }
    }

    #[test]
    fn random_gnp_graph() {
        let g = generators::gnp(300, 0.01, 9);
        check(&g, 6, 10);
    }

    #[test]
    fn graph_with_isolated_vertices() {
        let g = Graph::unweighted(50, [(0, 1), (1, 2), (40, 41)]);
        let out = check(&g, 4, 11);
        assert_eq!(out.component_count(), 50 - 3 + 1 - 1 + 1 - 1);
    }

    #[test]
    fn phases_scale_logarithmically() {
        let g = generators::random_connected(512, 512, 13);
        let out = check(&g, 8, 14);
        let log = 9; // log2(512)
        assert!(
            out.phases <= 4 * log,
            "phases {} should be O(log n)",
            out.phases
        );
    }

    #[test]
    fn drr_depths_stay_logarithmic() {
        let g = generators::random_connected(400, 200, 15);
        let out = check(&g, 4, 16);
        for &d in &out.drr_depths {
            assert!(d <= 40, "DRR depth {d} should be O(log n)");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::gnp(200, 0.02, 17);
        let a = connected_components(&g, 4, 42, &ConnectivityConfig::default());
        let b = connected_components(&g, 4, 42, &ConnectivityConfig::default());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.stats.rounds, b.stats.rounds);
    }

    #[test]
    fn rounds_drop_superlinearly_with_k() {
        // The headline claim (E1 smoke test): quadrupling k should cut
        // rounds by much more than 4 on a big enough instance.
        let g = generators::gnm(4000, 12_000, 19);
        let cfg = ConnectivityConfig::default();
        let r4 = connected_components(&g, 4, 21, &cfg).stats.rounds;
        let r16 = connected_components(&g, 16, 21, &cfg).stats.rounds;
        // Linear scaling would give exactly 4x; the additive polylog terms
        // (pointer jumping, convergence flags) blunt the full 16x at this
        // instance size, but the ratio must clearly exceed linear.
        assert!(
            r4 > 4 * r16,
            "rounds(k=4)={r4} should be superlinearly above rounds(k=16)={r16}"
        );
    }

    #[test]
    fn sketch_cache_reuse_is_exercised_and_sound() {
        // Two planted components: once the smaller one finishes merging,
        // its parts stop relabeling and serve cached sketches while the
        // bigger one keeps going.
        let g = generators::planted_components(400, 2, 6, 27);
        let with = check(&g, 4, 29);
        assert!(
            with.sketch_cache_hits > 0,
            "multi-phase runs must reuse unchanged part sketches (builds {}, hits {})",
            with.sketch_builds,
            with.sketch_cache_hits
        );
        // The ablation rebuilds everything every phase — and still matches
        // the oracle (both paths are checked by `check`).
        let cfg = ConnectivityConfig {
            sketch_reuse_period: 0,
            ..ConnectivityConfig::default()
        };
        let without = connected_components(&g, 4, 29, &cfg);
        assert_eq!(without.sketch_cache_hits, 0);
        assert_eq!(
            without.component_count(),
            refalgo::component_count(&g),
            "reuse-disabled ablation must also be correct"
        );
        assert!(without.sketch_builds >= with.sketch_builds);
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = Graph::unweighted(10, []);
        let out = check(&g, 2, 23);
        assert_eq!(out.component_count(), 10);
        assert_eq!(out.phases, 1, "no outgoing edges anywhere: one probe phase");
    }
}
