//! The session API: ingest a graph into a cluster once, run many
//! algorithms on it.
//!
//! The k-machine model (paper §1.1) fixes a cluster — `k` machines, a
//! per-link bandwidth budget, a random vertex partition — and then runs
//! algorithms *on* that cluster. This module mirrors that shape in the
//! API: a [`ClusterBuilder`] captures the model parameters and ingests any
//! [`EdgeStream`] or `&Graph` into a reusable [`Cluster`] (the per-machine
//! [`ShardedGraph`] shards plus the public partition), and every algorithm
//! is a [`Problem`] value the cluster executes:
//!
//! ```
//! use kconn::session::{Cluster, Connectivity, Mst, Problem, SpanningForest};
//! use kconn::{ConnectivityConfig, MstConfig};
//! use kgraph::generators;
//!
//! let g = generators::randomize_weights(&generators::grid(6, 7), 100, 3);
//! // Ingest once: O(m/k) per machine, paid a single time …
//! let cluster = Cluster::builder(4).seed(7).ingest_graph(&g);
//! // … then run as many problems as needed on the same shards.
//! let conn = cluster.run(Connectivity::with(ConnectivityConfig::default()));
//! let mst = cluster.run(Mst::with(MstConfig::default()));
//! let st = cluster.run(SpanningForest::with(MstConfig::default()));
//! assert_eq!(conn.output.component_count(), 1);
//! assert_eq!(st.output.edges.len(), g.n() - 1);
//! assert!(mst.report.stats.rounds > st.report.stats.rounds);
//! ```
//!
//! Every run returns its problem-typed output alongside a common
//! [`RunReport`] (rounds, full [`CommStats`], sketch cache counters, wall
//! time), so harness code — the CLI, the benchmark suite, the conformance
//! tests — dispatches generically over `P: Problem` instead of hand-rolling
//! one match arm per algorithm.
//!
//! **Determinism.** A cluster built with `(k, seed)` from a graph `g` holds
//! exactly the shards the legacy one-shot entry points
//! (e.g. [`crate::connectivity::connected_components`]) build internally,
//! and `run` hands each problem the same `seed` — so running several
//! algorithms against one ingested cluster is bit-identical to running each
//! one-shot, which is property-tested across the scenario matrix in
//! `tests/session.rs`. The one-shot free functions survive as thin shims
//! over this module.

use crate::baselines::edge_boruvka::{edge_boruvka_sharded, CheckMode, EdgeBoruvkaOutput};
use crate::baselines::flooding::{flooding_sharded, FloodingOutput};
use crate::baselines::referee::{referee_sharded, RefereeOutput};
use crate::baselines::rep_mst::{rep_mst_sharded, RepMstOutput};
use crate::connectivity::{connected_components_sharded, ConnectivityConfig, ConnectivityOutput};
use crate::engine::EngineConfig;
use crate::mincut::{approx_min_cut_sharded, MinCutConfig, MinCutOutput};
use crate::mst::{minimum_spanning_tree_sharded, MstConfig, MstOutput, OutputCriterion};
use crate::st::{spanning_forest_sharded, SpanningForestOutput};
use kgraph::stream::EdgeStream;
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::bandwidth::{Bandwidth, CostModel};
use kmachine::metrics::CommStats;
use kmachine::trace::{PhaseSummary, Tracer};
use kmachine::transport::TransportSel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Builds a [`Cluster`]: the model parameters (`k`, seed, bandwidth and the
/// other [`EngineConfig`] knobs) plus one ingestion call.
///
/// The knobs set here become the cluster's *defaults*, used by
/// [`Cluster::run_default`]; a [`Problem`] constructed with an explicit
/// config ([`Problem::with`]) carries its own settings and ignores them.
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    k: usize,
    seed: u64,
    defaults: EngineConfig,
}

impl ClusterBuilder {
    /// Starts a builder for a `k`-machine cluster (the model needs
    /// `k ≥ 2`). Seed defaults to `0`; set it with [`ClusterBuilder::seed`].
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "the k-machine model requires k >= 2");
        ClusterBuilder {
            k,
            seed: 0,
            defaults: EngineConfig::default(),
        }
    }

    /// Master seed: drives the vertex partition, the shared randomness and
    /// every Monte-Carlo choice, exactly as the one-shot entry points.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Default per-link bandwidth policy for [`Cluster::run_default`].
    pub fn bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.defaults.bandwidth = bandwidth;
        self
    }

    /// Default sketch repetitions.
    pub fn reps(mut self, reps: u32) -> Self {
        self.defaults.reps = reps;
        self
    }

    /// Whether default configs charge the §2.2 shared-randomness cost.
    pub fn charge_shared_randomness(mut self, charge: bool) -> Self {
        self.defaults.charge_shared_randomness = charge;
        self
    }

    /// Default §1.1 communication cost model.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.defaults.cost_model = cost_model;
        self
    }

    /// Default phases-per-epoch for incremental sketch reuse.
    pub fn sketch_reuse_period(mut self, period: u32) -> Self {
        self.defaults.sketch_reuse_period = period;
        self
    }

    /// Which byte transport carries superstep windows (DESIGN.md §3.12):
    /// the in-process simulator ([`TransportSel::Sim`], the default and the
    /// accounting oracle) or one OS worker process per machine
    /// ([`TransportSel::Proc`]). Outputs and logical stats are
    /// transport-independent — pinned by `tests/transport.rs`.
    pub fn transport(mut self, transport: TransportSel) -> Self {
        self.defaults.transport = transport;
        self
    }

    /// Replaces the whole default [`EngineConfig`] at once.
    pub fn engine(mut self, defaults: EngineConfig) -> Self {
        self.defaults = defaults;
        self
    }

    /// Ingests a materialized graph: shards it under the hash-based random
    /// vertex partition derived from `(k, seed)` — the same partition every
    /// legacy `&Graph` front end used, so results are bit-identical.
    pub fn ingest_graph(&self, g: &Graph) -> Cluster {
        let part = Partition::random_vertex(g, self.k, self.seed);
        self.adopt(ShardedGraph::from_graph(g, &part))
    }

    /// Ingests a lazy edge stream straight into per-machine shards — the
    /// scalable path: no central edge list is ever materialized.
    pub fn ingest_stream(&self, stream: impl EdgeStream) -> Cluster {
        self.adopt(ShardedGraph::from_stream(stream, self.k, self.seed))
    }

    /// Adopts pre-sharded storage (must match the builder's `k`). Useful
    /// when shards were built elsewhere — e.g. by a subsampling pass.
    pub fn adopt(&self, sg: ShardedGraph) -> Cluster {
        assert_eq!(
            sg.k(),
            self.k,
            "adopted shards were built for a different machine count"
        );
        Cluster {
            sg,
            seed: self.seed,
            defaults: self.defaults.clone(),
            runs: AtomicU64::new(0),
        }
    }
}

// ---------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------

/// A fixed k-machine cluster with an ingested input: per-machine shards,
/// the public vertex partition, the master seed and the default knobs.
///
/// Build one with [`Cluster::builder`], then [`Cluster::run`] any number of
/// [`Problem`]s against it — ingestion is paid exactly once per cluster
/// (pinned by the `kgraph::sharded::ingest_count` counter in
/// `tests/session.rs`). A cluster's shards are immutable through this API;
/// when the edge set itself evolves, wrap the cluster into a
/// [`crate::dynamic::DynamicCluster`], which stages updates in place
/// instead of re-ingesting snapshots.
#[derive(Debug)]
pub struct Cluster {
    sg: ShardedGraph,
    seed: u64,
    defaults: EngineConfig,
    // Atomic (not Cell) so `&Cluster` stays shareable across threads — the
    // counter is diagnostics, it must not cost the type its `Sync`.
    runs: AtomicU64,
}

impl Clone for Cluster {
    fn clone(&self) -> Self {
        Cluster {
            sg: self.sg.clone(),
            seed: self.seed,
            defaults: self.defaults.clone(),
            runs: AtomicU64::new(self.runs()),
        }
    }
}

impl Cluster {
    /// Starts a [`ClusterBuilder`] for `k` machines.
    pub fn builder(k: usize) -> ClusterBuilder {
        ClusterBuilder::new(k)
    }

    /// Runs `problem` on this cluster, returning its typed output plus the
    /// common [`RunReport`]. Reusing a cluster is bit-identical to the
    /// one-shot entry points: the shards, partition and seed are the same.
    pub fn run<P: Problem>(&self, problem: P) -> Run<P::Output> {
        let trace = problem.tracer();
        let mark = trace.mark();
        let started = Instant::now();
        let output = problem.solve(self);
        let wall = started.elapsed();
        self.runs.fetch_add(1, Ordering::Relaxed);
        let phase_breakdown = trace
            .is_on()
            .then(|| kmachine::trace::phase_breakdown(&trace.events_since(mark)))
            .filter(|rows| !rows.is_empty());
        let (sketch_builds, sketch_cache_hits) = P::sketch_counters(&output);
        let stats = P::stats(&output).clone();
        let report = RunReport {
            problem: P::NAME,
            phases: P::phases(&output),
            sketch_builds,
            sketch_cache_hits,
            update_rounds: 0,
            update_bits: 0,
            faults_injected: stats.faults_injected,
            retransmit_bits: stats.retransmit_bits,
            recovery_rounds: stats.recovery_rounds,
            stats,
            wall,
            phase_breakdown,
        };
        Run { output, report }
    }

    /// Runs `P` configured from the cluster defaults (the builder's
    /// bandwidth / reps / cost-model knobs).
    pub fn run_default<P: Problem>(&self) -> Run<P::Output> {
        self.run(P::with(P::config_from(&self.defaults)))
    }

    /// Number of machines `k`.
    pub fn k(&self) -> usize {
        self.sg.k()
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.sg.n()
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        self.sg.m()
    }

    /// The master seed every run is keyed by.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ingested per-machine shards.
    pub fn sharded(&self) -> &ShardedGraph {
        &self.sg
    }

    /// Mutable shard access for the dynamic update layer
    /// ([`crate::dynamic::DynamicCluster`]), which stages edge deltas and
    /// compacts in place instead of re-ingesting. Crate-internal: a plain
    /// session cluster's shards are immutable by contract.
    pub(crate) fn sharded_mut(&mut self) -> &mut ShardedGraph {
        &mut self.sg
    }

    /// The public vertex partition (home hashing).
    pub fn partition(&self) -> &Partition {
        self.sg.partition()
    }

    /// The default [`EngineConfig`] knobs set on the builder.
    pub fn defaults(&self) -> &EngineConfig {
        &self.defaults
    }

    /// How many problems have been run on this cluster so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// The common accounting every [`Cluster::run`] returns alongside the
/// problem-typed output.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The problem's CLI/report name ([`Problem::NAME`]).
    pub problem: &'static str,
    /// Full communication accounting (rounds are the model's cost).
    pub stats: CommStats,
    /// Phase-like progress count: Borůvka phases for the engine problems,
    /// probes for min cut, graph-rounds for flooding, `0` where the notion
    /// does not apply (e.g. the referee's single collection).
    pub phases: u32,
    /// Part sketches built from scratch (`0` for sketch-free problems).
    pub sketch_builds: u64,
    /// Part sketches served from the incremental cache.
    pub sketch_cache_hits: u64,
    /// Rounds spent routing dynamic update batches since the previous
    /// solve on the same [`crate::dynamic::DynamicCluster`] (`0` for static
    /// runs — a plain `Cluster` has no update phase).
    pub update_rounds: u64,
    /// Bits moved by the update phase paired with `update_rounds`.
    pub update_bits: u64,
    /// Faults the run's [`kmachine::fault::FaultPlan`] injected (`0` for
    /// fault-free runs; mirrors `stats.faults_injected` so report
    /// consumers need not dig through [`CommStats`]).
    pub faults_injected: u64,
    /// Bits spent masking the faults: retransmissions of lost messages
    /// plus spurious duplicates (mirrors `stats.retransmit_bits`).
    pub retransmit_bits: u64,
    /// Rounds spent on recovery: ack/retransmit rounds plus crash
    /// rollback/restore (mirrors `stats.recovery_rounds`).
    pub recovery_rounds: u64,
    /// Wall-clock time of the simulated run (host-side, not a model cost).
    pub wall: Duration,
    /// Per-phase cost breakdown derived from the run's logical trace
    /// (DESIGN.md §3.14): one row per setup/phase/rollback/output segment,
    /// tiling `stats` exactly. `None` when tracing was off or the run
    /// emitted no segment events.
    pub phase_breakdown: Option<Vec<PhaseSummary>>,
}

/// One finished run: the problem's typed output plus its [`RunReport`].
#[derive(Clone, Debug)]
pub struct Run<O> {
    /// The problem-specific output (labels, forest edges, estimate, …).
    pub output: O,
    /// The common accounting.
    pub report: RunReport,
}

// ---------------------------------------------------------------------
// The Problem trait
// ---------------------------------------------------------------------

/// An algorithm the cluster can execute: a typed config in, a typed output
/// out, plus the hooks [`Cluster::run`] uses to fill the [`RunReport`].
///
/// Implemented by the four headliners ([`Connectivity`], [`Mst`],
/// [`SpanningForest`], [`MinCut`]) and the four baselines ([`Flooding`],
/// [`Referee`], [`EdgeBoruvka`], [`RepMst`]).
pub trait Problem {
    /// The problem's configuration type.
    type Config: Clone;
    /// The problem's output type.
    type Output;
    /// Name used by the CLI, reports and error messages.
    const NAME: &'static str;

    /// Constructs the problem with an explicit config.
    fn with(cfg: Self::Config) -> Self
    where
        Self: Sized;

    /// Derives a config from a cluster's default [`EngineConfig`] knobs
    /// (used by [`Cluster::run_default`]).
    fn config_from(defaults: &EngineConfig) -> Self::Config;

    /// Executes the problem against the cluster's shards and seed.
    fn solve(&self, cluster: &Cluster) -> Self::Output;

    /// The run's communication statistics.
    fn stats(output: &Self::Output) -> &CommStats;

    /// The run's phase-like progress count (see [`RunReport::phases`]).
    fn phases(_output: &Self::Output) -> u32 {
        0
    }

    /// `(sketch_builds, sketch_cache_hits)` of the run, where applicable.
    fn sketch_counters(_output: &Self::Output) -> (u64, u64) {
        (0, 0)
    }

    /// The tracer this problem's config carries (DESIGN.md §3.14).
    /// [`Cluster::run`] brackets the solve with it to derive
    /// [`RunReport::phase_breakdown`]. Problems without a trace knob keep
    /// the default off tracer.
    fn tracer(&self) -> Tracer {
        Tracer::off()
    }
}

// ---------------------------------------------------------------------
// Headliner problems
// ---------------------------------------------------------------------

/// Theorem 1: connected components in `O~(n/k²)` rounds.
#[derive(Clone, Debug, Default)]
pub struct Connectivity {
    /// The run configuration.
    pub cfg: ConnectivityConfig,
}

impl Problem for Connectivity {
    type Config = ConnectivityConfig;
    type Output = ConnectivityOutput;
    const NAME: &'static str = "conn";

    fn with(cfg: ConnectivityConfig) -> Self {
        Connectivity { cfg }
    }

    fn config_from(d: &EngineConfig) -> ConnectivityConfig {
        ConnectivityConfig {
            bandwidth: d.bandwidth,
            reps: d.reps,
            charge_shared_randomness: d.charge_shared_randomness,
            run_output_protocol: d.run_output_protocol,
            max_phases: d.max_phases,
            merge: d.merge,
            cost_model: d.cost_model,
            sketch_reuse_period: d.sketch_reuse_period,
            faults: d.faults.clone(),
            recovery: d.recovery,
            contract: d.contract,
            encoding: d.encoding,
            transport: d.transport,
            trace: d.trace.clone(),
        }
    }

    fn tracer(&self) -> Tracer {
        self.cfg.trace.clone()
    }

    fn solve(&self, cluster: &Cluster) -> ConnectivityOutput {
        connected_components_sharded(cluster.sharded(), cluster.seed(), &self.cfg)
    }

    fn stats(out: &ConnectivityOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &ConnectivityOutput) -> u32 {
        out.phases
    }

    fn sketch_counters(out: &ConnectivityOutput) -> (u64, u64) {
        (out.sketch_builds, out.sketch_cache_hits)
    }
}

/// Theorem 2: minimum spanning tree (criterion (a) or (b)).
#[derive(Clone, Debug, Default)]
pub struct Mst {
    /// The run configuration.
    pub cfg: MstConfig,
}

impl Problem for Mst {
    type Config = MstConfig;
    type Output = MstOutput;
    const NAME: &'static str = "mst";

    fn with(cfg: MstConfig) -> Self {
        Mst { cfg }
    }

    fn config_from(d: &EngineConfig) -> MstConfig {
        MstConfig {
            bandwidth: d.bandwidth,
            reps: d.reps,
            charge_shared_randomness: d.charge_shared_randomness,
            criterion: OutputCriterion::AnyMachine,
            max_phases: d.max_phases,
            faults: d.faults.clone(),
            recovery: d.recovery,
            contract: d.contract,
            encoding: d.encoding,
            transport: d.transport,
            trace: d.trace.clone(),
        }
    }

    fn tracer(&self) -> Tracer {
        self.cfg.trace.clone()
    }

    fn solve(&self, cluster: &Cluster) -> MstOutput {
        minimum_spanning_tree_sharded(cluster.sharded(), cluster.seed(), &self.cfg)
    }

    fn stats(out: &MstOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &MstOutput) -> u32 {
        out.phases
    }
}

/// §3.1: a spanning forest without the MWOE elimination overhead.
#[derive(Clone, Debug, Default)]
pub struct SpanningForest {
    /// The run configuration (shares [`MstConfig`]; the output criterion is
    /// always Theorem 2(a)'s relaxed one).
    pub cfg: MstConfig,
}

impl Problem for SpanningForest {
    type Config = MstConfig;
    type Output = SpanningForestOutput;
    const NAME: &'static str = "st";

    fn with(cfg: MstConfig) -> Self {
        SpanningForest { cfg }
    }

    fn config_from(d: &EngineConfig) -> MstConfig {
        Mst::config_from(d)
    }

    fn tracer(&self) -> Tracer {
        self.cfg.trace.clone()
    }

    fn solve(&self, cluster: &Cluster) -> SpanningForestOutput {
        spanning_forest_sharded(cluster.sharded(), cluster.seed(), &self.cfg)
    }

    fn stats(out: &SpanningForestOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &SpanningForestOutput) -> u32 {
        out.phases
    }
}

/// Theorem 3: `O(log n)`-approximate min cut via sampling probes.
#[derive(Clone, Debug, Default)]
pub struct MinCut {
    /// The run configuration.
    pub cfg: MinCutConfig,
}

impl Problem for MinCut {
    type Config = MinCutConfig;
    type Output = MinCutOutput;
    const NAME: &'static str = "mincut";

    fn with(cfg: MinCutConfig) -> Self {
        MinCut { cfg }
    }

    fn config_from(d: &EngineConfig) -> MinCutConfig {
        MinCutConfig {
            bandwidth: d.bandwidth,
            reps: d.reps,
            charge_shared_randomness: d.charge_shared_randomness,
            faults: d.faults.clone(),
            recovery: d.recovery,
            contract: d.contract,
            encoding: d.encoding,
            transport: d.transport,
            trace: d.trace.clone(),
        }
    }

    fn tracer(&self) -> Tracer {
        self.cfg.trace.clone()
    }

    fn solve(&self, cluster: &Cluster) -> MinCutOutput {
        approx_min_cut_sharded(cluster.sharded(), cluster.seed(), &self.cfg)
    }

    fn stats(out: &MinCutOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &MinCutOutput) -> u32 {
        out.probes
    }
}

// ---------------------------------------------------------------------
// Baseline problems
// ---------------------------------------------------------------------

/// §1.2 baseline: label-propagation flooding, `Θ(n/k + D)` rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flooding {
    /// Per-link bandwidth policy (flooding has no other knobs).
    pub bandwidth: Bandwidth,
}

impl Problem for Flooding {
    type Config = Bandwidth;
    type Output = FloodingOutput;
    const NAME: &'static str = "flooding";

    fn with(bandwidth: Bandwidth) -> Self {
        Flooding { bandwidth }
    }

    fn config_from(d: &EngineConfig) -> Bandwidth {
        d.bandwidth
    }

    fn solve(&self, cluster: &Cluster) -> FloodingOutput {
        flooding_sharded(cluster.sharded(), self.bandwidth)
    }

    fn stats(out: &FloodingOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &FloodingOutput) -> u32 {
        out.graph_rounds
    }
}

/// §2 warm-up baseline: collect the whole graph at one machine, `Ω(m/k)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Referee {
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
}

impl Problem for Referee {
    type Config = Bandwidth;
    type Output = RefereeOutput;
    const NAME: &'static str = "referee";

    fn with(bandwidth: Bandwidth) -> Self {
        Referee { bandwidth }
    }

    fn config_from(d: &EngineConfig) -> Bandwidth {
        d.bandwidth
    }

    fn solve(&self, cluster: &Cluster) -> RefereeOutput {
        referee_sharded(cluster.sharded(), self.bandwidth)
    }

    fn stats(out: &RefereeOutput) -> &CommStats {
        &out.stats
    }
}

/// Configuration of the [`EdgeBoruvka`] baseline.
#[derive(Clone, Copy, Debug)]
pub struct EdgeBoruvkaConfig {
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// How edge states are learned (batched pushes vs per-edge tests).
    pub mode: CheckMode,
}

impl Default for EdgeBoruvkaConfig {
    fn default() -> Self {
        EdgeBoruvkaConfig {
            bandwidth: Bandwidth::default(),
            mode: CheckMode::BatchedPush,
        }
    }
}

/// §1.2 baseline: GHS-style edge-checking Borůvka MST.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeBoruvka {
    /// The run configuration.
    pub cfg: EdgeBoruvkaConfig,
}

impl Problem for EdgeBoruvka {
    type Config = EdgeBoruvkaConfig;
    type Output = EdgeBoruvkaOutput;
    const NAME: &'static str = "edge-boruvka";

    fn with(cfg: EdgeBoruvkaConfig) -> Self {
        EdgeBoruvka { cfg }
    }

    fn config_from(d: &EngineConfig) -> EdgeBoruvkaConfig {
        EdgeBoruvkaConfig {
            bandwidth: d.bandwidth,
            mode: CheckMode::BatchedPush,
        }
    }

    fn solve(&self, cluster: &Cluster) -> EdgeBoruvkaOutput {
        edge_boruvka_sharded(
            cluster.sharded(),
            cluster.seed(),
            self.cfg.bandwidth,
            self.cfg.mode,
        )
    }

    fn stats(out: &EdgeBoruvkaOutput) -> &CommStats {
        &out.stats
    }

    fn phases(out: &EdgeBoruvkaOutput) -> u32 {
        out.phases
    }
}

/// §1.3 baseline: MST under the random *edge* partition (REP), `Θ~(n/k)`.
#[derive(Clone, Debug, Default)]
pub struct RepMst {
    /// The run configuration (shares [`MstConfig`]).
    pub cfg: MstConfig,
}

impl Problem for RepMst {
    type Config = MstConfig;
    type Output = RepMstOutput;
    const NAME: &'static str = "rep-mst";

    fn with(cfg: MstConfig) -> Self {
        RepMst { cfg }
    }

    fn config_from(d: &EngineConfig) -> MstConfig {
        Mst::config_from(d)
    }

    fn solve(&self, cluster: &Cluster) -> RepMstOutput {
        rep_mst_sharded(cluster.sharded(), cluster.seed(), &self.cfg)
    }

    fn stats(out: &RepMstOutput) -> &CommStats {
        &out.mst.stats
    }

    fn phases(out: &RepMstOutput) -> u32 {
        out.mst.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    #[test]
    fn cluster_reuse_matches_one_shot_paths() {
        let g = generators::randomize_weights(&generators::gnm(150, 400, 3), 500, 4);
        let (k, seed) = (4, 9);
        let cluster = Cluster::builder(k).seed(seed).ingest_graph(&g);
        let conn = cluster.run(Connectivity::default());
        let mst = cluster.run(Mst::default());
        let one_shot_conn =
            crate::connectivity::connected_components(&g, k, seed, &ConnectivityConfig::default());
        let one_shot_mst = crate::mst::minimum_spanning_tree(&g, k, seed, &MstConfig::default());
        assert_eq!(conn.output.labels, one_shot_conn.labels);
        assert_eq!(conn.report.stats.rounds, one_shot_conn.stats.rounds);
        assert_eq!(mst.output.edges, one_shot_mst.edges);
        assert_eq!(mst.report.stats.total_bits, one_shot_mst.stats.total_bits);
        assert_eq!(cluster.runs(), 2);
    }

    #[test]
    fn stream_ingestion_matches_graph_ingestion() {
        let (k, seed) = (5, 21);
        let builder = Cluster::builder(k).seed(seed);
        let a = builder.ingest_stream(generators::gnm_stream(300, 900, 17));
        let b = builder.ingest_graph(&generators::gnm(300, 900, 17));
        let ra = a.run(Connectivity::default());
        let rb = b.run(Connectivity::default());
        assert_eq!(ra.output.labels, rb.output.labels);
        assert_eq!(ra.report.stats.rounds, rb.report.stats.rounds);
    }

    #[test]
    fn run_default_uses_builder_knobs() {
        let g = generators::cycle(48);
        let cluster = Cluster::builder(3)
            .seed(5)
            .bandwidth(Bandwidth::Bits(64))
            .ingest_graph(&g);
        let by_default = cluster.run_default::<Connectivity>();
        let explicit = cluster.run(Connectivity::with(ConnectivityConfig {
            bandwidth: Bandwidth::Bits(64),
            ..ConnectivityConfig::default()
        }));
        assert_eq!(by_default.output.labels, explicit.output.labels);
        assert_eq!(by_default.report.stats.rounds, explicit.report.stats.rounds);
    }

    #[test]
    fn report_carries_problem_metadata() {
        let g = generators::planted_components(90, 3, 4, 7);
        let cluster = Cluster::builder(3).seed(11).ingest_graph(&g);
        let run = cluster.run(Connectivity::default());
        assert_eq!(run.report.problem, "conn");
        assert_eq!(run.report.phases, run.output.phases);
        assert_eq!(run.report.sketch_builds, run.output.sketch_builds);
        assert!(run.report.stats.rounds > 0);
        let flood = cluster.run(Flooding::default());
        assert_eq!(flood.report.problem, "flooding");
        assert_eq!(flood.output.component_count(), refalgo::component_count(&g));
    }

    #[test]
    #[should_panic(expected = "different machine count")]
    fn adopting_mismatched_shards_panics() {
        let g = generators::path(20);
        let sg = ShardedGraph::from_graph(&g, &Partition::random_vertex(&g, 4, 1));
        let _ = Cluster::builder(3).adopt(sg);
    }
}
