//! The shared Borůvka-style engine behind connectivity (§2) and MST (§3.1).
//!
//! The engine runs against [`kgraph::ShardedGraph`] — each simulated
//! machine touches only its own [`kgraph::ShardView`] (its home vertices
//! and their incident edges), exactly the information the k-machine model
//! grants it. No machine ever holds a reference to a central `Graph`; the
//! orchestrator merely schedules the per-machine steps and moves messages.
//!
//! One phase of the engine (paper §2.1):
//!
//! 1. **Outgoing-edge selection** (§2.3–§2.4). Every machine groups its
//!    vertices by component label into *parts*, builds one linear sketch per
//!    part, and sends it to the component's random proxy machine. The proxy
//!    sums part sketches — intra-component edges cancel by linearity — and
//!    samples a candidate outgoing edge. For MST, a `Θ(log n)`-iteration
//!    elimination loop repeats the sampling with sketches filtered to
//!    strictly lighter edges, converging on the minimum-weight outgoing
//!    edge (MWOE) w.h.p.
//! 2. **DRR** (§2.5). Each component draws a shared-randomness rank and
//!    connects to the component across its chosen edge iff that component's
//!    rank is larger, yielding a forest of `O(log n)`-depth trees (Lemma 6).
//! 3. **Merging.** Proxies pointer-jump to their tree's root label and
//!    broadcast a relabel command to every machine holding a part. (A
//!    non-converged jump relabels to an ancestor — still within the same
//!    true component, so correctness is unaffected; only progress slows.)
//!
//! Phase 0 uses the paper's own setup ("each node ... is also the component
//! proxy of its own component", §2.1): singleton components are proxied by
//! their home machines, so sketch aggregation is local and free; the sample
//! a singleton's sketch would return is a uniformly random incident edge
//! (MST: the minimum-key incident edge), which the home machine computes
//! directly.
//!
//! **Incremental sketch reuse** (DESIGN.md §3.7): the iteration-0 sketch
//! functions are re-derived only once per *epoch* of
//! [`EngineConfig::sketch_reuse_period`] phases, so a part whose component
//! label did not change since its sketch was built resends its cached
//! sketch instead of re-hashing every incident edge. Relabels invalidate
//! exactly the parts they touch; epoch rollover invalidates everything
//! (fresh randomness bounds any correlation between a failed sample and
//! later phases). Sketches themselves are still *sent* every phase at full
//! wire cost; what is amortized is the local rebuild work (the hot path)
//! **and** the §2.2 `Θ(log² n)`-bit function-seed distribution charge,
//! which is paid once per epoch — reused functions need no redistribution.
//! Set [`EngineConfig::sketch_reuse_period`] to `0` to recover the
//! per-phase charging and rebuilds of the pre-sharding design.
//!
//! All communication flows through [`kmachine::Bsp`], so every round and
//! bit is accounted exactly as in the paper's Lemma-1 analysis.
//!
//! **Fault tolerance** (DESIGN.md §3.10): with a
//! [`kmachine::fault::FaultPlan`] on [`EngineConfig::faults`], every
//! superstep runs the reliable ack/retransmit protocol (message-level
//! faults are masked below the engine), and scheduled machine crashes are
//! survived by phase checkpoints: labels, emitted forest edges and the
//! sketch-function epoch are snapshotted at each phase boundary, a
//! crashed machine re-reads its shard from durable storage
//! ([`kgraph::ShardedGraph::rebuild_shard`]), and the interrupted phase is
//! re-entered — replaying the exact fault-free trajectory, so outputs are
//! bit-identical to the fault-free run ([`RecoveryPolicy`],
//! `tests/chaos.rs`).

use crate::messages::{id_bits, EdgeKey, Label, Payload};
use crate::proxy::ProxyScheme;
use kgraph::ShardedGraph;
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::det;
use kmachine::fault::FaultPlan;
use kmachine::message::{Encoding, Envelope};
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use kmachine::par::par_for_each_state;
use kmachine::trace::{TraceEvent, Tracer};
use kmachine::transport::{make_transport, TransportSel};
use krand::shared::{SharedRandomness, Use};
use ksketch::{L0Sketch, SketchFns, SketchParams};
use rustc_hash::{FxHashMap, FxHashSet};

/// What the engine is computing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Connected components: one uniform outgoing edge per phase.
    Connectivity,
    /// Minimum spanning tree: MWOE via the edge-elimination loop.
    Mst,
    /// A (not necessarily minimum) spanning forest: connectivity's uniform
    /// outgoing edges, with the merge edges recorded as output — the
    /// paper's `O~(n/k²)` spanning-tree claim (§1, §3.1) without the
    /// `Θ(log n)` elimination overhead.
    SpanningForest,
}

/// How components pick their merge partner (§2.5 and footnote 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Distributed random ranking: merge toward the sampled neighbor iff
    /// its rank is larger — `O(log n)`-depth trees (Lemma 6).
    #[default]
    Drr,
    /// Footnote 9's "alternate and simpler idea": each component draws a
    /// bit; a merge happens only from a 0-component into a 1-component.
    /// Trees are stars (depth 1, no pointer-jumping iterations needed) but
    /// only ~1/4 of sampled edges merge per phase — the E17 ablation
    /// quantifies the trade.
    CoinFlip,
}

/// Default epoch length (in phases) for iteration-0 sketch-function reuse.
pub const DEFAULT_SKETCH_REUSE_PERIOD: u32 = 4;

/// How the engine survives an injected [`FaultPlan`] (DESIGN.md §3.10).
///
/// Two independent mechanisms, both on by default:
///
/// * **Ack/retransmit** — every superstep runs the
///   [`kmachine::bsp::Bsp`] reliable-delivery protocol, masking message
///   drops/duplicates/reorders/delays at the cost of `retransmit_bits`
///   and `recovery_rounds`. Disabling it lets the plan's faults through
///   verbatim (the ablation showing recovery is load-bearing — runs may
///   then diverge or panic on missing state).
/// * **Phase checkpoints** — labels, emitted forest edges and the
///   sketch-function epoch are snapshotted at every Borůvka phase
///   boundary; when a machine crash fires mid-phase, the crashed
///   machine's graph shard is re-read from durable storage
///   ([`kgraph::ShardedGraph::rebuild_shard`]), every machine rolls back
///   to the checkpoint, and the engine re-enters the interrupted phase —
///   replaying the exact trajectory of the fault-free run, so outputs
///   stay bit-identical. Disabling it degrades crash events to
///   message-level faults only (in-flight loss, still masked by
///   ack/retransmit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Run the per-superstep ack/retransmit protocol on lossy links.
    pub ack_retransmit: bool,
    /// Checkpoint at phase boundaries and re-enter a crashed phase.
    pub phase_checkpoints: bool,
    /// How many times one phase may be re-entered after crashes before
    /// the run gives up (a plan can schedule several crashes into the
    /// same phase; each event fires once, so retries are bounded by the
    /// plan — this is the safety valve).
    pub max_phase_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            ack_retransmit: true,
            phase_checkpoints: true,
            max_phase_retries: 8,
        }
    }
}

/// Engine configuration shared by connectivity and MST.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Sketch repetitions (failure probability decays exponentially).
    pub reps: u32,
    /// Charge the §2.2 shared-randomness distribution cost (E15 ablation).
    pub charge_shared_randomness: bool,
    /// Run the §2.6 component-counting output protocol at the end.
    pub run_output_protocol: bool,
    /// Hard phase cap; defaults to the paper's `12 log₂ n`.
    pub max_phases: Option<u32>,
    /// Merge-partner selection rule (§2.5 vs footnote 9).
    pub merge: MergeStrategy,
    /// Which §1.1 communication restriction to charge rounds under.
    pub cost_model: kmachine::bandwidth::CostModel,
    /// How many phases share one set of iteration-0 sketch functions, so
    /// unchanged parts can reuse their cached sketches. `0` disables reuse
    /// (fresh functions and full rebuilds every phase — the pre-sharding
    /// behaviour, kept as an ablation).
    pub sketch_reuse_period: u32,
    /// Deterministic fault-injection plan the run must survive (`None`
    /// keeps the historical fault-free behaviour bit for bit).
    pub faults: Option<FaultPlan>,
    /// How injected faults are survived (see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
    /// Supergraph contraction (DESIGN.md §3.11): after phase 0's merges,
    /// contract each component to an explicit supernode, drop
    /// intra-component edges, dedup multi-edges keeping the lightest (the
    /// original endpoints ride along so MST output stays exact), and run
    /// later phases on the contracted edge set with `⌈log₂ n'⌉`-bit
    /// labels. Contracted phases compute exact local MWOEs — no sketches —
    /// so the paper's sketch-based path (the default, `false`) is the
    /// ablation that keeps the Õ(n/k²) analysis pinned.
    pub contract: bool,
    /// Which wire encoding the superstep layer charges bandwidth under
    /// (per-message [`Encoding::Naive`], the historical default, or
    /// per-link batch [`Encoding::Varint`]). Changes only the charged
    /// sizes, never the trajectory or outputs.
    pub encoding: Encoding,
    /// Which byte transport carries each superstep window (DESIGN.md
    /// §3.12): the in-process simulator (default — the accounting oracle)
    /// or one OS worker process per machine exchanging frames over
    /// Unix-domain sockets. Outputs and logical [`CommStats`] are
    /// transport-independent (pinned by `tests/transport.rs`); only the
    /// physical byte counters differ.
    pub transport: TransportSel,
    /// Structured event tracer (DESIGN.md §3.14). Off by default; when on,
    /// the engine narrates setup/phase/rollback/output segments and the
    /// superstep layer narrates per-superstep loads and fault waves into
    /// the shared logical stream. Never changes outputs or [`CommStats`].
    pub trace: Tracer,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            bandwidth: Bandwidth::default(),
            reps: 5,
            charge_shared_randomness: true,
            run_output_protocol: true,
            max_phases: None,
            merge: MergeStrategy::Drr,
            cost_model: Default::default(),
            sketch_reuse_period: DEFAULT_SKETCH_REUSE_PERIOD,
            faults: None,
            recovery: RecoveryPolicy::default(),
            contract: false,
            encoding: Encoding::Naive,
            transport: TransportSel::Sim,
            trace: Tracer::off(),
        }
    }
}

/// Attaches the configured byte transport to a superstep runner
/// (DESIGN.md §3.12). [`TransportSel::Sim`] leaves the in-process path
/// byte-for-byte untouched — no bridge is installed, the simulator stays
/// the accounting oracle. [`TransportSel::Proc`] spawns one worker process
/// per machine and routes every window through the socket mesh.
pub(crate) fn attach_transport(bsp: &mut Bsp<Payload>, sel: TransportSel, k: usize) {
    if sel == TransportSel::Proc {
        bsp.set_transport(make_transport(sel, k));
    }
}

/// Everything the engine produces: the distributed outputs plus the full
/// communication accounting and instrumentation for the experiments.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Final component label of every vertex (gathered from home machines
    /// and *canonicalized*: each component is labeled by the smallest
    /// vertex id it contains). Canonical labels depend only on the
    /// component partition — not on the merge trajectory — so two runs
    /// that compute the same partition report bit-identical labels, which
    /// is what lets the dynamic layer splice incremental re-solves against
    /// fresh static runs. In a restricted run ([`Engine::restrict`])
    /// entries for inactive vertices are left at `0` and must be ignored.
    pub labels: Vec<Label>,
    /// Communication statistics (rounds are the model's cost measure).
    pub stats: CommStats,
    /// Phases executed (Lemma 7 predicts `O(log n)`).
    pub phases: u32,
    /// Distinct labels at the start of each phase.
    pub phase_components: Vec<usize>,
    /// Max DRR tree depth per phase (Lemma 6 predicts `O(log n)`).
    pub drr_depths: Vec<u32>,
    /// MST edges, flattened over machines (`Mode::Mst` only).
    pub mst_edges: Vec<(u32, u32, u64)>,
    /// How many MST edges each machine output (output criterion (a)).
    pub mst_edges_per_machine: Vec<usize>,
    /// Component count from the §2.6 output protocol, if run.
    pub counted_components: Option<u64>,
    /// Part sketches built from scratch (local hashing work).
    pub sketch_builds: u64,
    /// Part sketches served from the incremental cache.
    pub sketch_cache_hits: u64,
}

impl EngineResult {
    /// The number of distinct final labels (ground-truth comparable).
    pub fn component_count(&self) -> usize {
        let mut set: Vec<Label> = self.labels.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    }
}

/// A phase-boundary snapshot of the volatile per-machine state (see
/// [`Engine::take_checkpoint`]).
struct PhaseCheckpoint {
    /// Per-machine label maps.
    labels: Vec<FxHashMap<u32, Label>>,
    /// Per-machine emitted forest edges.
    mst_out: Vec<Vec<(u32, u32, u64)>>,
    /// The sketch-function epoch salt at the boundary.
    epoch_salt: u32,
    /// The epoch sketch functions cached at the boundary. Restoring them
    /// (instead of re-deriving) keeps the §2.2 distribution charge exactly
    /// where the fault-free run pays it: function seeds are part of each
    /// machine's durable checkpoint, so a re-entered phase never
    /// re-distributes mid-epoch.
    cached_fns: Option<(u32, SketchFns)>,
    /// Per-machine supergraph shards (§3.11). A crashed contracted phase
    /// must restore the supernodes too — labels alone cannot reconstruct
    /// the deduped contracted edge set.
    supers: Vec<FxHashMap<Label, SuperNode>>,
    /// Whether the supergraph had been built at the boundary.
    contracted: bool,
    /// The live label-space size `n'` at the boundary.
    n_active: usize,
}

/// One contracted component (§3.11), stored at its owner machine
/// `home(label)`. Adjacency is kept symmetric: an inter-component edge
/// appears in both endpoints' supernodes, which is what lets merge renames
/// be announced without any broadcast.
#[derive(Clone, Debug, Default)]
struct SuperNode {
    /// Machines hosting original vertices of this component (deduped),
    /// for relabel broadcasts back into the vertex space.
    parts: Vec<u16>,
    /// Deduped adjacency: neighbor label → the lightest original edge
    /// `(w, ou, ov)` crossing to it, minimal by the tie-free key
    /// `(w, min(ou,ov), max(ou,ov))` — so MST output stays exact.
    adj: FxHashMap<Label, (u64, u32, u32)>,
}

impl SuperNode {
    /// Min-merges one crossing edge into the adjacency.
    fn add_edge(&mut self, nb: Label, w: u64, ou: u32, ov: u32) {
        self.adj
            .entry(nb)
            .and_modify(|cur| {
                if edge_key(w, ou, ov) < edge_key(cur.0, cur.1, cur.2) {
                    *cur = (w, ou, ov);
                }
            })
            .or_insert((w, ou, ov));
    }

    /// Records a hosting machine.
    fn add_part(&mut self, m: u16) {
        if !self.parts.contains(&m) {
            self.parts.push(m);
        }
    }
}

/// The tie-free total order on original edges: `(w, min, max)`.
fn edge_key(w: u64, ou: u32, ov: u32) -> EdgeKey {
    (w, ou.min(ov), ou.max(ov))
}

/// Rewrites a supernode's adjacency under a label-rename map. Distinct old
/// keys may collapse onto one new key (their components merged into the
/// same root); colliding entries min-merge by the tie-free edge key.
/// Unrenamed neighbors keep their label.
fn rename_adj(node: SuperNode, map: &FxHashMap<Label, Label>) -> SuperNode {
    let mut out = SuperNode {
        parts: node.parts,
        adj: FxHashMap::default(),
    };
    for (nb, (w, ou, ov)) in node.adj {
        let nnb = map.get(&nb).copied().unwrap_or(nb);
        out.add_edge(nnb, w, ou, ov);
    }
    out
}

/// Drains a machine's inbox into the supergraph rename map
/// ([`Payload::SuperRelabel`]) and the vertex-space rename map
/// ([`Payload::Relabel`]).
fn drain_rename_maps(st: &mut MachineState) -> (FxHashMap<Label, Label>, FxHashMap<Label, Label>) {
    let mut smap = FxHashMap::default();
    let mut vmap = FxHashMap::default();
    for env in std::mem::take(&mut st.inbox) {
        match env.payload {
            Payload::SuperRelabel { old, new } => {
                smap.insert(old, new);
            }
            Payload::Relabel { old, new } => {
                vmap.insert(old, new);
            }
            _ => {}
        }
    }
    (smap, vmap)
}

/// Per-component state held at its proxy machine during one phase.
#[derive(Clone, Debug)]
struct ProxyComp {
    /// The component's own label (the key it is stored under).
    own: Label,
    /// Machines holding parts of this component (for relabel broadcasts).
    parts: Vec<u16>,
    /// Merged component sketch (phases ≥ 1).
    sketch: Option<L0Sketch>,
    /// Candidate outgoing edge currently being probed (canonical u < v).
    candidate: Option<(u32, u32)>,
    /// Probe replies for the candidate's two endpoints: (label, exists, w).
    info: [Option<(Label, bool, u64)>; 2],
    /// Resolved outgoing edge of this phase: (u, v, w) with the guarantee
    /// that exactly one endpoint is internal.
    chosen: Option<(u32, u32, u64)>,
    /// Label on the other side of `chosen`.
    other_label: Option<Label>,
    /// MST: best (lightest) verified outgoing key so far.
    best: Option<EdgeKey>,
    /// MST: the edge realizing `best`.
    best_edge: Option<(u32, u32, u64)>,
    /// MST: elimination finished for this component.
    elim_done: bool,
    /// MST: consecutive failed/empty samples. A component is only declared
    /// done after two strikes, so a single Monte-Carlo sampling failure
    /// (≈0.1% per query at 5 repetitions) cannot silently terminate the
    /// elimination with a non-minimal edge.
    none_streak: u8,
    /// DRR parent (merge target), if any.
    parent: Option<Label>,
    /// Pointer-jumping state.
    ptr: Label,
    /// Whether `ptr` is known to be the tree root.
    ptr_done: bool,
}

impl ProxyComp {
    fn new(label: Label) -> Self {
        ProxyComp {
            own: label,
            parts: Vec::new(),
            sketch: None,
            candidate: None,
            info: [None, None],
            chosen: None,
            other_label: None,
            best: None,
            best_edge: None,
            elim_done: false,
            none_streak: 0,
            parent: None,
            ptr: label,
            ptr_done: true,
        }
    }
}

/// One machine's state: its vertices, their labels, the components it
/// proxies this phase, and its I/O buffers.
struct MachineState {
    id: usize,
    verts: Vec<u32>,
    labels: FxHashMap<u32, Label>,
    proxied: FxHashMap<Label, ProxyComp>,
    inbox: Vec<Envelope<Payload>>,
    outbox: Vec<Envelope<Payload>>,
    mst_out: Vec<(u32, u32, u64)>,
    /// MST elimination: thresholds received for the parts this machine
    /// holds. Presence means "this component is still eliminating";
    /// `Some(key)` bounds the rebuild, `None` means rebuild unfiltered
    /// (the component is retrying after a failed first sample).
    thresholds: FxHashMap<Label, Option<EdgeKey>>,
    /// Incremental cache: the unfiltered iteration-0 sketch of each local
    /// part, valid for the current sketch-function epoch. Invalidated per
    /// label on relabel, wholesale on epoch rollover.
    part_cache: FxHashMap<Label, L0Sketch>,
    /// Supergraph shard (§3.11): the supernodes this machine owns, keyed
    /// by their current label. Empty until contraction builds it.
    supers: FxHashMap<Label, SuperNode>,
    /// Part sketches this machine built from scratch.
    sketch_builds: u64,
    /// Part sketches this machine served from `part_cache`.
    sketch_cache_hits: u64,
    /// Scratch flag used by convergence aggregation.
    flag: bool,
}

/// The engine itself. Borrows the sharded input graph (which carries the
/// partition) for the run.
pub struct Engine<'g> {
    g: &'g ShardedGraph,
    mode: Mode,
    cfg: EngineConfig,
    k: usize,
    n: usize,
    l: u64,
    /// Whether the supergraph has been built (contracted phases active).
    contracted: bool,
    /// Size of the live label space `n'` (`= n` until contraction).
    n_active: usize,
    /// Label width `⌈log₂ n'⌉` — what every label field is charged. Equals
    /// `l` until contraction shrinks the label space (the satellite-audit
    /// invariant: charging `l` for a supergraph id overstates bits).
    lw: u64,
    shared: SharedRandomness,
    scheme: ProxyScheme,
    bsp: Bsp<Payload>,
    machines: Vec<MachineState>,
    params: SketchParams,
    /// The iteration-0 sketch functions of the current epoch, keyed by tag.
    cached_fns: Option<(u32, SketchFns)>,
    /// Bumped by the termination guard to force fresh epoch functions.
    epoch_salt: u32,
    phase_components: Vec<usize>,
    drr_depths: Vec<u32>,
}

impl<'g> Engine<'g> {
    /// Builds an engine for one run. `seed` drives all randomness.
    pub fn new(g: &'g ShardedGraph, mode: Mode, seed: u64, cfg: EngineConfig) -> Self {
        let k = g.k();
        let n = g.n();
        let shared = SharedRandomness::new(seed);
        let net = NetworkConfig {
            k,
            bandwidth: cfg.bandwidth,
            n,
            cost_model: cfg.cost_model,
            encoding: cfg.encoding,
        };
        let mut bsp = Bsp::new(net);
        if let Some(plan) = cfg.faults.clone() {
            bsp.install_faults(plan, cfg.recovery.ack_retransmit);
        }
        attach_transport(&mut bsp, cfg.transport, k);
        bsp.set_tracer(cfg.trace.clone());
        let machines = (0..k)
            .map(|id| {
                let verts = g.view(id).verts().to_vec();
                let labels = verts.iter().map(|&v| (v, v as Label)).collect();
                MachineState {
                    id,
                    verts,
                    labels,
                    proxied: FxHashMap::default(),
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    mst_out: Vec::new(),
                    thresholds: FxHashMap::default(),
                    part_cache: FxHashMap::default(),
                    supers: FxHashMap::default(),
                    sketch_builds: 0,
                    sketch_cache_hits: 0,
                    flag: false,
                }
            })
            .collect();
        Engine {
            g,
            mode,
            k,
            n,
            l: id_bits(n),
            contracted: false,
            n_active: n,
            lw: id_bits(n),
            scheme: ProxyScheme::new(shared, k),
            shared,
            bsp,
            machines,
            params: SketchParams::for_graph(n, cfg.reps),
            cfg,
            cached_fns: None,
            epoch_salt: 0,
            phase_components: Vec::new(),
            drr_depths: Vec::new(),
        }
    }

    /// Tracks an Alice/Bob machine bipartition (§4 harness).
    pub fn set_cut(&mut self, side: Vec<bool>) {
        self.bsp.set_cut(side);
    }

    /// Restricts the run to the vertices with `active[v] == true`: every
    /// machine drops its inactive home vertices before phase 0, so the run
    /// touches only the induced subgraph — the `core::dynamic` incremental
    /// re-solve path, which re-runs only the components an update batch
    /// touched. Because every per-component decision (phase-0 sampling,
    /// sketch functions, proxies, DRR ranks, pointer jumping) is keyed by
    /// vertex ids and labels — never by global state — the restricted
    /// trajectory of an active component is identical to its trajectory in
    /// an unrestricted run on the same shards, which is what makes spliced
    /// answers bit-compatible with full fresh runs (`tests/dynamic.rs`).
    ///
    /// The caller must guarantee no edge joins an active and an inactive
    /// vertex (the dynamic layer's touched-component closure does); such an
    /// edge would appear as a never-cancelling outgoing edge. Must be
    /// called before [`Engine::run`].
    pub fn restrict(&mut self, active: &[bool]) {
        assert_eq!(active.len(), self.n, "active mask must cover all vertices");
        for st in &mut self.machines {
            st.verts.retain(|&v| active[v as usize]);
            det::retain_where(&mut st.labels, |&v, _| active[v as usize]);
        }
        // The closure precondition, checked where it is cheap: every
        // retained vertex's neighborhood must itself be active (each
        // machine validates only its own shard adjacency).
        #[cfg(debug_assertions)]
        for st in &self.machines {
            let view = self.g.view(st.id);
            for &v in &st.verts {
                for &(nb, _) in view.neighbors(v) {
                    debug_assert!(
                        active[nb as usize],
                        "restrict: active vertex {v} has an edge to inactive {nb} — \
                         the mask must be closed under adjacency"
                    );
                }
            }
        }
    }

    /// Runs the algorithm to completion and returns outputs + accounting.
    pub fn run(mut self) -> EngineResult {
        let setup_rounds_mark = self.bsp.stats().rounds;
        let setup_bits_mark = self.bsp.stats().total_bits;
        if self.cfg.charge_shared_randomness {
            // §2.2: M1 distributes Θ~(n/k) shared bits before phase 1.
            let bits = SharedRandomness::paper_shared_bits(self.n, self.k);
            let rounds = SharedRandomness::distribution_rounds(bits, self.k, self.bsp.link_bits());
            self.bsp.charge_modeled_rounds(rounds, bits, 0);
        }
        {
            let rounds = self.bsp.stats().rounds - setup_rounds_mark;
            let bits = self.bsp.stats().total_bits - setup_bits_mark;
            self.cfg.trace.emit(|| TraceEvent::Segment {
                name: "setup".to_string(),
                rounds,
                bits,
            });
        }
        let max_phases = self
            .cfg
            .max_phases
            .unwrap_or(12 * id_bits(self.n.max(2)) as u32 + 2);
        // Crash recovery (§3.10): checkpoint at every phase boundary so a
        // crashed phase can be rolled back and re-entered. Only armed when
        // the plan actually schedules crashes — message-level faults are
        // fully masked inside the superstep layer and need no checkpoints.
        let recovery_on = self.cfg.recovery.phase_checkpoints
            && self
                .cfg
                .faults
                .as_ref()
                .is_some_and(|f| !f.crashes.is_empty());
        // Once every scheduled crash superstep lies in the past no rollback
        // can ever be needed: stop refreshing the (O(n)-clone) checkpoint.
        let last_crash_superstep = self
            .cfg
            .faults
            .as_ref()
            .and_then(|f| f.crashes.iter().map(|c| c.superstep).max())
            .unwrap_or(0);
        let mut checkpoint = recovery_on.then(|| self.take_checkpoint());
        let mut phases = 0;
        let mut p = 0;
        let mut retries = 0u32;
        while p < max_phases {
            let crash_mark = self.bsp.crash_count();
            let rounds_mark = self.bsp.stats().rounds;
            let recovery_mark = self.bsp.stats().recovery_rounds;
            let bits_mark = self.bsp.stats().total_bits;
            let retransmit_mark = self.bsp.stats().retransmit_bits;
            let comp_mark = self.phase_components.len();
            let depth_mark = self.drr_depths.len();
            let sketch_mark = self.cfg.trace.is_on().then(|| {
                (
                    self.machines.iter().map(|st| st.sketch_builds).sum::<u64>(),
                    self.machines
                        .iter()
                        .map(|st| st.sketch_cache_hits)
                        .sum::<u64>(),
                )
            });
            let comps = self.count_labels();
            self.phase_components.push(comps);
            let contracted = self.contracted;
            self.cfg.trace.emit(|| TraceEvent::PhaseStart {
                phase: p,
                components: comps as u64,
                contracted,
            });
            let mut progressed = self.run_phase(p);
            if !progressed && p >= 1 && self.cfg.sketch_reuse_period != 0 && !self.contracted {
                // Termination guard (reuse epochs only): with cached
                // iteration-0 functions a failed Monte-Carlo sample would
                // repeat identically next phase, so "no outgoing edge
                // anywhere" must be confirmed once with fresh functions
                // before the run may stop.
                self.epoch_salt += 1;
                self.cached_fns = None;
                for st in &mut self.machines {
                    st.part_cache.clear();
                    st.proxied.clear();
                    st.thresholds.clear();
                }
                progressed = self.run_phase(p);
            }
            if recovery_on && self.bsp.crash_count() > crash_mark {
                // One or more machines crashed during this phase: discard
                // the aborted attempt (including anything computed from
                // state the crash should have wiped), restore from the
                // phase-boundary checkpoint, and re-enter the phase. The
                // aborted attempt's rounds and bits plus the restore
                // barrier are attributed to recovery — minus what the
                // superstep layer already attributed during the attempt,
                // so nothing is double-counted and the identities
                // `rounds − recovery_rounds = fault-free rounds` /
                // `total_bits − retransmit_bits = fault-free total_bits`
                // stay exact through crash re-entry (the re-entered phase
                // replays the fault-free trajectory, so its base cost is
                // the clean run's). Crash events fire once (keyed by
                // absolute superstep), so retries terminate.
                retries += 1;
                assert!(
                    retries <= self.cfg.recovery.max_phase_retries,
                    "phase {p} was re-entered {retries} times after crashes \
                     (RecoveryPolicy::max_phase_retries)"
                );
                let crashed = self.bsp.crashed_since(crash_mark);
                self.phase_components.truncate(comp_mark);
                self.drr_depths.truncate(depth_mark);
                self.rollback(
                    checkpoint.as_ref().expect("recovery_on keeps a checkpoint"),
                    &crashed,
                );
                let wasted_rounds = (self.bsp.stats().rounds - rounds_mark)
                    - (self.bsp.stats().recovery_rounds - recovery_mark);
                let wasted_bits = (self.bsp.stats().total_bits - bits_mark)
                    - (self.bsp.stats().retransmit_bits - retransmit_mark);
                self.bsp.charge_barrier(); // restart coordination
                self.bsp.attribute_recovery(wasted_rounds + 1, wasted_bits);
                let stats = self.bsp.stats();
                let (rounds, bits) = (stats.rounds - rounds_mark, stats.total_bits - bits_mark);
                let rec = stats.recovery_rounds - recovery_mark;
                let rtx = stats.retransmit_bits - retransmit_mark;
                let crashed_ids: Vec<u32> = crashed.iter().map(|&m| m as u32).collect();
                self.cfg.trace.emit(move || TraceEvent::Rollback {
                    phase: p,
                    crashed: crashed_ids,
                    rounds,
                    bits,
                    recovery_rounds: rec,
                    retransmit_bits: rtx,
                });
                continue;
            }
            retries = 0;
            phases = p + 1;
            {
                let stats = self.bsp.stats();
                let rounds = stats.rounds - rounds_mark;
                let bits = stats.total_bits - bits_mark;
                let rec = stats.recovery_rounds - recovery_mark;
                let rtx = stats.retransmit_bits - retransmit_mark;
                let (builds, hits) = sketch_mark.map_or((0, 0), |(b0, h0)| {
                    (
                        self.machines.iter().map(|st| st.sketch_builds).sum::<u64>() - b0,
                        self.machines
                            .iter()
                            .map(|st| st.sketch_cache_hits)
                            .sum::<u64>()
                            - h0,
                    )
                });
                self.cfg.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: p,
                    rounds,
                    bits,
                    recovery_rounds: rec,
                    retransmit_bits: rtx,
                    sketch_builds: builds,
                    sketch_cache_hits: hits,
                });
            }
            if !progressed {
                break;
            }
            if recovery_on && self.bsp.stats().supersteps <= last_crash_superstep {
                checkpoint = Some(self.take_checkpoint());
                self.cfg.trace.emit(|| TraceEvent::Checkpoint { phase: p });
            }
            p += 1;
        }
        let out_rounds_mark = self.bsp.stats().rounds;
        let out_bits_mark = self.bsp.stats().total_bits;
        let counted = if self.cfg.run_output_protocol {
            Some(self.output_protocol(phases))
        } else {
            None
        };
        {
            let rounds = self.bsp.stats().rounds - out_rounds_mark;
            let bits = self.bsp.stats().total_bits - out_bits_mark;
            self.cfg.trace.emit(|| TraceEvent::Segment {
                name: "output".to_string(),
                rounds,
                bits,
            });
        }
        // Gather outputs (instrumentation, not communication), then
        // canonicalize: relabel each component by its smallest member, so
        // the reported labels are a pure function of the partition. The
        // distributed state keeps its trajectory-dependent root labels;
        // only the gathered output is normalized.
        let mut labels = vec![0 as Label; self.n];
        let mut canon: FxHashMap<Label, Label> = FxHashMap::default();
        for st in &self.machines {
            for (&v, &lab) in &st.labels {
                labels[v as usize] = lab;
                canon
                    .entry(lab)
                    .and_modify(|m| *m = (*m).min(v as Label))
                    .or_insert(v as Label);
            }
        }
        for st in &self.machines {
            for v in det::sorted_keys(&st.labels) {
                labels[v as usize] = canon[&labels[v as usize]];
            }
        }
        let mst_edges_per_machine: Vec<usize> =
            self.machines.iter().map(|st| st.mst_out.len()).collect();
        let mst_edges = self
            .machines
            .iter()
            .flat_map(|st| st.mst_out.iter().copied())
            .collect();
        let sketch_builds = self.machines.iter().map(|st| st.sketch_builds).sum();
        let sketch_cache_hits = self.machines.iter().map(|st| st.sketch_cache_hits).sum();
        EngineResult {
            labels,
            stats: self.bsp.into_stats(),
            phases,
            phase_components: self.phase_components,
            drr_depths: self.drr_depths,
            mst_edges,
            mst_edges_per_machine,
            counted_components: counted,
            sketch_builds,
            sketch_cache_hits,
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery (DESIGN.md §3.10)
    // ------------------------------------------------------------------

    /// Snapshots the volatile per-machine state at a phase boundary: the
    /// label maps, the emitted forest edges, and the sketch-function epoch
    /// salt. That is everything a re-entered phase needs to replay the
    /// exact fault-free trajectory — per-phase proxy state and sketch
    /// caches are rebuilt (identically) by the phase itself.
    fn take_checkpoint(&self) -> PhaseCheckpoint {
        PhaseCheckpoint {
            labels: self.machines.iter().map(|st| st.labels.clone()).collect(),
            mst_out: self.machines.iter().map(|st| st.mst_out.clone()).collect(),
            epoch_salt: self.epoch_salt,
            cached_fns: self.cached_fns.clone(),
            supers: self.machines.iter().map(|st| st.supers.clone()).collect(),
            contracted: self.contracted,
            n_active: self.n_active,
        }
    }

    /// Restores the checkpoint after a crash: crashed machines re-read
    /// their graph shard from durable storage (base CSR + the
    /// `kgraph::sharded` delta log), every machine's labels and emitted
    /// edges roll back to the phase boundary, and all per-phase state is
    /// dropped. Checkpoints live on each machine's local durable storage,
    /// so the restore ships no bits; its cost is the coordination barrier
    /// the caller charges.
    fn rollback(&mut self, cp: &PhaseCheckpoint, crashed: &[usize]) {
        for &m in crashed {
            self.g.rebuild_shard(m);
        }
        for (i, st) in self.machines.iter_mut().enumerate() {
            st.labels = cp.labels[i].clone();
            st.mst_out = cp.mst_out[i].clone();
            st.supers = cp.supers[i].clone();
            st.proxied.clear();
            st.thresholds.clear();
            st.part_cache.clear();
            st.inbox.clear();
            st.outbox.clear();
        }
        self.epoch_salt = cp.epoch_salt;
        self.cached_fns = cp.cached_fns.clone();
        self.contracted = cp.contracted;
        self.n_active = cp.n_active;
        self.lw = id_bits(self.n_active);
    }

    // ------------------------------------------------------------------
    // Phase machinery
    // ------------------------------------------------------------------

    /// Runs one phase; returns whether any component found an outgoing edge.
    fn run_phase(&mut self, p: u32) -> bool {
        if self.cfg.contract && p >= 1 {
            if !self.contracted {
                self.build_supergraph(p);
            }
            return self.run_super_phase(p);
        }
        self.select_outgoing(p);
        // Phase-progress flag: any component with a resolved outgoing edge?
        let progressed =
            self.aggregate_flag(|st| det::any_value(&st.proxied, |c| c.chosen.is_some()));
        if !progressed {
            return false;
        }
        self.build_drr_forest(p);
        self.record_drr_depth();
        self.pointer_jump(p);
        self.relabel(p);
        true
    }

    /// Step 1: every component selects (at most) one outgoing edge.
    fn select_outgoing(&mut self, p: u32) {
        if p == 0 {
            self.phase0_local_select();
            return;
        }
        // Iteration-0 sketch functions: reused within the current epoch so
        // unchanged parts can serve their cached sketches.
        let mut iter = 0u32;
        let fns = self.iter0_fns(p);
        self.build_and_send_sketches(
            p, &fns, /*only_thresholded=*/ false, /*cacheable=*/ true,
        );
        self.proxy_merge_sketches(p, &fns);
        self.cached_fns = Some((self.iter0_tag(p), fns));
        self.probe_candidates(p);
        if self.mode != Mode::Mst {
            // Single sample: the verified candidate is the chosen edge.
            par_for_each_state(&mut self.machines, |_, st| {
                det::for_each_value_mut(&mut st.proxied, |c| {
                    finalize_candidate(c);
                    c.chosen = c.best_edge;
                });
            });
            return;
        }
        // MST: elimination loop (§3.1). Repeat: accept candidate as the new
        // best, broadcast the threshold, rebuild filtered sketches, sample
        // again — until every component is done (its lightest verified edge
        // is the MWOE w.h.p.).
        let max_iters = 2 * id_bits(self.n) as u32 + 8;
        loop {
            par_for_each_state(&mut self.machines, |_, st| {
                det::for_each_value_mut(&mut st.proxied, |c| {
                    finalize_candidate(c);
                });
            });
            let active = self.aggregate_flag(|st| det::any_value(&st.proxied, |c| !c.elim_done));
            if !active || iter >= max_iters {
                break;
            }
            iter += 1;
            self.broadcast_thresholds(p);
            // Elimination iterations always use fresh per-(phase, iteration)
            // functions: their sketches are threshold-filtered and never
            // cacheable.
            let fns = self.sketch_fns(p, iter);
            self.charge_fns_distribution(&fns);
            self.build_and_send_sketches(
                p, &fns, /*only_thresholded=*/ true, /*cacheable=*/ false,
            );
            self.proxy_merge_sketches(p, &fns);
            self.probe_candidates(p);
        }
        par_for_each_state(&mut self.machines, |_, st| {
            det::for_each_value_mut(&mut st.proxied, |c| {
                c.chosen = c.best_edge;
            });
        });
    }

    /// Phase 0 (paper §2.1): singleton components are proxied by their home
    /// machine, so selection is fully local. Connectivity samples a uniform
    /// incident edge; MST takes the minimum-key incident edge.
    fn phase0_local_select(&mut self) {
        let g = self.g;
        let mode = self.mode;
        let prf = self.shared.prf(Use::Phase0Sample);
        par_for_each_state(&mut self.machines, |id, st| {
            let view = g.view(id);
            for &v in &st.verts {
                let nbrs = view.neighbors(v);
                let mut comp = ProxyComp::new(v as Label);
                comp.parts = vec![id as u16];
                if !nbrs.is_empty() {
                    let (nb, w) = match mode {
                        Mode::Connectivity | Mode::SpanningForest => {
                            nbrs[prf.eval_mod(0, v as u64, nbrs.len() as u64) as usize]
                        }
                        Mode::Mst => *nbrs
                            .iter()
                            .min_by_key(|&&(nb, w)| {
                                let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
                                (w, a, b)
                            })
                            .expect("nonempty"),
                    };
                    let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
                    comp.chosen = Some((a, b, w));
                    comp.best_edge = comp.chosen;
                    // At phase 0 the other endpoint's label is its id.
                    comp.other_label = Some(nb as Label);
                }
                st.proxied.insert(v as Label, comp);
            }
        });
    }

    /// Derives the sketch functions for `(phase, elimination iteration)`.
    fn sketch_fns(&self, p: u32, iter: u32) -> SketchFns {
        // Distinct tag per (phase, iteration): phases are < 2^24 and
        // iterations < 64 in practice, so these tags never collide with the
        // `EPOCH_TAG_BASE` range of the iteration-0 epoch functions.
        SketchFns::new(&self.shared, p * 64 + iter, self.params)
    }

    /// Tag of the iteration-0 sketch functions for phase `p ≥ 1`: one tag
    /// per (reuse epoch, termination-guard salt), or the per-phase tag when
    /// reuse is disabled.
    fn iter0_tag(&self, p: u32) -> u32 {
        /// Disjoint from every `p * 64 + iter` elimination tag.
        const EPOCH_TAG_BASE: u32 = 1 << 30;
        match self.cfg.sketch_reuse_period {
            0 => p * 64,
            period => EPOCH_TAG_BASE + ((p - 1) / period) * 1024 + self.epoch_salt,
        }
    }

    /// The iteration-0 sketch functions for phase `p`, reusing the cached
    /// epoch functions when the tag matches. On epoch rollover (or with
    /// reuse disabled) derives fresh functions, charges their §2.2
    /// distribution cost, and drops every cached part sketch — stale
    /// sketches from old functions must never be merged with new ones.
    fn iter0_fns(&mut self, p: u32) -> SketchFns {
        let tag = self.iter0_tag(p);
        if let Some((t, fns)) = self.cached_fns.take() {
            if t == tag {
                return fns;
            }
        }
        let fns = SketchFns::new(&self.shared, tag, self.params);
        self.charge_fns_distribution(&fns);
        for st in &mut self.machines {
            st.part_cache.clear();
        }
        fns
    }

    /// §2.3 "without shared randomness": Θ(log² n) seed bits per phase are
    /// generated at M1 and distributed in O(1) rounds — charged here.
    fn charge_fns_distribution(&mut self, fns: &SketchFns) {
        if self.cfg.charge_shared_randomness {
            let bits = fns.random_bits();
            let rounds = SharedRandomness::distribution_rounds(bits, self.k, self.bsp.link_bits());
            self.bsp.charge_modeled_rounds(rounds, bits, 0);
        }
    }

    /// Builds part sketches and sends them to proxies. With
    /// `only_thresholded`, only parts that received an elimination threshold
    /// participate, and their sketches keep only edges strictly below it.
    /// With `cacheable` (the iteration-0 epoch-function path), unfiltered
    /// part sketches are served from / inserted into the per-machine cache.
    fn build_and_send_sketches(
        &mut self,
        p: u32,
        fns: &SketchFns,
        only_thresholded: bool,
        cacheable: bool,
    ) {
        let g = self.g;
        let part = self.g.partition();
        let scheme = &self.scheme;
        let l = self.l;
        let lw = self.lw;
        let params = self.params;
        let use_cache = cacheable && self.cfg.sketch_reuse_period != 0;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let view = g.view(id);
            // Group local vertices by label.
            let mut groups: FxHashMap<Label, Vec<u32>> = FxHashMap::default();
            for &v in &st.verts {
                groups.entry(st.labels[&v]).or_default().push(v);
            }
            for (label, vs) in det::into_sorted_entries(groups) {
                let active = st.thresholds.get(&label).copied();
                if only_thresholded && active.is_none() {
                    continue;
                }
                let thr = active.flatten();
                let build = |st: &mut MachineState| {
                    st.sketch_builds += 1;
                    let mut sk = L0Sketch::new(params);
                    for &v in &vs {
                        for &(nb, w) in view.neighbors(v) {
                            if let Some(t) = thr {
                                let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
                                if (w, a, b) >= t {
                                    continue;
                                }
                            }
                            sk.add_incident_edge(fns, v, nb);
                        }
                    }
                    sk
                };
                let sk = if use_cache && thr.is_none() {
                    if let Some(cached) = st.part_cache.get(&label) {
                        st.sketch_cache_hits += 1;
                        cached.clone()
                    } else {
                        let sk = build(st);
                        st.part_cache.insert(label, sk.clone());
                        sk
                    }
                } else {
                    build(st)
                };
                let dst = scheme.proxy_of(part, p, 0, label);
                let payload = Payload::PartSketch {
                    label,
                    sketch: Box::new(sk),
                };
                let bits = payload.wire_bits_lw(l, lw);
                st.outbox.push(Envelope::with_bits(id, dst, payload, bits));
            }
        });
        self.machines = machines;
        self.flush();
    }

    /// Proxies merge arriving part sketches and sample a candidate edge.
    fn proxy_merge_sketches(&mut self, _p: u32, fns: &SketchFns) {
        par_for_each_state(&mut self.machines, |_, st| {
            let inbox = std::mem::take(&mut st.inbox);
            // Components seen this superstep (for requerying).
            let mut touched: FxHashSet<Label> = FxHashSet::default();
            for env in inbox {
                if let Payload::PartSketch { label, sketch } = env.payload {
                    let comp = st
                        .proxied
                        .entry(label)
                        .or_insert_with(|| ProxyComp::new(label));
                    if !comp.parts.contains(&(env.src as u16)) {
                        comp.parts.push(env.src as u16);
                    }
                    match &mut comp.sketch {
                        Some(acc) => acc.merge(&sketch),
                        None => comp.sketch = Some(*sketch),
                    }
                    touched.insert(label);
                }
            }
            for label in det::sorted_members(&touched) {
                let comp = st.proxied.get_mut(&label).expect("just inserted");
                comp.candidate = comp
                    .sketch
                    .as_ref()
                    .and_then(|sk| sk.query(fns))
                    .map(|(u, v)| (u.min(v), u.max(v)));
                comp.info = [None, None];
                comp.sketch = None; // sampled once; free the memory
            }
        });
    }

    /// Probe the candidate edges: proxy asks both endpoints' home machines
    /// for current label, existence, and weight (two supersteps).
    fn probe_candidates(&mut self, _p: u32) {
        let part = self.g.partition();
        let l = self.l;
        let lw = self.lw;
        // Superstep A: queries out.
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let mut out = Vec::new();
            for (label, c) in det::sorted_entries(&st.proxied) {
                if let Some((u, v)) = c.candidate {
                    for (ask, other) in [(u, v), (v, u)] {
                        let payload = Payload::EdgeProbe {
                            comp: label,
                            ask,
                            other,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(id, part.home(ask), payload, bits));
                    }
                }
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        // Superstep B: homes answer from their authoritative label map and
        // their local shard adjacency (`ask` is homed here by construction).
        let g = self.g;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let view = g.view(id);
            let inbox = std::mem::take(&mut st.inbox);
            for env in inbox {
                if let Payload::EdgeProbe { comp, ask, other } = env.payload {
                    let label = *st.labels.get(&ask).expect("probe reached home machine");
                    let weight = view.edge_weight(ask, other);
                    let payload = Payload::EdgeProbeReply {
                        comp,
                        vertex: ask,
                        label,
                        exists: weight.is_some(),
                        weight: weight.unwrap_or(0),
                    };
                    let bits = payload.wire_bits_lw(l, lw);
                    st.outbox
                        .push(Envelope::with_bits(id, env.src, payload, bits));
                }
            }
        });
        self.machines = machines;
        self.flush();
        // Record replies at the proxies.
        par_for_each_state(&mut self.machines, |_, st| {
            let inbox = std::mem::take(&mut st.inbox);
            for env in inbox {
                if let Payload::EdgeProbeReply {
                    comp,
                    vertex,
                    label,
                    exists,
                    weight,
                } = env.payload
                {
                    if let Some(c) = st.proxied.get_mut(&comp) {
                        if let Some((u, v)) = c.candidate {
                            let slot = if vertex == u { 0 } else { 1 };
                            debug_assert!(vertex == u || vertex == v);
                            c.info[slot] = Some((label, exists, weight));
                        }
                    }
                }
            }
        });
    }

    /// MST: broadcast each active component's new strict threshold to all
    /// machines holding a part of it.
    fn broadcast_thresholds(&mut self, _p: u32) {
        let l = self.l;
        let lw = self.lw;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let mut out = Vec::new();
            for (label, c) in det::sorted_entries(&st.proxied) {
                if c.elim_done {
                    continue;
                }
                let key = c.best;
                for &m in &c.parts {
                    let payload = Payload::Threshold { label, key };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(id, m as usize, payload, bits));
                }
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        par_for_each_state(&mut self.machines, |_, st| {
            st.thresholds.clear();
            let inbox = std::mem::take(&mut st.inbox);
            for env in inbox {
                if let Payload::Threshold { label, key } = env.payload {
                    st.thresholds.insert(label, key);
                }
            }
        });
    }

    /// Step 2 (§2.5): merge partners from verified candidates + shared
    /// randomness (DRR ranks, or footnote 9's coin flips).
    fn build_drr_forest(&mut self, p: u32) {
        let scheme = &self.scheme;
        let merge = self.cfg.merge;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |_, st| {
            det::for_each_entry_mut(&mut st.proxied, |label, c| {
                let connects = |other: Label| match merge {
                    MergeStrategy::Drr => scheme.connects(p, label, other),
                    MergeStrategy::CoinFlip => !scheme.coin(p, label) && scheme.coin(p, other),
                };
                c.parent = match (c.chosen, c.other_label) {
                    (Some(_), Some(other)) if connects(other) => Some(other),
                    _ => None,
                };
                match c.parent {
                    Some(parent) => {
                        c.ptr = parent;
                        c.ptr_done = false;
                    }
                    None => {
                        c.ptr = label;
                        c.ptr_done = true;
                    }
                }
            });
        });
        self.machines = machines;
    }

    /// Step 3 (§2.5): pointer jumping among proxies until every component
    /// knows its root label. The iteration count covers the w.h.p. Lemma-6
    /// depth bound; a straggler merely relabels to an ancestor (safe).
    fn pointer_jump(&mut self, p: u32) {
        let depth_bound = 6 * (id_bits(self.n + 1) as u32) + 2;
        let iters = 32 - (2 * depth_bound).leading_zeros() + 1;
        for _ in 0..iters {
            if !self.aggregate_flag(|st| det::any_value(&st.proxied, |c| !c.ptr_done)) {
                break;
            }
            let part = self.g.partition();
            let scheme = &self.scheme;
            let l = self.l;
            let lw = self.lw;
            // Queries out.
            let mut machines = std::mem::take(&mut self.machines);
            par_for_each_state(&mut machines, |id, st| {
                let mut out = Vec::new();
                for (label, c) in det::sorted_entries(&st.proxied) {
                    if !c.ptr_done {
                        let payload = Payload::PtrQuery {
                            asker: label,
                            target: c.ptr,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(
                            id,
                            scheme.proxy_of(part, p, 0, c.ptr),
                            payload,
                            bits,
                        ));
                    }
                }
                st.outbox.extend(out);
            });
            self.machines = machines;
            self.flush();
            // Answers back (reads only pre-iteration state: replies are
            // computed before any update is applied).
            let mut machines = std::mem::take(&mut self.machines);
            par_for_each_state(&mut machines, |id, st| {
                let inbox = std::mem::take(&mut st.inbox);
                let mut out = Vec::new();
                for env in inbox {
                    if let Payload::PtrQuery { asker, target } = env.payload {
                        let t = st
                            .proxied
                            .get(&target)
                            .expect("pointer target must be proxied here");
                        let payload = Payload::PtrReply {
                            asker,
                            ptr: t.ptr,
                            done: t.ptr_done,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(id, env.src, payload, bits));
                    }
                }
                st.outbox.extend(out);
            });
            self.machines = machines;
            self.flush();
            // Apply updates.
            par_for_each_state(&mut self.machines, |_, st| {
                let inbox = std::mem::take(&mut st.inbox);
                for env in inbox {
                    if let Payload::PtrReply { asker, ptr, done } = env.payload {
                        if let Some(c) = st.proxied.get_mut(&asker) {
                            c.ptr = ptr;
                            c.ptr_done = done;
                        }
                    }
                }
            });
        }
    }

    /// Step 4: proxies broadcast relabel commands; machines apply them.
    /// MST: a component that merged outputs its chosen edge at the proxy.
    fn relabel(&mut self, _p: u32) {
        let l = self.l;
        let lw = self.lw;
        let mode = self.mode;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let mut out = Vec::new();
            for (label, c) in det::sorted_entries(&st.proxied) {
                if c.parent.is_some() {
                    if mode != Mode::Connectivity {
                        if let Some(e) = c.chosen {
                            st.mst_out.push(e);
                        }
                    }
                    if c.ptr != label {
                        for &m in &c.parts {
                            let payload = Payload::Relabel {
                                old: label,
                                new: c.ptr,
                            };
                            let bits = payload.wire_bits_lw(l, lw);
                            out.push(Envelope::with_bits(id, m as usize, payload, bits));
                        }
                    }
                }
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        par_for_each_state(&mut self.machines, |_, st| {
            let inbox = std::mem::take(&mut st.inbox);
            let mut map: FxHashMap<Label, Label> = FxHashMap::default();
            for env in inbox {
                if let Payload::Relabel { old, new } = env.payload {
                    map.insert(old, new);
                }
            }
            if !map.is_empty() {
                // Cache invalidation: the relabeled part dissolves into the
                // target part, so both sketches are stale. Parts this map
                // does not touch keep serving their cached sketches.
                for (old, new) in det::sorted_entries(&map) {
                    st.part_cache.remove(&old);
                    st.part_cache.remove(new);
                }
                det::for_each_value_mut(&mut st.labels, |lab| {
                    if let Some(&nl) = map.get(lab) {
                        *lab = nl;
                    }
                });
            }
            // Phase is over: clear per-phase proxy state.
            st.proxied.clear();
            st.thresholds.clear();
        });
    }

    // ------------------------------------------------------------------
    // Supergraph contraction (DESIGN.md §3.11)
    // ------------------------------------------------------------------

    /// Builds the supergraph from the current vertex labels, once, at the
    /// first contracted phase. Every machine pushes its home vertices'
    /// labels across their incident edges (both directions); each
    /// inter-component edge is surfaced exactly once — at the home of its
    /// smaller original endpoint — and sent to *both* component owners, so
    /// supernode adjacency is symmetric from the start; owners min-merge
    /// multi-edges by the tie-free original-edge key (dedup keeps the
    /// lightest, and its original endpoints ride along so MST output stays
    /// exact); and machines announce which components they host parts of,
    /// so merges can be broadcast back into the vertex space. Ends with a
    /// densification, after which labels live in `[0, n')` and every
    /// subsequent label field is charged `⌈log₂ n'⌉` bits.
    fn build_supergraph(&mut self, p: u32) {
        let g = self.g;
        let part = g.partition();
        let l = self.l;
        let lw = self.lw;
        // Superstep 1: push labels across every edge.
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let view = g.view(id);
            let mut out = Vec::new();
            for &v in &st.verts {
                let lab = st.labels[&v];
                for &(nb, w) in view.neighbors(v) {
                    let payload = Payload::LabelPush {
                        u: v,
                        v: nb,
                        weight: w,
                        label: lab,
                    };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(id, part.home(nb), payload, bits));
                }
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        // Superstep 2: receivers surface each crossing edge once (only the
        // smaller endpoint's home creates it — the push from the larger
        // endpoint) and announce the components they host.
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let inbox = std::mem::take(&mut st.inbox);
            let mut out = Vec::new();
            for env in inbox {
                if let Payload::LabelPush {
                    u,
                    v,
                    weight,
                    label,
                } = env.payload
                {
                    let mine = *st.labels.get(&v).expect("label push reached home");
                    if mine != label && v < u {
                        let (ou, ov) = (v, u);
                        for (a, b) in [(mine, label), (label, mine)] {
                            let payload = Payload::SuperEdge {
                                a,
                                b,
                                weight,
                                ou,
                                ov,
                            };
                            let bits = payload.wire_bits_lw(l, lw);
                            out.push(Envelope::with_bits(id, part.home(a as u32), payload, bits));
                        }
                    }
                }
            }
            let mut distinct: FxHashSet<Label> = FxHashSet::default();
            distinct.extend(det::sorted_values(&st.labels));
            for lab in det::sorted_members(&distinct) {
                let payload = Payload::SuperParts {
                    label: lab,
                    parts: vec![id as u16],
                };
                let bits = payload.wire_bits_lw(l, lw);
                out.push(Envelope::with_bits(
                    id,
                    part.home(lab as u32),
                    payload,
                    bits,
                ));
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        // Owners absorb: adjacency min-merge + hosted-part sets. Part
        // announcements also materialize isolated components (no crossing
        // edges, but they still need relabel broadcasts and counting).
        par_for_each_state(&mut self.machines, |_, st| {
            for env in std::mem::take(&mut st.inbox) {
                match env.payload {
                    Payload::SuperEdge {
                        a,
                        b,
                        weight,
                        ou,
                        ov,
                    } => {
                        st.supers.entry(a).or_default().add_edge(b, weight, ou, ov);
                    }
                    Payload::SuperParts { label, parts } => {
                        let node = st.supers.entry(label).or_default();
                        for m in parts {
                            node.add_part(m);
                        }
                    }
                    _ => {}
                }
            }
            // Sketch machinery is retired for the rest of the run.
            st.part_cache.clear();
            st.thresholds.clear();
        });
        self.contracted = true;
        self.cached_fns = None;
        self.densify_and_rehome(p);
    }

    /// Renumbers the live components into the dense space `[0, n')` and
    /// re-homes every supernode to `home(dense id)`. Protocol: per-machine
    /// supernode counts to M0; M0 replies with each machine's contiguous
    /// base block and the new label-space size; each machine assigns
    /// `dense = base + rank` by sorted old label, announces the rename to
    /// every neighbor's owner (symmetric adjacency guarantees each owner
    /// hears about exactly the labels in its adjacency lists) and the
    /// vertex-space relabel to the hosting machines — all *before* any
    /// state moves — then ships each supernode to its dense home. The
    /// whole exchange is charged at the pre-densification label width;
    /// `lw` shrinks to `⌈log₂ n'⌉` only once the new space is live.
    fn densify_and_rehome(&mut self, _p: u32) {
        let part = self.g.partition();
        let l = self.l;
        let lw = self.lw;
        let k = self.k;
        // Superstep A: counts to M0.
        let mut machines = std::mem::take(&mut self.machines);
        for st in &mut machines {
            let payload = Payload::CountReport {
                count: st.supers.len() as u64,
            };
            let bits = payload.wire_bits_lw(l, lw);
            st.outbox.push(Envelope::with_bits(st.id, 0, payload, bits));
        }
        self.machines = machines;
        self.flush();
        // Superstep B: M0 computes prefix bases in machine order.
        {
            let st0 = &mut self.machines[0];
            let inbox = std::mem::take(&mut st0.inbox);
            let mut counts = vec![0u64; k];
            for env in inbox {
                if let Payload::CountReport { count } = env.payload {
                    counts[env.src] = count;
                }
            }
            let total: u64 = counts.iter().sum();
            let mut base = 0u64;
            for (dst, &c) in counts.iter().enumerate() {
                let payload = Payload::DenseBase { base, total };
                let bits = payload.wire_bits_lw(l, lw);
                st0.outbox.push(Envelope::with_bits(0, dst, payload, bits));
                base += c;
            }
        }
        self.flush();
        // Superstep C: assign dense ids, announce renames (supergraph and
        // vertex space) under the old homes.
        let mut total = 0u64;
        let mut machines = std::mem::take(&mut self.machines);
        for st in &mut machines {
            let mut base = 0u64;
            for env in std::mem::take(&mut st.inbox) {
                if let Payload::DenseBase { base: b, total: t } = env.payload {
                    base = b;
                    total = total.max(t);
                }
            }
            let labs: Vec<Label> = det::sorted_keys(&st.supers);
            let mut out = Vec::new();
            for (rank, &old) in labs.iter().enumerate() {
                let new = base + rank as u64;
                let node = &st.supers[&old];
                let mut dsts: Vec<usize> = det::sorted_keys(&node.adj)
                    .into_iter()
                    .map(|nb| part.home(nb as u32))
                    .collect();
                dsts.push(st.id); // our own adjacency lists rename too
                dsts.sort_unstable();
                dsts.dedup();
                for dst in dsts {
                    let payload = Payload::SuperRelabel { old, new };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(st.id, dst, payload, bits));
                }
                for &m in &node.parts {
                    let payload = Payload::Relabel { old, new };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(st.id, m as usize, payload, bits));
                }
            }
            st.outbox.extend(out);
        }
        self.machines = machines;
        self.flush();
        // Superstep D: apply the renames, then ship every supernode to its
        // dense home.
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let (smap, vmap) = drain_rename_maps(st);
            det::for_each_value_mut(&mut st.labels, |lab| {
                if let Some(&nl) = vmap.get(lab) {
                    *lab = nl;
                }
            });
            let mut items: Vec<(Label, SuperNode)> =
                std::mem::take(&mut st.supers).into_iter().collect();
            items.sort_unstable_by_key(|(lab, _)| *lab);
            let mut out = Vec::new();
            for (old, node) in items {
                let new = smap[&old];
                let renamed = rename_adj(node, &smap);
                let adj: Vec<(Label, u64, u32, u32)> = det::sorted_entries(&renamed.adj)
                    .into_iter()
                    .map(|(nb, &(w, ou, ov))| (nb, w, ou, ov))
                    .collect();
                let payload = Payload::SuperMove {
                    label: new,
                    parts: renamed.parts,
                    adj,
                };
                let bits = payload.wire_bits_lw(l, lw);
                out.push(Envelope::with_bits(
                    id,
                    part.home(new as u32),
                    payload,
                    bits,
                ));
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        par_for_each_state(&mut self.machines, |_, st| {
            for env in std::mem::take(&mut st.inbox) {
                if let Payload::SuperMove {
                    label,
                    parts,
                    adj: moved_adj,
                } = env.payload
                {
                    let node = st.supers.entry(label).or_default();
                    for m in parts {
                        node.add_part(m);
                    }
                    for (nb, w, ou, ov) in moved_adj {
                        node.add_edge(nb, w, ou, ov);
                    }
                }
            }
        });
        self.n_active = total.max(1) as usize;
        self.lw = id_bits(self.n_active);
    }

    /// One Borůvka phase on the contracted supergraph: exact local MWOE
    /// selection (the deduped adjacency is materialized at each owner — no
    /// sketches, no probes, no Monte-Carlo), the same DRR forest and depth
    /// instrumentation as the sketch path, owner-routed pointer jumping run
    /// to *full* convergence (merges move supernode state, so relabeling to
    /// a non-root ancestor — harmless in the sketch path — would strand
    /// state at a node that is itself moving), a two-stage rename-then-move
    /// merge, and a re-densification so the next phase addresses
    /// `⌈log₂ n'⌉`-bit ids.
    fn run_super_phase(&mut self, p: u32) -> bool {
        par_for_each_state(&mut self.machines, |_, st| {
            let mut proxied = FxHashMap::default();
            for (lab, node) in det::sorted_entries(&st.supers) {
                let mut comp = ProxyComp::new(lab);
                comp.parts = node.parts.clone();
                if let Some((nb, &(w, ou, ov))) =
                    det::min_entry_by(&node.adj, |_, &(w, ou, ov)| edge_key(w, ou, ov))
                {
                    comp.chosen = Some((ou.min(ov), ou.max(ov), w));
                    comp.best_edge = comp.chosen;
                    comp.best = Some(edge_key(w, ou, ov));
                    comp.other_label = Some(nb);
                }
                proxied.insert(lab, comp);
            }
            st.proxied = proxied;
        });
        let progressed =
            self.aggregate_flag(|st| det::any_value(&st.proxied, |c| c.chosen.is_some()));
        if !progressed {
            for st in &mut self.machines {
                st.proxied.clear();
            }
            return false;
        }
        self.build_drr_forest(p);
        self.record_drr_depth();
        self.super_pointer_jump(p);
        self.super_merge(p);
        self.densify_and_rehome(p);
        true
    }

    /// Pointer jumping over the supergraph, routed to each label's *owner*
    /// (every owned supernode has a [`ProxyComp`], so roots answer their
    /// own queries), iterated until every component knows its root. DRR
    /// ranks strictly increase along parent pointers, so the forest is
    /// acyclic and doubling converges in `O(log depth)` iterations.
    fn super_pointer_jump(&mut self, _p: u32) {
        let part = self.g.partition();
        let l = self.l;
        let lw = self.lw;
        let mut safety = 0u32;
        while self.aggregate_flag(|st| det::any_value(&st.proxied, |c| !c.ptr_done)) {
            safety += 1;
            assert!(safety <= 72, "super pointer jumping failed to converge");
            let mut machines = std::mem::take(&mut self.machines);
            par_for_each_state(&mut machines, |id, st| {
                let mut out = Vec::new();
                for (label, c) in det::sorted_entries(&st.proxied) {
                    if !c.ptr_done {
                        let payload = Payload::PtrQuery {
                            asker: label,
                            target: c.ptr,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(
                            id,
                            part.home(c.ptr as u32),
                            payload,
                            bits,
                        ));
                    }
                }
                st.outbox.extend(out);
            });
            self.machines = machines;
            self.flush();
            let mut machines = std::mem::take(&mut self.machines);
            par_for_each_state(&mut machines, |id, st| {
                let inbox = std::mem::take(&mut st.inbox);
                let mut out = Vec::new();
                for env in inbox {
                    if let Payload::PtrQuery { asker, target } = env.payload {
                        let t = st
                            .proxied
                            .get(&target)
                            .expect("pointer target must be owned here");
                        let payload = Payload::PtrReply {
                            asker,
                            ptr: t.ptr,
                            done: t.ptr_done,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(id, env.src, payload, bits));
                    }
                }
                st.outbox.extend(out);
            });
            self.machines = machines;
            self.flush();
            par_for_each_state(&mut self.machines, |_, st| {
                for env in std::mem::take(&mut st.inbox) {
                    if let Payload::PtrReply { asker, ptr, done } = env.payload {
                        if let Some(c) = st.proxied.get_mut(&asker) {
                            c.ptr = ptr;
                            c.ptr_done = done;
                        }
                    }
                }
            });
        }
    }

    /// Two-stage supergraph merge. Stage 1 travels among the *old* owners:
    /// each merging supernode emits its output edge (original endpoints),
    /// tells every neighbor's owner its root (`SuperRelabel`), and tells
    /// its hosting machines the vertex-space relabel. Stage 2: every owner
    /// rewrites its adjacency lists under the received renames — distinct
    /// old keys may collapse onto one root and min-merge — and only then do
    /// the merging supernodes ship their state to the root's owner. Stage
    /// 3: roots absorb the moves and drop the self-loops the merge created
    /// (edges whose two sides merged into the same root — exactly the
    /// intra-component edges contraction discards).
    fn super_merge(&mut self, _p: u32) {
        let part = self.g.partition();
        let l = self.l;
        let lw = self.lw;
        let mode = self.mode;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let mut out = Vec::new();
            let mut emitted = Vec::new();
            for (label, c) in det::sorted_entries(&st.proxied) {
                if c.parent.is_none() {
                    continue;
                }
                debug_assert!(c.ptr_done, "merge requires converged pointers");
                debug_assert!(c.ptr != label, "a merging component cannot be its own root");
                if mode != Mode::Connectivity {
                    if let Some(e) = c.chosen {
                        emitted.push(e);
                    }
                }
                let root = c.ptr;
                let node = st.supers.get(&label).expect("merging supernode owned here");
                let mut dsts: Vec<usize> = det::sorted_keys(&node.adj)
                    .into_iter()
                    .map(|nb| part.home(nb as u32))
                    .collect();
                dsts.push(id); // our own adjacency lists rename too
                dsts.sort_unstable();
                dsts.dedup();
                for dst in dsts {
                    let payload = Payload::SuperRelabel {
                        old: label,
                        new: root,
                    };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(id, dst, payload, bits));
                }
                for &m in &node.parts {
                    let payload = Payload::Relabel {
                        old: label,
                        new: root,
                    };
                    let bits = payload.wire_bits_lw(l, lw);
                    out.push(Envelope::with_bits(id, m as usize, payload, bits));
                }
            }
            st.mst_out.extend(emitted);
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let (smap, vmap) = drain_rename_maps(st);
            det::for_each_value_mut(&mut st.labels, |lab| {
                if let Some(&nl) = vmap.get(lab) {
                    *lab = nl;
                }
            });
            let mut items: Vec<(Label, SuperNode)> =
                std::mem::take(&mut st.supers).into_iter().collect();
            items.sort_unstable_by_key(|(lab, _)| *lab);
            let mut keep: FxHashMap<Label, SuperNode> = FxHashMap::default();
            let mut out = Vec::new();
            for (old, node) in items {
                let renamed = rename_adj(node, &smap);
                match smap.get(&old) {
                    Some(&root) => {
                        let adj: Vec<(Label, u64, u32, u32)> = det::sorted_entries(&renamed.adj)
                            .into_iter()
                            .map(|(nb, &(w, ou, ov))| (nb, w, ou, ov))
                            .collect();
                        let payload = Payload::SuperMove {
                            label: root,
                            parts: renamed.parts,
                            adj,
                        };
                        let bits = payload.wire_bits_lw(l, lw);
                        out.push(Envelope::with_bits(
                            id,
                            part.home(root as u32),
                            payload,
                            bits,
                        ));
                    }
                    None => {
                        keep.insert(old, renamed);
                    }
                }
            }
            st.supers = keep;
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        par_for_each_state(&mut self.machines, |_, st| {
            for env in std::mem::take(&mut st.inbox) {
                if let Payload::SuperMove {
                    label,
                    parts,
                    adj: moved_adj,
                } = env.payload
                {
                    let node = st.supers.entry(label).or_default();
                    for m in parts {
                        node.add_part(m);
                    }
                    for (nb, w, ou, ov) in moved_adj {
                        node.add_edge(nb, w, ou, ov);
                    }
                }
            }
            let labs: Vec<Label> = det::sorted_keys(&st.supers);
            for lab in labs {
                st.supers
                    .get_mut(&lab)
                    .expect("just listed")
                    .adj
                    .remove(&lab);
            }
            st.proxied.clear();
        });
    }

    // ------------------------------------------------------------------
    // Control flow helpers
    // ------------------------------------------------------------------

    /// Flushes all machine outboxes through one superstep and distributes
    /// the delivered messages into machine inboxes.
    fn flush(&mut self) {
        let mut out = Vec::new();
        for st in &mut self.machines {
            out.append(&mut st.outbox);
        }
        self.bsp.superstep(out);
        let inboxes = self.bsp.take_all_inboxes();
        for (st, mut ib) in self.machines.iter_mut().zip(inboxes) {
            st.inbox.append(&mut ib);
        }
    }

    /// Global OR over a per-machine predicate: flags to M0, M0 broadcasts
    /// the result (two supersteps of 1-bit messages — the counted cost of
    /// convergence detection).
    fn aggregate_flag(&mut self, pred: impl Fn(&MachineState) -> bool + Sync) -> bool {
        let l = self.l;
        let lw = self.lw;
        par_for_each_state(&mut self.machines, |_, st| {
            st.flag = pred(st);
        });
        let mut machines = std::mem::take(&mut self.machines);
        for st in &mut machines {
            if st.id != 0 {
                let payload = Payload::Flag { bit: st.flag };
                let bits = payload.wire_bits_lw(l, lw);
                st.outbox.push(Envelope::with_bits(st.id, 0, payload, bits));
            }
        }
        self.machines = machines;
        self.flush();
        let global = {
            let st0 = &mut self.machines[0];
            let inbox = std::mem::take(&mut st0.inbox);
            let mut any = st0.flag;
            for env in inbox {
                if let Payload::Flag { bit } = env.payload {
                    any |= bit;
                }
            }
            any
        };
        let mut machines = std::mem::take(&mut self.machines);
        {
            let st0 = &mut machines[0];
            for dst in 1..self.k {
                let payload = Payload::Flag { bit: global };
                let bits = payload.wire_bits_lw(l, lw);
                st0.outbox.push(Envelope::with_bits(0, dst, payload, bits));
            }
        }
        self.machines = machines;
        self.flush();
        for st in &mut self.machines {
            st.inbox.clear();
            st.flag = global;
        }
        global
    }

    /// §2.6 output protocol: every machine announces each distinct label it
    /// holds to that label's proxy; proxies count distinct labels and report
    /// to M1 (machine 0 here). Returns the global component count.
    fn output_protocol(&mut self, after_phase: u32) -> u64 {
        let p = after_phase.max(1); // never the phase-0 identity proxy map
        let part = self.g.partition();
        let scheme = &self.scheme;
        let l = self.l;
        let lw = self.lw;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let mut distinct: FxHashSet<Label> = FxHashSet::default();
            distinct.extend(det::sorted_values(&st.labels));
            let mut out = Vec::new();
            for lab in det::sorted_members(&distinct) {
                let payload = Payload::LabelAnnounce { label: lab };
                let bits = payload.wire_bits_lw(l, lw);
                out.push(Envelope::with_bits(
                    id,
                    scheme.proxy_of(part, p, 1, lab),
                    payload,
                    bits,
                ));
            }
            st.outbox.extend(out);
        });
        self.machines = machines;
        self.flush();
        let l2 = self.l;
        let lw2 = self.lw;
        let mut machines = std::mem::take(&mut self.machines);
        par_for_each_state(&mut machines, |id, st| {
            let inbox = std::mem::take(&mut st.inbox);
            let mut distinct: FxHashSet<Label> = FxHashSet::default();
            for env in inbox {
                if let Payload::LabelAnnounce { label } = env.payload {
                    distinct.insert(label);
                }
            }
            let payload = Payload::CountReport {
                count: distinct.len() as u64,
            };
            let bits = payload.wire_bits_lw(l2, lw2);
            st.outbox.push(Envelope::with_bits(id, 0, payload, bits));
        });
        self.machines = machines;
        self.flush();
        let st0 = &mut self.machines[0];
        let inbox = std::mem::take(&mut st0.inbox);
        let mut total = 0u64;
        for env in inbox {
            if let Payload::CountReport { count } = env.payload {
                total += count;
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // Instrumentation (orchestrator-side, zero communication cost)
    // ------------------------------------------------------------------

    /// Number of distinct labels across all machines.
    fn count_labels(&self) -> usize {
        let mut set: FxHashSet<Label> = FxHashSet::default();
        for st in &self.machines {
            set.extend(det::sorted_values(&st.labels));
        }
        set.len()
    }

    /// Max DRR tree depth of the current phase (Lemma 6 / Figure 2 data).
    fn record_drr_depth(&mut self) {
        let mut parents: FxHashMap<Label, Label> = FxHashMap::default();
        for st in &self.machines {
            for (label, c) in det::sorted_entries(&st.proxied) {
                if let Some(par) = c.parent {
                    parents.insert(label, par);
                }
            }
        }
        let mut depth_memo: FxHashMap<Label, u32> = FxHashMap::default();
        let mut max_depth = 0;
        for start in det::sorted_keys(&parents) {
            let mut chain = Vec::new();
            let mut cur = start;
            let mut d = loop {
                if let Some(&d) = depth_memo.get(&cur) {
                    break d;
                }
                match parents.get(&cur) {
                    Some(&nxt) => {
                        chain.push(cur);
                        cur = nxt;
                    }
                    None => break 0,
                }
            };
            for &node in chain.iter().rev() {
                d += 1;
                depth_memo.insert(node, d);
            }
            max_depth = max_depth.max(d);
        }
        self.drr_depths.push(max_depth);
    }
}

/// Validates a probed candidate and folds it into the component state:
/// the edge must exist and have exactly one internal endpoint. For MST the
/// verified key becomes the new `best`; an invalid/absent candidate ends
/// the elimination for this component (Monte-Carlo skip).
fn finalize_candidate(c: &mut ProxyComp) {
    /// Strikes before an empty/invalid sample is accepted as "no lighter
    /// edge exists" (the retry drives the false-done probability to ~1e-6).
    const STRIKES: u8 = 2;
    let miss = |c: &mut ProxyComp| {
        c.none_streak += 1;
        if c.none_streak >= STRIKES {
            c.elim_done = true;
        }
    };
    match (c.candidate, c.info[0], c.info[1]) {
        (Some((u, v)), Some((lu, e0, w)), Some((lv, e1, _))) => {
            // Exactly one endpoint must be inside this component.
            let other = if lu == c.own && lv != c.own {
                Some(lv)
            } else if lv == c.own && lu != c.own {
                Some(lu)
            } else {
                None
            };
            match other {
                Some(other) if e0 && e1 => {
                    c.other_label = Some(other);
                    c.best = Some((w, u, v));
                    c.best_edge = Some((u, v, w));
                    c.chosen = Some((u, v, w));
                    c.none_streak = 0;
                }
                _ => miss(c),
            }
        }
        // No candidate: support empty, or unlucky hashing — a strike.
        (None, _, _) => miss(c),
        // Missing replies should not happen; treat as a failed sample.
        _ => miss(c),
    }
    c.candidate = None;
    c.info = [None, None];
}
