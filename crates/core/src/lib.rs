#![warn(missing_docs)]
//! The paper's algorithms in the k-machine model.
//!
//! All algorithms run against [`kgraph::ShardedGraph`] views — each
//! simulated machine holds only its `~n/k` home vertices and their
//! incident edges, never a copy of the graph (DESIGN.md §3.7).
//!
//! The primary way in is the [`session`] API, which mirrors the model
//! itself: build a [`session::Cluster`] once (k machines, bandwidth, seed,
//! one ingestion of a graph or edge stream into per-machine shards), then
//! run any number of [`session::Problem`]s against it — every run returns
//! its typed output plus a common [`session::RunReport`]. The per-problem
//! free functions (`connected_components`, `minimum_spanning_tree`, …)
//! survive as thin shims over the session path and stay bit-identical to
//! it; the `*_sharded` entry points accept streamed shards directly.
//!
//! * [`session`] — the cluster/problem session layer: ingest once, run
//!   many algorithms, one report shape for all of them.
//! * [`dynamic`] — the live-cluster update layer: batched edge
//!   insertions/deletions with delta-logged shards, in-place incidence
//!   sketch maintenance, and incremental re-solves spliced against the
//!   surviving component structure.
//! * [`connectivity`] — the headline `O~(n/k²)`-round connected-components
//!   algorithm (§2): linear sketches + randomized proxies + distributed
//!   random ranking.
//! * [`mst`] — Theorem 2: minimum spanning tree via sketch-based Borůvka
//!   with the edge-elimination MWOE loop, under both output criteria.
//! * [`mincut`] — Theorem 3: `O(log n)`-approximate min-cut by Karger-style
//!   geometric edge sampling plus connectivity probes.
//! * [`verify`] — Theorem 4: the eight graph verification problems.
//! * [`baselines`] — the comparison algorithms: flooding (`Θ(n/k + D)`),
//!   edge-checking Borůvka (GHS-style, the `Θ(m)`-bits-per-phase regime),
//!   referee collection (`Θ(m/k)`), and the §1.3 REP-model filtering MST.
//! * [`lowerbound`] — §4: random-partition set disjointness, the Figure-1
//!   spanning-connected-subgraph gadget, and the 2-party Alice/Bob
//!   simulation harness that counts bits across the machine cut.

pub mod baselines;
pub mod connectivity;
pub mod dynamic;
pub mod engine;
pub mod lowerbound;
pub mod messages;
pub mod mincut;
pub mod mst;
pub mod proxy;
pub mod session;
pub mod st;
pub mod verify;

pub use connectivity::{connected_components, ConnectivityConfig, ConnectivityOutput};
pub use dynamic::{DynConfig, DynamicCluster, UpdateBatch, UpdateError, UpdateOp};
pub use engine::RecoveryPolicy;
pub use mincut::{approx_min_cut, MinCutConfig, MinCutOutput};
pub use mst::{minimum_spanning_tree, MstConfig, MstOutput, OutputCriterion};
pub use session::{Cluster, ClusterBuilder, Problem, Run, RunReport};
pub use st::{spanning_forest, SpanningForestOutput};
