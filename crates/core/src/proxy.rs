//! Randomized proxy computation and DRR ranks (paper §2.2 and §2.5).
//!
//! Every machine derives the same hash functions from shared randomness, so
//! proxy machines and component ranks are computed locally, with no
//! communication:
//!
//! * **Proxies.** The proxy of component `C` in `(phase, iteration)` is
//!   `h_{phase,iter}(C) ∈ [k]`. Spreading components' communication over
//!   random proxies is what makes Lemma 1's `O~(n/k²)`-round routing work.
//!   Phase 0 is special: every vertex is its own singleton component and the
//!   paper makes each node "the component proxy of its own component"
//!   (§2.1) — so the phase-0 proxy is the vertex's home machine, and the
//!   part-to-proxy hop is local and free.
//! * **Ranks.** DRR draws a random rank per component per phase. We derive
//!   `rank(C) = PRF(phase, C)`, which every machine evaluates locally —
//!   same independent-uniform distribution as the paper's communicated
//!   ranks, strictly less traffic (DESIGN.md §3.2). Ties break by label,
//!   giving a strict total order, so the DRR digraph is guaranteed acyclic.

use crate::messages::Label;
use kgraph::Partition;
use krand::shared::{SharedRandomness, Use};

/// Computes component proxies and ranks for one run. Cheap to construct;
/// all machines conceptually hold an identical copy.
#[derive(Clone)]
pub struct ProxyScheme {
    shared: SharedRandomness,
    k: usize,
}

impl ProxyScheme {
    /// Builds the scheme from the run's shared randomness.
    pub fn new(shared: SharedRandomness, k: usize) -> Self {
        ProxyScheme { shared, k }
    }

    /// The proxy machine of component `label` in `(phase, iteration)`.
    ///
    /// `part` resolves phase-0 labels (vertex ids) to home machines.
    pub fn proxy_of(&self, part: &Partition, phase: u32, iteration: u32, label: Label) -> usize {
        if phase == 0 {
            // §2.1: each vertex starts as the proxy of its own component.
            return part.home(label as u32);
        }
        self.shared
            .prf(Use::Proxy { phase, iteration })
            .eval_mod(0, label, self.k as u64) as usize
    }

    /// The DRR rank of component `label` in `phase`, as a comparable key
    /// `(rank, label)`. `a` merges toward `b` iff `key(b) > key(a)`.
    pub fn rank_key(&self, phase: u32, label: Label) -> (u64, Label) {
        (self.shared.prf(Use::Rank { phase }).eval(0, label), label)
    }

    /// Whether component `a` should connect to component `b` under DRR.
    pub fn connects(&self, phase: u32, a: Label, b: Label) -> bool {
        self.rank_key(phase, b) > self.rank_key(phase, a)
    }

    /// The footnote-9 coin of component `label` in `phase`: merges happen
    /// only from a `false`-coin component into a `true`-coin component.
    pub fn coin(&self, phase: u32, label: Label) -> bool {
        self.shared.prf(Use::Rank { phase }).eval(1, label) & 1 == 1
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::generators;

    fn scheme(k: usize) -> (ProxyScheme, Partition) {
        let g = generators::path(64);
        let part = Partition::random_vertex(&g, k, 11);
        (ProxyScheme::new(SharedRandomness::new(7), k), part)
    }

    #[test]
    fn phase0_proxy_is_home_machine() {
        let (s, part) = scheme(4);
        for v in 0..64u64 {
            assert_eq!(s.proxy_of(&part, 0, 0, v), part.home(v as u32));
        }
    }

    #[test]
    fn later_phases_hash_labels_to_machines() {
        let (s, part) = scheme(8);
        let mut seen = [false; 8];
        for label in 0..256u64 {
            let p = s.proxy_of(&part, 3, 0, label);
            assert!(p < 8);
            seen[p] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "all machines should proxy something"
        );
    }

    #[test]
    fn proxies_differ_across_phases_and_iterations() {
        let (s, part) = scheme(16);
        let labels: Vec<u64> = (0..200).collect();
        let p1: Vec<usize> = labels.iter().map(|&l| s.proxy_of(&part, 1, 0, l)).collect();
        let p2: Vec<usize> = labels.iter().map(|&l| s.proxy_of(&part, 2, 0, l)).collect();
        let p3: Vec<usize> = labels.iter().map(|&l| s.proxy_of(&part, 1, 1, l)).collect();
        assert_ne!(p1, p2);
        assert_ne!(p1, p3);
    }

    #[test]
    fn drr_connection_is_antisymmetric_and_total() {
        let (s, _) = scheme(4);
        for a in 0..50u64 {
            for b in 0..50u64 {
                if a == b {
                    assert!(!s.connects(5, a, b));
                } else {
                    assert_ne!(
                        s.connects(5, a, b),
                        s.connects(5, b, a),
                        "exactly one direction must win"
                    );
                }
            }
        }
    }

    #[test]
    fn coins_are_fair_and_phase_dependent() {
        let (s, _) = scheme(4);
        let heads = (0..4000u64).filter(|&l| s.coin(3, l)).count();
        assert!((1800..2200).contains(&heads), "heads = {heads}");
        let flips_differ = (0..100u64).any(|l| s.coin(3, l) != s.coin(4, l));
        assert!(flips_differ, "coins must refresh across phases");
    }

    #[test]
    fn ranks_are_roughly_balanced_coin_flips() {
        // Over random pairs, each side should win about half the time.
        let (s, _) = scheme(4);
        let wins = (0..2000u64)
            .filter(|&i| s.connects(9, 2 * i, 2 * i + 1))
            .count();
        assert!((800..1200).contains(&wins), "wins = {wins}");
    }
}
