//! The comparison algorithms every experiment reports against.
//!
//! * [`flooding`] — the `Θ(n/k + D)`-round label-propagation connectivity
//!   baseline (§1.2 warm-up; implemented in Giraph variants \[43\]).
//! * [`referee`] — collect the whole graph at one machine: `Ω(m/k)` rounds
//!   (§2 warm-up).
//! * [`edge_boruvka`] — GHS-style Borůvka that explicitly checks edge
//!   states: every relabel is pushed to all neighboring machines, moving
//!   `Θ(m)` bits per phase — the congestion the paper's sketches avoid.
//! * [`rep_mst`] — the §1.3 / footnote-5 random-edge-partition MST: local
//!   cycle-property filtering, REP→RVP routing in `O~(n/k)` rounds, then
//!   the fast RVP algorithm.
//!
//! Every baseline is also a [`crate::session::Problem`]
//! ([`crate::session::Flooding`], [`crate::session::Referee`],
//! [`crate::session::EdgeBoruvka`], [`crate::session::RepMst`]), so a
//! [`crate::session::Cluster`] ingested once can run headliners and
//! baselines side by side on the same shards.

pub mod edge_boruvka;
pub mod flooding;
pub mod referee;
pub mod rep_mst;
