//! The referee baseline (paper §2 warm-up): ship the whole graph to one
//! machine and solve locally. The referee has `k−1` incident links, so
//! collection costs `Ω(m/k)` rounds — the bound the fast algorithms beat.

use crate::messages::{id_bits, Payload};
use kgraph::{refalgo, Graph, Partition};
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;

/// Referee-collection result.
#[derive(Clone, Debug)]
pub struct RefereeOutput {
    /// Component labels computed at the referee.
    pub labels: Vec<u32>,
    /// Communication statistics (dominated by the collection).
    pub stats: CommStats,
}

/// Collects all edges at machine 0 and solves connectivity there.
pub fn referee_connectivity(g: &Graph, k: usize, seed: u64, bandwidth: Bandwidth) -> RefereeOutput {
    let part = Partition::random_vertex(g, k, seed);
    let n = g.n();
    let l = id_bits(n);
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, bandwidth, n));
    // Each machine batches its local vertices' edges (each edge shipped by
    // the smaller endpoint's home to avoid duplicates).
    let mut out = Vec::new();
    for m in 0..k {
        let edges: Vec<(u32, u32, u64)> = g
            .edges()
            .iter()
            .filter(|e| part.home(e.u) == m)
            .map(|e| (e.u, e.v, e.w))
            .collect();
        if m != 0 && !edges.is_empty() {
            let payload = Payload::EdgeList { edges };
            let bits = payload.wire_bits(l);
            out.push(Envelope::with_bits(m, 0, payload, bits));
        }
    }
    bsp.superstep(out);
    let _ = bsp.take_all_inboxes();
    // Local solve at the referee is free in the model.
    let labels = refalgo::connected_components(g);
    RefereeOutput {
        labels,
        stats: bsp.into_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::generators;

    #[test]
    fn referee_answers_correctly_and_pays_collection() {
        let g = generators::gnm(400, 2000, 1);
        let out = referee_connectivity(&g, 8, 2, Bandwidth::Bits(256));
        assert_eq!(out.labels, kgraph::refalgo::connected_components(&g));
        // Machine 0 receives ~all edges over 7 links.
        assert!(out.stats.recv_bits[0] > 0);
        assert_eq!(out.stats.recv_bits[0], out.stats.total_bits);
    }

    #[test]
    fn referee_rounds_scale_with_m_over_k() {
        let w = Bandwidth::Bits(512);
        let g1 = generators::gnm(500, 2000, 3);
        let g2 = generators::gnm(500, 8000, 4);
        let r1 = referee_connectivity(&g1, 8, 5, w).stats.rounds;
        let r2 = referee_connectivity(&g2, 8, 5, w).stats.rounds;
        assert!(
            r2 > 3 * r1,
            "4x the edges should cost ~4x the rounds: {r1} vs {r2}"
        );
    }
}
