//! The referee baseline (paper §2 warm-up): ship the whole graph to one
//! machine and solve locally. The referee has `k−1` incident links, so
//! collection costs `Ω(m/k)` rounds — the bound the fast algorithms beat.
//!
//! Each machine ships exactly the edges its shard *owns* (smaller endpoint
//! homed there, so no edge is sent twice); the referee reassembles a local
//! graph from what it received plus its own shard and solves for free.

use crate::messages::{id_bits, Payload};
use kgraph::graph::Edge;
use kgraph::{refalgo, Graph, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;

/// Referee-collection result.
#[derive(Clone, Debug)]
pub struct RefereeOutput {
    /// Component labels computed at the referee.
    pub labels: Vec<u32>,
    /// Communication statistics (dominated by the collection).
    pub stats: CommStats,
}

/// Collects all edges at machine 0 and solves connectivity there.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::Referee`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
pub fn referee_connectivity(g: &Graph, k: usize, seed: u64, bandwidth: Bandwidth) -> RefereeOutput {
    use crate::session::{Cluster, Problem, Referee};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(Referee::with(bandwidth))
        .output
}

/// Referee collection directly on sharded storage.
pub fn referee_sharded(sg: &ShardedGraph, bandwidth: Bandwidth) -> RefereeOutput {
    let k = sg.k();
    let n = sg.n();
    let l = id_bits(n);
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, bandwidth, n));
    // Each machine batches the edges its shard owns; the referee's own
    // slice stays local (free).
    let mut collected: Vec<Edge> = sg.view(0).local_edges().collect();
    let mut out = Vec::new();
    for m in 1..k {
        let edges: Vec<(u32, u32, u64)> =
            sg.view(m).local_edges().map(|e| (e.u, e.v, e.w)).collect();
        if !edges.is_empty() {
            let payload = Payload::EdgeList { edges };
            let bits = payload.wire_bits_lw(l, l);
            out.push(Envelope::with_bits(m, 0, payload, bits));
        }
    }
    bsp.superstep(out);
    let inboxes = bsp.take_all_inboxes();
    for env in inboxes.into_iter().flatten() {
        if let Payload::EdgeList { edges } = env.payload {
            collected.extend(edges.into_iter().map(|(u, v, w)| Edge::new(u, v, w)));
        }
    }
    // Local solve at the referee is free in the model.
    let assembled = Graph::from_dedup_edges(n, collected);
    let labels = refalgo::connected_components(&assembled);
    RefereeOutput {
        labels,
        stats: bsp.into_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::generators;

    #[test]
    fn referee_answers_correctly_and_pays_collection() {
        let g = generators::gnm(400, 2000, 1);
        let out = referee_connectivity(&g, 8, 2, Bandwidth::Bits(256));
        assert_eq!(out.labels, kgraph::refalgo::connected_components(&g));
        // Machine 0 receives ~all edges over 7 links.
        assert!(out.stats.recv_bits[0] > 0);
        assert_eq!(out.stats.recv_bits[0], out.stats.total_bits);
    }

    #[test]
    fn referee_rounds_scale_with_m_over_k() {
        let w = Bandwidth::Bits(512);
        let g1 = generators::gnm(500, 2000, 3);
        let g2 = generators::gnm(500, 8000, 4);
        let r1 = referee_connectivity(&g1, 8, 5, w).stats.rounds;
        let r2 = referee_connectivity(&g2, 8, 5, w).stats.rounds;
        assert!(
            r2 > 3 * r1,
            "4x the edges should cost ~4x the rounds: {r1} vs {r2}"
        );
    }
}
