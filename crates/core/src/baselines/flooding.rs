//! Flooding connectivity: the `Θ(n/k + D)` baseline (paper §1.2).
//!
//! Every vertex floods the smallest label it has seen. Within a machine
//! propagation is free (local computation costs nothing), so each
//! *graph-round* consists of: intra-machine fixpoint, then one superstep
//! carrying every improved label across inter-machine edges (deduplicated
//! per link), then a counted convergence check. The number of graph-rounds
//! is the machine-quotient diameter ≤ D; congestion adds the `n/k` term
//! the Conversion Theorem of \[22\] predicts.
//!
//! Runs against [`kgraph::ShardedGraph`] views: a machine knows only its
//! own vertices' adjacency. Applying a remote vertex's improved label needs
//! the *local* neighbors of that remote vertex — which the machine derives
//! from its own shard (a reverse index built once, for free, at start-up),
//! never by peeking at remote adjacency.

use crate::messages::{id_bits, Label, Payload};
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::det;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use rustc_hash::{FxHashMap, FxHashSet};

/// Flooding result.
#[derive(Clone, Debug)]
pub struct FloodingOutput {
    /// Final per-vertex labels (min vertex id of the component).
    pub labels: Vec<Label>,
    /// Communication statistics.
    pub stats: CommStats,
    /// Graph-rounds until global convergence (≈ diameter).
    pub graph_rounds: u32,
}

impl FloodingOutput {
    /// Number of distinct final labels.
    pub fn component_count(&self) -> usize {
        let mut set = self.labels.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    }
}

/// Per-machine reverse index: remote vertex → local neighbors. Derived
/// from the machine's own shard (its side of every cross edge).
fn remote_in_index(sg: &ShardedGraph, m: usize) -> FxHashMap<u32, Vec<u32>> {
    let view = sg.view(m);
    let part = sg.partition();
    let mut idx: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &u in view.verts() {
        for &(nb, _) in view.neighbors(u) {
            if part.home(nb) != m {
                idx.entry(nb).or_default().push(u);
            }
        }
    }
    idx
}

/// Runs flooding connectivity over `k` machines.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::Flooding`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
pub fn flooding_connectivity(
    g: &Graph,
    k: usize,
    seed: u64,
    bandwidth: Bandwidth,
) -> FloodingOutput {
    use crate::session::{Cluster, Flooding, Problem};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(Flooding::with(bandwidth))
        .output
}

/// Runs flooding with an explicit partition — the harness path; everyone
/// else goes through [`crate::session::Cluster`].
pub fn flooding_with_partition(
    g: &Graph,
    part: &Partition,
    bandwidth: Bandwidth,
) -> FloodingOutput {
    let sg = ShardedGraph::from_graph(g, part);
    flooding_sharded(&sg, bandwidth)
}

/// Runs flooding directly on sharded storage.
#[allow(clippy::needless_range_loop)] // machine ids index several parallel structures
pub fn flooding_sharded(sg: &ShardedGraph, bandwidth: Bandwidth) -> FloodingOutput {
    let part = sg.partition();
    let k = part.k();
    let n = sg.n();
    let l = id_bits(n);
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, bandwidth, n));
    let mut labels: Vec<Label> = (0..n as Label).collect();
    let remote_in: Vec<FxHashMap<u32, Vec<u32>>> = (0..k).map(|m| remote_in_index(sg, m)).collect();
    // Per machine: the frontier of vertices whose labels changed.
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
    for m in 0..k {
        frontier[m].extend_from_slice(sg.view(m).verts());
    }
    let mut graph_rounds = 0;
    loop {
        graph_rounds += 1;
        // Intra-machine fixpoint over each machine's frontier (free).
        for m in 0..k {
            let view = sg.view(m);
            let mut queue = std::mem::take(&mut frontier[m]);
            let mut pos = 0;
            while pos < queue.len() {
                let v = queue[pos];
                pos += 1;
                let lv = labels[v as usize];
                for &(nb, _) in view.neighbors(v) {
                    if part.home(nb) == m && labels[nb as usize] > lv {
                        labels[nb as usize] = lv;
                        queue.push(nb);
                    }
                }
            }
            frontier[m] = queue;
        }
        // Cross-machine announcements: for every frontier vertex, tell each
        // remote neighbor machine its (possibly improved) label, dedup per
        // (destination, vertex).
        let mut out = Vec::new();
        let mut any_remote = false;
        for m in 0..k {
            let view = sg.view(m);
            let mut per_dst: FxHashMap<usize, FxHashMap<u32, Label>> = FxHashMap::default();
            let mut seen: FxHashSet<u32> = FxHashSet::default();
            for &v in &frontier[m] {
                if !seen.insert(v) {
                    continue;
                }
                let lv = labels[v as usize];
                for &(nb, _) in view.neighbors(v) {
                    let h = part.home(nb);
                    if h != m {
                        per_dst.entry(h).or_default().insert(v, lv);
                    }
                }
            }
            for (dst, updates) in det::into_sorted_entries(per_dst) {
                let payload = Payload::FloodLabels {
                    updates: det::into_sorted_entries(updates),
                };
                let bits = payload.wire_bits_lw(l, l);
                out.push(Envelope::with_bits(m, dst, payload, bits));
                any_remote = true;
            }
            frontier[m].clear();
        }
        if !any_remote {
            // Convergence: one final counted flag exchange (all machines
            // report "no change" to M0, M0 confirms).
            charge_flag_exchange(&mut bsp, k, l);
            break;
        }
        bsp.superstep(out);
        let inboxes = bsp.take_all_inboxes();
        for (m, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                if let Payload::FloodLabels { updates } = env.payload {
                    for (v, lab) in updates {
                        // Apply to the local neighbors of the remote vertex
                        // `v`, found through this machine's reverse index.
                        if let Some(locals) = remote_in[m].get(&v) {
                            for &nb in locals {
                                if labels[nb as usize] > lab {
                                    labels[nb as usize] = lab;
                                    frontier[m].push(nb);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Per-graph-round convergence flag (counted).
        charge_flag_exchange(&mut bsp, k, l);
    }
    FloodingOutput {
        labels,
        stats: bsp.into_stats(),
        graph_rounds,
    }
}

/// One machine of the event-driven flooding variant (runs on the
/// fine-grained [`kmachine::program::Runner`] instead of BSP supersteps).
/// Labels pipeline through the network as soon as they improve, so the
/// event-driven execution can beat the graph-round batching. Holds only
/// its own shard view plus the reverse index over its side of the cut.
struct FloodMachine<'g> {
    id: usize,
    sg: &'g ShardedGraph,
    l: u64,
    labels: FxHashMap<u32, Label>,
    remote_in: FxHashMap<u32, Vec<u32>>,
    /// Local vertices whose labels changed and have not been announced.
    frontier: Vec<u32>,
}

impl FloodMachine<'_> {
    /// Improves local vertex `x` to `lx` (if smaller) and propagates the
    /// intra-machine fixpoint (free local computation).
    fn improve(&mut self, x: u32, lx: Label) {
        {
            let cur = self.labels.get_mut(&x).expect("local vertex");
            if *cur <= lx {
                return;
            }
            *cur = lx;
        }
        self.frontier.push(x);
        self.propagate(x);
    }

    /// Pushes `x`'s current label outward through local edges.
    fn propagate(&mut self, x: u32) {
        let view = self.sg.view(self.id);
        let part = self.sg.partition();
        let mut queue = vec![(x, self.labels[&x])];
        while let Some((y, ly)) = queue.pop() {
            for &(nb, _) in view.neighbors(y) {
                if part.home(nb) == self.id {
                    let cur = self.labels.get_mut(&nb).expect("local vertex");
                    if *cur > ly {
                        *cur = ly;
                        self.frontier.push(nb);
                        queue.push((nb, ly));
                    }
                }
            }
        }
    }
}

impl kmachine::program::Program<Payload> for FloodMachine<'_> {
    fn round(
        &mut self,
        _round: u64,
        inbox: Vec<Envelope<Payload>>,
        out: &mut Vec<Envelope<Payload>>,
    ) {
        for env in inbox {
            if let Payload::FloodLabels { updates } = env.payload {
                for (v, lab) in updates {
                    // `v` is remote: route the improvement through the
                    // reverse index to the local endpoints of its edges.
                    if let Some(locals) = self.remote_in.get(&v) {
                        for nb in locals.clone() {
                            self.improve(nb, lab);
                        }
                    }
                }
            }
        }
        // Announce the frontier: one batch per destination machine.
        let frontier = std::mem::take(&mut self.frontier);
        let view = self.sg.view(self.id);
        let part = self.sg.partition();
        let mut per_dst: FxHashMap<usize, FxHashMap<u32, Label>> = FxHashMap::default();
        for v in frontier {
            let lv = self.labels[&v];
            for &(nb, _) in view.neighbors(v) {
                let h = part.home(nb);
                if h != self.id {
                    per_dst.entry(h).or_default().insert(v, lv);
                }
            }
        }
        for (dst, updates) in det::into_sorted_entries(per_dst) {
            let payload = Payload::FloodLabels {
                updates: det::into_sorted_entries(updates),
            };
            let bits = payload.wire_bits_lw(self.l, self.l);
            out.push(Envelope::with_bits(self.id, dst, payload, bits));
        }
    }

    fn passive(&self) -> bool {
        self.frontier.is_empty()
    }
}

/// Event-driven flooding on the fine-grained network. Produces the same
/// labels as [`flooding_with_partition`]; rounds may differ (pipelining vs
/// batching) but stay in the same `Θ(n/k + D)` regime.
pub fn flooding_event_driven(g: &Graph, part: &Partition, bandwidth: Bandwidth) -> FloodingOutput {
    let sg = ShardedGraph::from_graph(g, part);
    let k = part.k();
    let n = sg.n();
    let l = id_bits(n);
    let machines: Vec<FloodMachine> = (0..k)
        .map(|id| {
            let verts = sg.view(id).verts();
            let mut m = FloodMachine {
                id,
                sg: &sg,
                l,
                labels: verts.iter().map(|&v| (v, v as Label)).collect(),
                remote_in: remote_in_index(&sg, id),
                frontier: Vec::new(),
            };
            // Initial frontier: every vertex announces its own id, after a
            // free local fixpoint.
            for &v in verts {
                m.frontier.push(v);
                m.propagate(v);
            }
            m
        })
        .collect();
    let cfg = kmachine::network::NetworkConfig::new(k, bandwidth, n);
    let mut runner = kmachine::program::Runner::new(cfg, machines);
    let rounds = runner.run(u64::MAX);
    let mut labels = vec![0 as Label; n];
    for m in runner.programs() {
        for (&v, &lab) in &m.labels {
            labels[v as usize] = lab;
        }
    }
    let mut stats = runner.stats().clone();
    stats.rounds = rounds;
    FloodingOutput {
        labels,
        stats,
        graph_rounds: rounds as u32,
    }
}

/// The two-superstep 1-bit convergence exchange (machines → M0 → machines).
fn charge_flag_exchange(bsp: &mut Bsp<Payload>, k: usize, l: u64) {
    let mut up = Vec::new();
    for m in 1..k {
        let payload = Payload::Flag { bit: true };
        let bits = payload.wire_bits_lw(l, l);
        up.push(Envelope::with_bits(m, 0, payload, bits));
    }
    bsp.superstep(up);
    let _ = bsp.take_all_inboxes();
    let mut down = Vec::new();
    for m in 1..k {
        let payload = Payload::Flag { bit: true };
        let bits = payload.wire_bits_lw(l, l);
        down.push(Envelope::with_bits(0, m, payload, bits));
    }
    bsp.superstep(down);
    let _ = bsp.take_all_inboxes();
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    fn check(g: &Graph, k: usize, seed: u64) -> FloodingOutput {
        let out = flooding_connectivity(g, k, seed, Bandwidth::default());
        let truth = refalgo::connected_components(g);
        for (v, &t) in truth.iter().enumerate() {
            assert_eq!(out.labels[v], t as Label, "vertex {v}");
        }
        out
    }

    #[test]
    fn flooding_matches_reference_on_paths_and_cycles() {
        check(&generators::path(50), 4, 1);
        check(&generators::cycle(64), 4, 2);
    }

    #[test]
    fn flooding_matches_reference_on_random_graphs() {
        check(&generators::gnp(300, 0.015, 3), 6, 4);
        check(&generators::planted_components(200, 4, 3, 5), 4, 6);
    }

    #[test]
    fn flooding_runs_directly_from_a_stream() {
        // End-to-end streamed ingestion: no materialized Graph anywhere on
        // the flooding path.
        let sg = ShardedGraph::from_stream(generators::random_connected_stream(500, 400, 7), 5, 8);
        let out = flooding_sharded(&sg, Bandwidth::default());
        assert_eq!(out.component_count(), 1);
        // Cross-check against the materialized oracle.
        let g = generators::random_connected(500, 400, 7);
        let truth = refalgo::connected_components(&g);
        for (v, &t) in truth.iter().enumerate() {
            assert_eq!(out.labels[v], t as Label, "vertex {v}");
        }
    }

    #[test]
    fn graph_rounds_track_diameter() {
        let path = generators::path(200);
        let out = check(&path, 4, 7);
        // Label 0 must travel ~n hops; machine-quotient shortens it only by
        // the free intra-machine hops.
        assert!(
            out.graph_rounds >= 20,
            "a long path needs many graph-rounds, got {}",
            out.graph_rounds
        );
        let clique = generators::complete(64);
        let out2 = check(&clique, 4, 8);
        assert!(
            out2.graph_rounds <= 4,
            "a clique floods in O(1) graph-rounds, got {}",
            out2.graph_rounds
        );
    }

    #[test]
    fn event_driven_flooding_matches_bsp_labels() {
        for (g, k, seed) in [
            (generators::path(150), 4usize, 1u64),
            (generators::gnp(250, 0.02, 2), 6, 3),
            (generators::planted_components(200, 3, 4, 4), 4, 5),
        ] {
            let part = Partition::random_vertex(&g, k, seed);
            let bsp = flooding_with_partition(&g, &part, Bandwidth::default());
            let evt = flooding_event_driven(&g, &part, Bandwidth::default());
            assert_eq!(bsp.labels, evt.labels, "k={k} seed={seed}");
            assert!(evt.stats.rounds > 0);
        }
    }

    #[test]
    fn event_driven_pipelining_is_not_slower_than_batching() {
        // Without per-graph-round convergence flags, the event-driven run
        // should finish in at most the BSP variant's rounds on a path.
        let g = generators::path(300);
        let part = Partition::random_vertex(&g, 4, 9);
        let bsp = flooding_with_partition(&g, &part, Bandwidth::default());
        let evt = flooding_event_driven(&g, &part, Bandwidth::default());
        assert!(
            evt.stats.rounds <= bsp.stats.rounds,
            "event-driven {} vs BSP {}",
            evt.stats.rounds,
            bsp.stats.rounds
        );
    }

    #[test]
    fn isolated_vertices_keep_their_labels() {
        let g = Graph::unweighted(10, [(3, 7)]);
        let out = check(&g, 2, 9);
        assert_eq!(out.component_count(), 9);
    }
}
