//! Edge-checking Borůvka: the GHS-style baseline (paper §1.2, §1.3).
//!
//! Classical MST algorithms (\[14\]) determine outgoing edges by *checking
//! edge states*: every machine caches the component label of every remote
//! neighbor of its vertices, and after each merge the new labels are pushed
//! to all neighboring machines. That notification traffic is `Θ(m)` bits
//! per phase — exactly the congestion the paper's linear sketches avoid
//! ("earlier distributed algorithms such as the classical GHS algorithm ...
//! would incur too much communication since they involve checking the
//! status of each edge", §1.2). Experiment E9 measures the gap as a
//! function of density `m/n`.
//!
//! The merging machinery (DRR + pointer jumping + relabel via proxies) is
//! the same as the core algorithm's, so the measured difference isolates
//! the MWOE-selection strategy. Unlike the Monte-Carlo core, this baseline
//! is deterministic and exact.

use crate::messages::{id_bits, EdgeKey, Label, Payload};
use crate::proxy::ProxyScheme;
use kgraph::graph::Edge;
use kgraph::{Graph, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::det;
use kmachine::message::Envelope;
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use krand::shared::SharedRandomness;
use rustc_hash::{FxHashMap, FxHashSet};

/// How the baseline learns the labels across its edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMode {
    /// Maintain neighbor-label caches; after each merge push every changed
    /// vertex's label once per neighboring machine. The strongest version
    /// of edge checking the k-machine locality allows: `O~(n·k)` bits per
    /// phase (`Θ~(n/k)` rounds overall, the conversion-theorem bound).
    BatchedPush,
    /// No caches: every phase every machine *tests each incident
    /// cross-machine edge individually* (test + reply, `Θ(log n)` bits
    /// each) — the classical GHS behaviour the paper calls out ("they
    /// involve checking the status of each edge", §1.2): `Θ(m)` bits per
    /// phase.
    PerEdgeTest,
}

/// Result of the edge-checking Borůvka baseline.
#[derive(Clone, Debug)]
pub struct EdgeBoruvkaOutput {
    /// The exact minimum spanning forest.
    pub edges: Vec<Edge>,
    /// Total forest weight.
    pub total_weight: u128,
    /// Communication statistics.
    pub stats: CommStats,
    /// Borůvka phases executed.
    pub phases: u32,
    /// Bits spent purely on learning edge status: label-change
    /// notifications (BatchedPush) or per-edge tests (PerEdgeTest).
    pub notification_bits: u64,
}

/// Per-proxied-component state during one phase.
struct Comp {
    parts: Vec<u16>,
    best: Option<(EdgeKey, Label)>,
    parent: Option<Label>,
    ptr: Label,
    ptr_done: bool,
}

/// Runs edge-checking Borůvka over `k` machines with [`CheckMode::BatchedPush`].
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::EdgeBoruvka`]); bit-identical to the session path.
pub fn edge_boruvka_mst(g: &Graph, k: usize, seed: u64, bandwidth: Bandwidth) -> EdgeBoruvkaOutput {
    edge_boruvka_mst_mode(g, k, seed, bandwidth, CheckMode::BatchedPush)
}

/// Runs edge-checking Borůvka over `k` machines in the given mode.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::EdgeBoruvka`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
pub fn edge_boruvka_mst_mode(
    g: &Graph,
    k: usize,
    seed: u64,
    bandwidth: Bandwidth,
    mode: CheckMode,
) -> EdgeBoruvkaOutput {
    use crate::session::{Cluster, EdgeBoruvka, EdgeBoruvkaConfig, Problem};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(EdgeBoruvka::with(EdgeBoruvkaConfig { bandwidth, mode }))
        .output
}

/// Runs edge-checking Borůvka directly on sharded storage.
pub fn edge_boruvka_sharded(
    sg: &ShardedGraph,
    seed: u64,
    bandwidth: Bandwidth,
    mode: CheckMode,
) -> EdgeBoruvkaOutput {
    let part = sg.partition();
    let k = sg.k();
    let n = sg.n();
    let l = id_bits(n);
    let shared = SharedRandomness::new(seed);
    let scheme = ProxyScheme::new(shared, k);
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, bandwidth, n));
    let mut labels: Vec<Label> = (0..n as Label).collect();
    // Each machine's cache of neighbor labels starts exact for free: at
    // phase 0 every label is the vertex id, which hashing makes public.
    let mut mst: Vec<Edge> = Vec::new();
    let mut notification_bits = 0u64;
    // PerEdgeTest: each machine counts its shard's cross-machine edges per
    // ordered machine pair (the per-phase test traffic is data-independent).
    let mut cross: FxHashMap<(usize, usize), u64> = FxHashMap::default();
    if mode == CheckMode::PerEdgeTest {
        for m in 0..k {
            for e in sg.view(m).local_edges() {
                let (hu, hv) = (part.home(e.u), part.home(e.v));
                if hu != hv {
                    *cross.entry((hu, hv)).or_insert(0) += 1;
                    *cross.entry((hv, hu)).or_insert(0) += 1;
                }
            }
        }
    }
    let max_phases = 12 * l as u32 + 2;
    let mut phases = 0;
    for p in 0..max_phases {
        phases = p + 1;
        // --- PerEdgeTest: every phase after the first, each machine tests
        //     each incident cross-machine edge individually (test + reply
        //     of Θ(log n) bits) — the Θ(m)-bits-per-phase regime. Phase-0
        //     labels are vertex ids, computable from public hashing. ---
        if mode == CheckMode::PerEdgeTest && p > 0 {
            for _direction in 0..2 {
                let mut msgs = Vec::new();
                for ((i, j), &c) in det::sorted_entries(&cross) {
                    let payload = Payload::TestBatch { count: c };
                    let bits = payload.wire_bits_lw(l, l);
                    notification_bits += bits;
                    // Tests flow i→j; the second pass carries the replies
                    // (the map is symmetric, so reversing roles is free).
                    msgs.push(Envelope::with_bits(i, j, payload, bits));
                }
                bsp.superstep(msgs);
                let _ = bsp.take_all_inboxes();
            }
        }
        // --- Local MWOE candidates from cached labels (exact). ---
        let mut proxies: Vec<FxHashMap<Label, Comp>> =
            (0..k).map(|_| FxHashMap::default()).collect();
        let mut out = Vec::new();
        for m in 0..k {
            let view = sg.view(m);
            let mut local_best: FxHashMap<Label, (EdgeKey, Label)> = FxHashMap::default();
            for &v in view.verts() {
                let lv = labels[v as usize];
                for &(nb, w) in view.neighbors(v) {
                    let lnb = labels[nb as usize]; // cache is exact each phase
                    if lnb != lv {
                        let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
                        let key = (w, a, b);
                        let entry = local_best.entry(lv).or_insert((key, lnb));
                        if key < entry.0 {
                            *entry = (key, lnb);
                        }
                    }
                }
            }
            for (label, (key, to_label)) in det::into_sorted_entries(local_best) {
                let dst = scheme.proxy_of(part, p, 0, label);
                let payload = Payload::Candidate {
                    label,
                    key,
                    to_label,
                };
                let bits = payload.wire_bits_lw(l, l);
                out.push(Envelope::with_bits(m, dst, payload, bits));
            }
        }
        let any = !out.is_empty();
        bsp.superstep(out);
        let inboxes = bsp.take_all_inboxes();
        // Convergence flags (counted like the core algorithm's).
        flag_exchange(&mut bsp, k, l);
        if !any {
            break;
        }
        for (m, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                if let Payload::Candidate {
                    label,
                    key,
                    to_label,
                } = env.payload
                {
                    let comp = proxies[m].entry(label).or_insert(Comp {
                        parts: Vec::new(),
                        best: None,
                        parent: None,
                        ptr: label,
                        ptr_done: true,
                    });
                    if !comp.parts.contains(&(env.src as u16)) {
                        comp.parts.push(env.src as u16);
                    }
                    if comp.best.is_none_or(|(bk, _)| key < bk) {
                        comp.best = Some((key, to_label));
                    }
                }
            }
        }
        // --- DRR parents from shared ranks; MST edges at merging comps. ---
        for proxy in &mut proxies {
            for (&label, c) in proxy.iter_mut() {
                if let Some((key, to)) = c.best {
                    if scheme.connects(p, label, to) {
                        c.parent = Some(to);
                        c.ptr = to;
                        c.ptr_done = false;
                        mst.push(Edge::new(key.1, key.2, key.0));
                    }
                }
            }
        }
        // --- Pointer jumping (same schedule as the core engine). ---
        let depth_bound = 6 * (id_bits(n + 1) as u32) + 2;
        let iters = 32 - (2 * depth_bound).leading_zeros() + 1;
        for _ in 0..iters {
            if !proxies.iter().any(|px| px.values().any(|c| !c.ptr_done)) {
                flag_exchange(&mut bsp, k, l);
                break;
            }
            flag_exchange(&mut bsp, k, l);
            let mut queries = Vec::new();
            for (m, proxy) in proxies.iter().enumerate() {
                for (&label, c) in proxy {
                    if !c.ptr_done {
                        let payload = Payload::PtrQuery {
                            asker: label,
                            target: c.ptr,
                        };
                        let bits = payload.wire_bits_lw(l, l);
                        queries.push(Envelope::with_bits(
                            m,
                            scheme.proxy_of(part, p, 0, c.ptr),
                            payload,
                            bits,
                        ));
                    }
                }
            }
            bsp.superstep(queries);
            let inboxes = bsp.take_all_inboxes();
            let mut replies = Vec::new();
            for (m, inbox) in inboxes.into_iter().enumerate() {
                for env in inbox {
                    if let Payload::PtrQuery { asker, target } = env.payload {
                        // A target with no candidates this phase is a root.
                        let (ptr, done) = proxies[m]
                            .get(&target)
                            .map_or((target, true), |t| (t.ptr, t.ptr_done));
                        let payload = Payload::PtrReply { asker, ptr, done };
                        let bits = payload.wire_bits_lw(l, l);
                        replies.push(Envelope::with_bits(m, env.src, payload, bits));
                    }
                }
            }
            bsp.superstep(replies);
            let inboxes = bsp.take_all_inboxes();
            for (m, inbox) in inboxes.into_iter().enumerate() {
                for env in inbox {
                    if let Payload::PtrReply { asker, ptr, done } = env.payload {
                        if let Some(c) = proxies[m].get_mut(&asker) {
                            c.ptr = ptr;
                            c.ptr_done = done;
                        }
                    }
                }
            }
        }
        // --- Relabel parts. ---
        let mut relabels = Vec::new();
        for (m, proxy) in proxies.iter().enumerate() {
            for (&label, c) in proxy {
                if c.parent.is_some() && c.ptr != label {
                    for &pm in &c.parts {
                        let payload = Payload::Relabel {
                            old: label,
                            new: c.ptr,
                        };
                        let bits = payload.wire_bits_lw(l, l);
                        relabels.push(Envelope::with_bits(m, pm as usize, payload, bits));
                    }
                }
            }
        }
        bsp.superstep(relabels);
        let inboxes = bsp.take_all_inboxes();
        let mut map: FxHashMap<Label, Label> = FxHashMap::default();
        for inbox in inboxes {
            for env in inbox {
                if let Payload::Relabel { old, new } = env.payload {
                    map.insert(old, new);
                }
            }
        }
        // --- Apply relabels; under BatchedPush additionally push every
        //     changed vertex label once per neighboring machine (keeps
        //     every cache exact for the next phase). ---
        let mut notify: FxHashMap<(usize, usize), Vec<(u32, Label)>> = FxHashMap::default();
        for home in 0..k {
            let view = sg.view(home);
            for &v in view.verts() {
                let old = labels[v as usize];
                if let Some(&new) = map.get(&old) {
                    labels[v as usize] = new;
                    if mode == CheckMode::BatchedPush {
                        let mut dsts: FxHashSet<usize> = FxHashSet::default();
                        for &(nb, _) in view.neighbors(v) {
                            let h = part.home(nb);
                            if h != home {
                                dsts.insert(h);
                            }
                        }
                        for dst in det::sorted_members(&dsts) {
                            notify.entry((home, dst)).or_default().push((v, new));
                        }
                    }
                }
            }
        }
        if mode == CheckMode::BatchedPush {
            let mut notes = Vec::new();
            for ((src, dst), updates) in det::into_sorted_entries(notify) {
                let payload = Payload::FloodLabels { updates };
                let bits = payload.wire_bits_lw(l, l);
                notification_bits += bits;
                notes.push(Envelope::with_bits(src, dst, payload, bits));
            }
            bsp.superstep(notes);
            let _ = bsp.take_all_inboxes();
        }
    }
    let mut edges = mst;
    edges.sort_unstable_by_key(|e| (e.u, e.v));
    edges.dedup();
    let total_weight = edges.iter().map(|e| e.w as u128).sum();
    EdgeBoruvkaOutput {
        edges,
        total_weight,
        stats: bsp.into_stats(),
        phases,
        notification_bits,
    }
}

/// Two-superstep 1-bit convergence exchange.
fn flag_exchange(bsp: &mut Bsp<Payload>, k: usize, l: u64) {
    for dir in 0..2 {
        let mut msgs = Vec::new();
        for m in 1..k {
            let payload = Payload::Flag { bit: true };
            let bits = payload.wire_bits_lw(l, l);
            let (s, d) = if dir == 0 { (m, 0) } else { (0, m) };
            msgs.push(Envelope::with_bits(s, d, payload, bits));
        }
        bsp.superstep(msgs);
        let _ = bsp.take_all_inboxes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    fn check(g: &Graph, k: usize, seed: u64) -> EdgeBoruvkaOutput {
        let out = edge_boruvka_mst(g, k, seed, Bandwidth::default());
        let reference = refalgo::kruskal(g);
        assert!(refalgo::is_spanning_forest(g, &out.edges));
        assert_eq!(out.total_weight, refalgo::forest_weight(&reference));
        out
    }

    #[test]
    fn exact_mst_on_weighted_graphs() {
        let g = generators::randomize_weights(&generators::random_connected(120, 150, 1), 999, 2);
        check(&g, 4, 3);
        let grid = generators::randomize_weights(&generators::grid(8, 9), 50, 4);
        check(&grid, 6, 5);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = generators::randomize_weights(&generators::planted_components(90, 3, 4, 6), 77, 7);
        let out = check(&g, 4, 8);
        assert_eq!(out.edges.len(), 90 - 3);
    }

    #[test]
    fn per_edge_test_mode_is_exact_and_pays_theta_m_per_phase() {
        let g = generators::randomize_weights(&generators::gnm(200, 3000, 21), 500, 22);
        let out = edge_boruvka_mst_mode(&g, 4, 23, Bandwidth::default(), CheckMode::PerEdgeTest);
        let reference = refalgo::kruskal(&g);
        assert!(refalgo::is_spanning_forest(&g, &out.edges));
        assert_eq!(out.total_weight, refalgo::forest_weight(&reference));
        // Each post-phase-0 phase tests every cross-machine edge twice in
        // each direction: the traffic must be at least (phases−1)·m·6L·(1−1/k)-ish.
        let l = 8; // ceil_log2(200)
        let m_cross_lb = (g.m() as u64) / 2; // loose lower bound on cross edges
        assert!(
            out.notification_bits > (out.phases as u64 - 1) * m_cross_lb * 6 * l / 2,
            "per-edge testing should move Θ(m) bits per phase: {} bits, {} phases",
            out.notification_bits,
            out.phases
        );
        // And it must dwarf the batched variant on the same input.
        let batched = edge_boruvka_mst(&g, 4, 23, Bandwidth::default());
        assert!(out.notification_bits > 3 * batched.notification_bits);
    }

    #[test]
    fn notification_bits_grow_with_density() {
        // Notifications are deduplicated per (vertex, neighbor-machine), so
        // they grow with density only until each vertex touches all k
        // machines; assert monotone growth plus nonzero traffic. The E9
        // experiment measures the full separation against the sketch
        // algorithm at scale.
        let sparse = generators::randomize_weights(&generators::gnm(300, 600, 9), 100, 10);
        let dense = generators::randomize_weights(&generators::gnm(300, 6000, 11), 100, 12);
        let a = check(&sparse, 4, 13);
        let b = check(&dense, 4, 13);
        assert!(a.notification_bits > 0);
        assert!(
            b.notification_bits > a.notification_bits,
            "denser graph must notify at least as much: {} vs {}",
            a.notification_bits,
            b.notification_bits
        );
    }
}
