//! MST under the random edge partition (paper §1.3, footnote 5).
//!
//! In the REP model `Θ~(n/k)` rounds are tight for MST. The upper bound:
//!
//! 1. **Filter.** Each machine applies the cycle property to its local edge
//!    set (local Kruskal): any edge that closes a cycle among lighter local
//!    edges cannot be in the global MST. At most `n − 1` edges survive per
//!    machine.
//! 2. **Convert REP → RVP.** Surviving edges are routed to the home machine
//!    (hash) of their smaller endpoint: ≤ `n − 1` edges per source machine,
//!    spread over `k` links — `O~(n/k)` rounds. This is the dominant term.
//! 3. **Finish.** Run the fast RVP MST algorithm on the filtered union.
//!
//! Like the other baselines, the real entry point is the sharded one
//! ([`rep_mst_sharded`], also reachable as the session problem
//! [`crate::session::RepMst`]): REP edge ownership is a public hash of the
//! canonical edge key, so each machine re-routes the edges its RVP shard
//! owns to their REP owners without any global edge list. The `&Graph`
//! front end shards first and is bit-identical.
//!
//! Experiment E12 contrasts the measured `Θ~(n/k)` here with the RVP
//! model's `Θ~(n/k²)`.

use crate::messages::{id_bits, Payload};
use crate::mst::{minimum_spanning_tree_with_partition, MstConfig, MstOutput};
use kgraph::graph::Edge;
use kgraph::unionfind::UnionFind;
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::bsp::Bsp;
use kmachine::message::Envelope;
use kmachine::network::NetworkConfig;

/// Result of the REP-model MST (same shape as the RVP result, plus the
/// number of edges that survived filtering).
#[derive(Clone, Debug)]
pub struct RepMstOutput {
    /// The MST computation result (edges, weight, combined stats).
    pub mst: MstOutput,
    /// Edges surviving the local cycle-property filters.
    pub filtered_edges: usize,
    /// The REP→RVP routing stage in isolation — the `Θ~(n/k)` term that
    /// separates the REP model from RVP (experiment E12): its rounds scale
    /// as `1/k` while the post-filter core run scales as `1/k²`.
    pub routing: kmachine::metrics::CommStats,
}

/// Runs the REP-model MST over `k` machines.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::RepMst`]); bit-identical to [`rep_mst_sharded`] on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
pub fn rep_mst(g: &Graph, k: usize, seed: u64, cfg: &MstConfig) -> RepMstOutput {
    use crate::session::{Cluster, Problem, RepMst};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(RepMst::with(cfg.clone()))
        .output
}

/// Runs the REP-model MST directly on sharded storage.
///
/// The model's random *edge* partition is realized by a public hash of the
/// canonical edge key (streamed shards have no global edge index), so every
/// machine can compute any edge's REP owner locally — the same
/// shared-hashing device the RVP home partition uses.
pub fn rep_mst_sharded(sg: &ShardedGraph, seed: u64, cfg: &MstConfig) -> RepMstOutput {
    let rvp = sg.partition();
    let k = sg.k();
    let n = sg.n();
    let l = id_bits(n);
    // Step 0 (ingestion): each RVP shard re-routes the edges it owns to
    // their hashed REP owners — one pass over per-machine storage, no
    // machine ever sees the full edge set. This models the §1.3 input
    // assignment itself and is therefore not charged. Ownership is the
    // same public hash `Partition::random_edge` uses, so the REP partition
    // abstraction and this streamed path cannot drift apart.
    let rep_prf = Partition::rep_owner_prf(seed);
    let mut local: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for m in 0..k {
        for e in sg.view(m).local_edges() {
            local[Partition::rep_edge_owner(&rep_prf, n, k, e.u, e.v)].push(e);
        }
    }
    // Step 1: local cycle-property filtering (free local computation).
    let mut kept: Vec<Vec<Edge>> = Vec::with_capacity(k);
    for mut shard in local {
        shard.sort_unstable_by_key(Graph::edge_key);
        let mut uf = UnionFind::new(n);
        let mut keep = Vec::new();
        for e in shard {
            if uf.union(e.u, e.v) {
                keep.push(e);
            }
        }
        kept.push(keep);
    }
    // Step 2: route surviving edges to RVP homes (one superstep, counted).
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, cfg.bandwidth, n));
    let mut out = Vec::new();
    for (m, edges) in kept.iter().enumerate() {
        let mut per_dst: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); k];
        for e in edges {
            per_dst[rvp.home(e.u)].push((e.u, e.v, e.w));
        }
        for (dst, batch) in per_dst.into_iter().enumerate() {
            if dst != m && !batch.is_empty() {
                let payload = Payload::EdgeList { edges: batch };
                let bits = payload.wire_bits_lw(l, l);
                out.push(Envelope::with_bits(m, dst, payload, bits));
            }
        }
    }
    bsp.superstep(out);
    let _ = bsp.take_all_inboxes();
    let routing = bsp.into_stats();
    // Step 3: the RVP algorithm on the filtered union (MST-preserving by
    // the cycle property; REP assigns each edge once so there are no dups).
    let union: Vec<Edge> = kept.into_iter().flatten().collect();
    let filtered_edges = union.len();
    let filtered = Graph::from_dedup_edges(n, union);
    let mut mst = minimum_spanning_tree_with_partition(&filtered, rvp, seed ^ 0x9E9, cfg);
    let mut combined = routing.clone();
    combined.absorb(&mst.stats);
    mst.stats = combined;
    RepMstOutput {
        mst,
        filtered_edges,
        routing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    #[test]
    fn filtering_preserves_the_mst() {
        let g = generators::randomize_weights(&generators::random_connected(120, 300, 1), 500, 2);
        let out = rep_mst(&g, 4, 3, &MstConfig::default());
        let reference = refalgo::kruskal(&g);
        assert!(refalgo::is_spanning_forest(&g, &out.mst.edges));
        assert_eq!(out.mst.total_weight, refalgo::forest_weight(&reference));
    }

    #[test]
    fn filtering_shrinks_dense_graphs() {
        let g = generators::randomize_weights(&generators::gnm(200, 8000, 4), 300, 5);
        let out = rep_mst(&g, 8, 6, &MstConfig::default());
        // Each of 8 machines keeps < n edges.
        assert!(out.filtered_edges < 8 * 200);
        assert!(out.filtered_edges < g.m());
    }

    #[test]
    fn disconnected_inputs_yield_spanning_forests() {
        let g = generators::randomize_weights(&generators::planted_components(100, 4, 5, 7), 50, 8);
        let out = rep_mst(&g, 4, 9, &MstConfig::default());
        assert_eq!(out.mst.edges.len(), 100 - 4);
        assert!(refalgo::is_spanning_forest(&g, &out.mst.edges));
    }

    #[test]
    fn sharded_and_graph_front_ends_agree_bit_for_bit() {
        let g = generators::randomize_weights(&generators::gnm(150, 600, 11), 400, 12);
        let (k, seed) = (5, 13);
        let a = rep_mst(&g, k, seed, &MstConfig::default());
        let part = Partition::random_vertex(&g, k, seed);
        let sg = ShardedGraph::from_graph(&g, &part);
        let b = rep_mst_sharded(&sg, seed, &MstConfig::default());
        assert_eq!(a.mst.edges, b.mst.edges);
        assert_eq!(a.mst.stats.rounds, b.mst.stats.rounds);
        assert_eq!(a.mst.stats.total_bits, b.mst.stats.total_bits);
        assert_eq!(a.filtered_edges, b.filtered_edges);
        assert_eq!(a.routing.rounds, b.routing.rounds);
    }

    #[test]
    fn rep_ownership_covers_every_edge_exactly_once() {
        // On a forest input no machine's local Kruskal can drop anything
        // (there are no cycles to close), so the filtered union size equals
        // m exactly iff the hashed REP assignment gave every edge exactly
        // one owner: a dropped edge would shrink it, a double assignment
        // would inflate it.
        let g = generators::randomize_weights(&generators::random_tree(240, 15), 100, 16);
        let out = rep_mst(&g, 4, 17, &MstConfig::default());
        assert_eq!(
            out.filtered_edges,
            g.m(),
            "every forest edge must reach exactly one REP owner"
        );
        assert!(refalgo::is_spanning_forest(&g, &out.mst.edges));
        // And the ownership function agrees with the REP Partition
        // abstraction edge for edge.
        let (k, seed) = (4usize, 17u64);
        let rep = Partition::random_edge(&g, k, seed);
        let prf = Partition::rep_owner_prf(seed);
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(
                rep.edge_owner(i),
                Partition::rep_edge_owner(&prf, g.n(), k, e.u, e.v),
                "edge ({}, {})",
                e.u,
                e.v
            );
        }
    }
}
