//! MST under the random edge partition (paper §1.3, footnote 5).
//!
//! In the REP model `Θ~(n/k)` rounds are tight for MST. The upper bound:
//!
//! 1. **Filter.** Each machine applies the cycle property to its local edge
//!    set (local Kruskal): any edge that closes a cycle among lighter local
//!    edges cannot be in the global MST. At most `n − 1` edges survive per
//!    machine.
//! 2. **Convert REP → RVP.** Surviving edges are routed to the home machine
//!    (hash) of their smaller endpoint: ≤ `n − 1` edges per source machine,
//!    spread over `k` links — `O~(n/k)` rounds. This is the dominant term.
//! 3. **Finish.** Run the fast RVP MST algorithm on the filtered union.
//!
//! Experiment E12 contrasts the measured `Θ~(n/k)` here with the RVP
//! model's `Θ~(n/k²)`.

use crate::messages::{id_bits, Payload};
use crate::mst::{minimum_spanning_tree_with_partition, MstConfig, MstOutput};
use kgraph::graph::Edge;
use kgraph::unionfind::UnionFind;
use kgraph::{Graph, Partition};
use kmachine::bsp::Bsp;
use kmachine::message::Envelope;
use kmachine::network::NetworkConfig;

/// Result of the REP-model MST (same shape as the RVP result, plus the
/// number of edges that survived filtering).
#[derive(Clone, Debug)]
pub struct RepMstOutput {
    /// The MST computation result (edges, weight, combined stats).
    pub mst: MstOutput,
    /// Edges surviving the local cycle-property filters.
    pub filtered_edges: usize,
    /// The REP→RVP routing stage in isolation — the `Θ~(n/k)` term that
    /// separates the REP model from RVP (experiment E12): its rounds scale
    /// as `1/k` while the post-filter core run scales as `1/k²`.
    pub routing: kmachine::metrics::CommStats,
}

/// Runs the REP-model MST over `k` machines.
pub fn rep_mst(g: &Graph, k: usize, seed: u64, cfg: &MstConfig) -> RepMstOutput {
    let rep = Partition::random_edge(g, k, seed);
    let n = g.n();
    let l = id_bits(n);
    // Step 0 (ingestion): one streaming pass over the edge list routes each
    // edge to its REP owner — the per-machine edge shards of the §1.3
    // model; no machine ever sees the full edge set.
    let mut local: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for (i, e) in g.edges().iter().enumerate() {
        local[rep.edge_owner(i)].push(*e);
    }
    // Step 1: local cycle-property filtering (free local computation).
    let mut kept: Vec<Vec<Edge>> = Vec::with_capacity(k);
    for mut shard in local {
        shard.sort_unstable_by_key(Graph::edge_key);
        let mut uf = UnionFind::new(n);
        let mut keep = Vec::new();
        for e in shard {
            if uf.union(e.u, e.v) {
                keep.push(e);
            }
        }
        kept.push(keep);
    }
    // Step 2: route surviving edges to RVP homes (one superstep, counted).
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(k, cfg.bandwidth, n));
    let rvp = Partition::random_vertex(g, k, seed);
    let mut out = Vec::new();
    for (m, edges) in kept.iter().enumerate() {
        let mut per_dst: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); k];
        for e in edges {
            per_dst[rvp.home(e.u)].push((e.u, e.v, e.w));
        }
        for (dst, batch) in per_dst.into_iter().enumerate() {
            if dst != m && !batch.is_empty() {
                let payload = Payload::EdgeList { edges: batch };
                let bits = payload.wire_bits(l);
                out.push(Envelope::with_bits(m, dst, payload, bits));
            }
        }
    }
    bsp.superstep(out);
    let _ = bsp.take_all_inboxes();
    let routing = bsp.into_stats();
    // Step 3: the RVP algorithm on the filtered union (MST-preserving by
    // the cycle property; REP assigns each edge once so there are no dups).
    let union: Vec<Edge> = kept.into_iter().flatten().collect();
    let filtered_edges = union.len();
    let filtered = Graph::from_dedup_edges(n, union);
    let mut mst = minimum_spanning_tree_with_partition(&filtered, &rvp, seed ^ 0x9E9, cfg);
    let mut combined = routing.clone();
    combined.absorb(&mst.stats);
    mst.stats = combined;
    RepMstOutput {
        mst,
        filtered_edges,
        routing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    #[test]
    fn filtering_preserves_the_mst() {
        let g = generators::randomize_weights(&generators::random_connected(120, 300, 1), 500, 2);
        let out = rep_mst(&g, 4, 3, &MstConfig::default());
        let reference = refalgo::kruskal(&g);
        assert!(refalgo::is_spanning_forest(&g, &out.mst.edges));
        assert_eq!(out.mst.total_weight, refalgo::forest_weight(&reference));
    }

    #[test]
    fn filtering_shrinks_dense_graphs() {
        let g = generators::randomize_weights(&generators::gnm(200, 8000, 4), 300, 5);
        let out = rep_mst(&g, 8, 6, &MstConfig::default());
        // Each of 8 machines keeps < n edges.
        assert!(out.filtered_edges < 8 * 200);
        assert!(out.filtered_edges < g.m());
    }

    #[test]
    fn disconnected_inputs_yield_spanning_forests() {
        let g = generators::randomize_weights(&generators::planted_components(100, 4, 5, 7), 50, 8);
        let out = rep_mst(&g, 4, 9, &MstConfig::default());
        assert_eq!(out.mst.edges.len(), 100 - 4);
        assert!(refalgo::is_spanning_forest(&g, &out.mst.edges));
    }
}
