//! Spanning forest in `O~(n/k²)` rounds (paper §1, §3.1).
//!
//! The paper's introduction lists "computing a spanning tree" among the
//! problems the fast connectivity algorithm unlocks: the connectivity
//! engine already merges along one verified outgoing edge per component per
//! phase — recording those merge edges yields a spanning forest with *no*
//! weight-elimination overhead (unlike MST, which pays a `Θ(log n)` factor
//! for MWOEs). Output follows Theorem 2(a)'s relaxed criterion: each forest
//! edge is output by at least one machine (the proxy that chose it).

use crate::engine::{Engine, EngineConfig, Mode};
use crate::mst::MstConfig;
use kgraph::graph::Edge;
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::metrics::CommStats;

/// The result of a spanning-forest run.
#[derive(Clone, Debug)]
pub struct SpanningForestOutput {
    /// The forest edges (canonical, deduplicated, sorted).
    pub edges: Vec<Edge>,
    /// Full communication accounting.
    pub stats: CommStats,
    /// Borůvka-style phases executed.
    pub phases: u32,
    /// How many edges each machine output.
    pub edges_per_machine: Vec<usize>,
}

/// Computes a spanning forest of `g` over `k` machines (one spanning tree
/// per connected component).
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::SpanningForest`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
///
/// ```
/// use kconn::st::spanning_forest;
/// use kconn::mst::MstConfig;
/// use kgraph::{generators, refalgo};
///
/// let g = generators::cycle(40);
/// let out = spanning_forest(&g, 4, 1, &MstConfig::default());
/// assert_eq!(out.edges.len(), 39);
/// assert!(refalgo::is_spanning_forest(&g, &out.edges));
/// ```
pub fn spanning_forest(g: &Graph, k: usize, seed: u64, cfg: &MstConfig) -> SpanningForestOutput {
    use crate::session::{Cluster, Problem, SpanningForest};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(SpanningForest::with(cfg.clone()))
        .output
}

/// Computes a spanning forest with an explicit partition — the harness
/// path; everyone else goes through [`crate::session::Cluster`].
pub fn spanning_forest_with_partition(
    g: &Graph,
    part: &Partition,
    seed: u64,
    cfg: &MstConfig,
) -> SpanningForestOutput {
    let sg = ShardedGraph::from_graph(g, part);
    spanning_forest_sharded(&sg, seed, cfg)
}

/// Computes a spanning forest directly on sharded storage (the streaming
/// ingestion path).
pub fn spanning_forest_sharded(
    sg: &ShardedGraph,
    seed: u64,
    cfg: &MstConfig,
) -> SpanningForestOutput {
    let engine_cfg = EngineConfig {
        bandwidth: cfg.bandwidth,
        reps: cfg.reps,
        charge_shared_randomness: cfg.charge_shared_randomness,
        run_output_protocol: false,
        max_phases: cfg.max_phases,
        faults: cfg.faults.clone(),
        recovery: cfg.recovery,
        contract: cfg.contract,
        encoding: cfg.encoding,
        transport: cfg.transport,
        trace: cfg.trace.clone(),
        ..EngineConfig::default()
    };
    let result = Engine::new(sg, Mode::SpanningForest, seed, engine_cfg).run();
    let mut edges: Vec<Edge> = result
        .mst_edges
        .iter()
        .map(|&(u, v, w)| Edge::new(u, v, w))
        .collect();
    edges.sort_unstable_by_key(|e| (e.u, e.v));
    edges.dedup();
    SpanningForestOutput {
        edges,
        stats: result.stats,
        phases: result.phases,
        edges_per_machine: result.mst_edges_per_machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::minimum_spanning_tree;
    use kgraph::{generators, refalgo};

    fn check(g: &Graph, k: usize, seed: u64) -> SpanningForestOutput {
        let out = spanning_forest(g, k, seed, &MstConfig::default());
        assert!(
            refalgo::is_spanning_forest(g, &out.edges),
            "output must span each component acyclically"
        );
        assert_eq!(out.edges.len(), g.n() - refalgo::component_count(g));
        out
    }

    #[test]
    fn spans_connected_graphs() {
        check(&generators::random_connected(200, 150, 1), 4, 2);
        check(&generators::grid(9, 11), 4, 3);
        check(&generators::cycle(64), 2, 4);
    }

    #[test]
    fn spans_each_component_of_disconnected_graphs() {
        let g = generators::planted_components(180, 3, 4, 5);
        let out = check(&g, 4, 6);
        assert_eq!(out.edges.len(), 180 - 3);
    }

    #[test]
    fn cheaper_than_mst_on_weighted_graphs() {
        // No elimination loop: the spanning forest must cost well under the
        // MST run on the same input.
        let g = generators::randomize_weights(&generators::gnm(1024, 4096, 7), 1_000_000, 8);
        let st = spanning_forest(&g, 8, 9, &MstConfig::default());
        let mst = minimum_spanning_tree(&g, 8, 9, &MstConfig::default());
        assert!(
            2 * st.stats.rounds < mst.stats.rounds,
            "ST {} rounds should be ≪ MST {} rounds",
            st.stats.rounds,
            mst.stats.rounds
        );
    }

    #[test]
    fn handles_isolated_vertices() {
        let g = Graph::unweighted(30, [(0, 1), (1, 2)]);
        let out = check(&g, 2, 10);
        assert_eq!(out.edges.len(), 2);
    }
}
