//! Message payloads of the distributed algorithms, with explicit wire sizes.
//!
//! Wire sizes follow the paper's encodings: vertex ids cost `⌈log₂ n⌉`
//! bits, component labels `⌈log₂ n'⌉` bits where `n'` is the size of the
//! current (possibly contracted) label space, weights 32 bits, sketches
//! their `polylog(n)` size ([`ksketch::SketchParams::wire_bits`]), plus a
//! flat 16-bit type tag per message. Sizes are computed once per message by
//! [`Payload::wire_bits_lw`], which needs the vertex id width
//! `L = ⌈log₂ n⌉` and the label width `Lw = ⌈log₂ n'⌉` as context
//! ([`Payload::wire_bits`] is the uncontracted `Lw = L` special case).
//!
//! Under [`kmachine::message::Encoding::Varint`] a directed link's batch is
//! charged by [`kmachine::message::BatchWire`] instead: per-variant runs
//! share one tag, carry a varint count, and ship their primary id field as
//! a delta-sorted varint stream — see [`Payload::batch_wire_bits`].

use kmachine::message::{
    delta_varint_bits, put_signed, put_signed128, put_varint, varint_bits, BatchWire, Envelope,
    WireCodec, WireError, WireReader,
};
use krand::m61::M61;
use ksketch::{Cell, L0Sketch, SketchParams};

/// A component label. Labels are always ids of representative vertices, so
/// they fit in the same `⌈log₂ n⌉` bits as vertex ids.
pub type Label = u64;

/// An MST comparison key: `(weight, u, v)` — the tie-free total order.
pub type EdgeKey = (u64, u32, u32);

/// Every message any of the algorithms sends.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A component part's combined sketch, machine → component proxy (§2.4).
    PartSketch {
        /// The component label this part belongs to.
        label: Label,
        /// The part's combined sketch (sum of its vertices' sketches).
        sketch: Box<L0Sketch>,
    },
    /// Proxy asks `home(ask)` about endpoint `ask` of candidate edge
    /// `{ask, other}`: current label, edge existence, and weight.
    EdgeProbe {
        /// Component on whose behalf the proxy asks.
        comp: Label,
        /// The endpoint whose home machine is being asked.
        ask: u32,
        /// The other endpoint of the candidate edge.
        other: u32,
    },
    /// Home machine's answer to an [`Payload::EdgeProbe`].
    EdgeProbeReply {
        /// Component the probe belonged to.
        comp: Label,
        /// The endpoint that was asked about.
        vertex: u32,
        /// Its current component label.
        label: Label,
        /// Whether the probed edge exists in `G`.
        exists: bool,
        /// The edge weight (0 if absent).
        weight: u64,
    },
    /// MST elimination broadcast: parts must rebuild sketches filtered to
    /// edges with key strictly below `key`; `None` means the component is
    /// done eliminating (its MWOE is fixed).
    Threshold {
        /// The component label.
        label: Label,
        /// The new strict upper bound, or `None` when done.
        key: Option<EdgeKey>,
    },
    /// Pointer-jumping query, proxy(asker) → proxy(target) (§2.5).
    PtrQuery {
        /// The component doing the jump.
        asker: Label,
        /// The component whose pointer is requested.
        target: Label,
    },
    /// Pointer-jumping reply.
    PtrReply {
        /// The component doing the jump.
        asker: Label,
        /// The target's current pointer.
        ptr: Label,
        /// Whether the target's pointer is already a root.
        done: bool,
    },
    /// Merge command, proxy → machines holding parts of `old`.
    Relabel {
        /// The label being retired.
        old: Label,
        /// The root label that replaces it.
        new: Label,
    },
    /// A one-bit control flag (convergence detection).
    Flag {
        /// The bit.
        bit: bool,
    },
    /// Output protocol (§2.6 end): a machine announces a label it holds.
    LabelAnnounce {
        /// The label.
        label: Label,
    },
    /// Output protocol: a proxy reports how many distinct labels it proxies.
    CountReport {
        /// Number of distinct labels.
        count: u64,
    },
    /// Flooding baseline: batched `(vertex, new label)` updates addressed to
    /// a machine hosting neighbors of those vertices.
    FloodLabels {
        /// The updates.
        updates: Vec<(u32, Label)>,
    },
    /// A batch of edges (referee collection, REP routing).
    EdgeList {
        /// `(u, v, w)` triples.
        edges: Vec<(u32, u32, u64)>,
    },
    /// Edge-checking Borůvka: a part's local MWOE candidate for `label`.
    Candidate {
        /// The component label.
        label: Label,
        /// The candidate edge key.
        key: EdgeKey,
        /// The label on the other side of the candidate edge.
        to_label: Label,
    },
    /// Final s–t comparison result exchanged between two home machines.
    StDone {
        /// Whether both endpoints carried the same label.
        same: bool,
    },
    /// Per-edge status tests of the GHS-style baseline, aggregated per
    /// machine pair for simulation efficiency: `count` individual tests of
    /// `3·⌈log₂ n⌉` bits each (edge id + queried label).
    TestBatch {
        /// Number of individual edge tests carried.
        count: u64,
    },
    /// Dynamic update routed from the ingest coordinator to an endpoint's
    /// home machine: the home XORs the edge contribution into (insert) or
    /// out of (delete) the endpoint's incidence sketch and stages the
    /// half-edge delta.
    EdgeUpdate {
        /// The endpoint homed at the destination machine.
        vertex: u32,
        /// The other endpoint of the updated edge.
        other: u32,
        /// The edge weight (0 for deletions).
        weight: u64,
        /// Insert (`true`) or delete (`false`).
        insert: bool,
    },
    /// Dynamic certification: a machine's aggregated incidence sketch for
    /// one of the component labels it hosts, sent to the label's referee
    /// (the representative vertex's home). Linearity makes the per-label
    /// sum cancel to exactly zero iff the label class has no outgoing edge.
    CertSketch {
        /// The component label being certified.
        label: Label,
        /// The sum of the machine's local vertex sketches for that label.
        sketch: Box<L0Sketch>,
    },
    /// Supergraph build (§3.11): `home(u)` pushes endpoint `u`'s label
    /// along edge `{u, v}` to `home(v)`, which sees both labels and keeps
    /// the edge iff they differ.
    LabelPush {
        /// The endpoint whose label is being pushed.
        u: u32,
        /// The other endpoint (homed at the destination machine).
        v: u32,
        /// The edge weight.
        weight: u64,
        /// `u`'s current component label.
        label: Label,
    },
    /// Supergraph build: a surviving inter-component edge, routed to a
    /// component endpoint's owner. The original endpoints ride along so
    /// MST/spanning-forest output stays in original edge ids.
    SuperEdge {
        /// The component whose owner this copy is addressed to.
        a: Label,
        /// The component on the other side.
        b: Label,
        /// The edge weight.
        weight: u64,
        /// Original endpoint on `a`'s side.
        ou: u32,
        /// Original endpoint on `b`'s side.
        ov: u32,
    },
    /// Supergraph build/maintenance: a machine announces it hosts original
    /// vertices of component `label` (so merge results can be broadcast
    /// back into the vertex space).
    SuperParts {
        /// The component label.
        label: Label,
        /// Machines hosting parts of the component.
        parts: Vec<u16>,
    },
    /// Supergraph maintenance: component `old` is now addressed as `new`
    /// (after a merge or a dense renaming), sent to owners storing `old`
    /// in an adjacency list.
    SuperRelabel {
        /// The label being retired.
        old: Label,
        /// Its replacement.
        new: Label,
    },
    /// Supergraph re-homing: a supernode's full owner state moves to the
    /// machine that owns its (new) label.
    SuperMove {
        /// The supernode's label (already in the destination's space).
        label: Label,
        /// Machines hosting original vertices of the component.
        parts: Vec<u16>,
        /// Deduped adjacency: `(neighbor label, weight, ou, ov)` of the
        /// lightest original edge crossing to that neighbor.
        adj: Vec<(Label, u64, u32, u32)>,
    },
    /// Dense renaming: the coordinator assigns each machine the base of
    /// its contiguous block of new labels, and the new label-space size.
    DenseBase {
        /// First new label owned by the destination machine.
        base: u64,
        /// Total number of live components (the new `n'`).
        total: u64,
    },
    /// Incremental MST insert pass: a freshly inserted edge routed to its
    /// component's owner for cycle-edge replacement (find the max-weight
    /// edge on the tree cycle the insert closes, swap if heavier).
    MstCycleEdge {
        /// The MST component both endpoints belong to.
        comp: Label,
        /// One endpoint of the inserted edge.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// The inserted edge's weight.
        weight: u64,
    },
    /// Incremental MST insert pass: the owner's verdict on one cycle
    /// replacement — the tree edge evicted by the insert, or `None` when
    /// the insert lost (the cycle's max edge was the insert itself).
    MstSwap {
        /// The MST component the swap happened in.
        comp: Label,
        /// The evicted tree edge's key, or `None` for no swap.
        evicted: Option<EdgeKey>,
    },
    /// Incremental MST delete pass: a machine's aggregated incidence
    /// sketch for one side of a tree split, sent to the piece's referee so
    /// the linear per-piece sum can witness whether any crossing edge
    /// survives (zero sum ⇔ a genuine component split).
    MstCutSketch {
        /// The split piece (labelled by its minimum vertex).
        piece: Label,
        /// The machine's summed vertex sketches for the piece.
        sketch: Box<L0Sketch>,
    },
    /// Incremental MST delete pass: a machine's minimum-weight candidate
    /// edge crossing out of a split piece, min-reduced at the referee to
    /// pick the replacement edge.
    MstCandidate {
        /// The split piece the candidate leaves.
        piece: Label,
        /// The candidate edge key.
        key: EdgeKey,
        /// The piece on the candidate's far side.
        to_piece: Label,
    },
}

/// Flat per-message type tag cost.
const TAG_BITS: u64 = 16;
/// Weight field cost.
const W_BITS: u64 = 32;

impl Payload {
    /// The wire size given the id width `l = ⌈log₂ n⌉` bits, with labels
    /// charged at the same width (the uncontracted case).
    pub fn wire_bits(&self, l: u64) -> u64 {
        self.wire_bits_lw(l, l)
    }

    /// The wire size given the vertex id width `l = ⌈log₂ n⌉` and the
    /// component label width `lw = ⌈log₂ n'⌉`. After supergraph
    /// contraction the live label space shrinks to `n' ≤ n` components, so
    /// every label field is charged `lw` bits while original vertex ids
    /// (which MST outputs and probes still need) stay at `l` bits.
    /// Charging labels the full `l` after contraction overstates the bits
    /// — the satellite-audit bug this signature exists to prevent.
    pub fn wire_bits_lw(&self, l: u64, lw: u64) -> u64 {
        TAG_BITS
            + match self {
                Payload::PartSketch { sketch, .. } => lw + sketch.wire_bits(),
                Payload::EdgeProbe { .. } => lw + 2 * l,
                Payload::EdgeProbeReply { .. } => 2 * lw + l + 1 + W_BITS,
                Payload::Threshold { key, .. } => lw + 1 + key.map_or(0, |_| 2 * l + W_BITS),
                Payload::PtrQuery { .. } => 2 * lw,
                Payload::PtrReply { .. } => 2 * lw + 1,
                Payload::Relabel { .. } => 2 * lw,
                Payload::Flag { .. } => 1,
                Payload::LabelAnnounce { .. } => lw,
                Payload::CountReport { .. } => 32,
                Payload::FloodLabels { updates } => updates.len() as u64 * (l + lw),
                Payload::EdgeList { edges } => edges.len() as u64 * (2 * l + W_BITS),
                Payload::Candidate { .. } => 2 * lw + (2 * l + W_BITS) + l,
                Payload::StDone { .. } => 1,
                Payload::TestBatch { count } => count * 3 * l,
                Payload::EdgeUpdate { .. } => 2 * l + W_BITS + 1,
                Payload::CertSketch { sketch, .. } => lw + sketch.wire_bits(),
                Payload::LabelPush { .. } => 2 * l + W_BITS + lw,
                Payload::SuperEdge { .. } => 2 * lw + W_BITS + 2 * l,
                Payload::SuperParts { parts, .. } => lw + 16 * parts.len() as u64,
                Payload::SuperRelabel { .. } => 2 * lw,
                Payload::SuperMove { parts, adj, .. } => {
                    lw + 16 * parts.len() as u64 + (lw + W_BITS + 2 * l) * adj.len() as u64
                }
                Payload::DenseBase { .. } => 2 * lw,
                Payload::MstCycleEdge { .. } => lw + 2 * l + W_BITS,
                Payload::MstSwap { evicted, .. } => lw + 1 + evicted.map_or(0, |_| 2 * l + W_BITS),
                Payload::MstCutSketch { sketch, .. } => lw + sketch.wire_bits(),
                Payload::MstCandidate { .. } => 2 * lw + (2 * l + W_BITS),
            }
    }

    /// A dense per-variant index for batch-run bucketing.
    fn tag_index(&self) -> usize {
        match self {
            Payload::PartSketch { .. } => 0,
            Payload::EdgeProbe { .. } => 1,
            Payload::EdgeProbeReply { .. } => 2,
            Payload::Threshold { .. } => 3,
            Payload::PtrQuery { .. } => 4,
            Payload::PtrReply { .. } => 5,
            Payload::Relabel { .. } => 6,
            Payload::Flag { .. } => 7,
            Payload::LabelAnnounce { .. } => 8,
            Payload::CountReport { .. } => 9,
            Payload::FloodLabels { .. } => 10,
            Payload::EdgeList { .. } => 11,
            Payload::Candidate { .. } => 12,
            Payload::StDone { .. } => 13,
            Payload::TestBatch { .. } => 14,
            Payload::EdgeUpdate { .. } => 15,
            Payload::CertSketch { .. } => 16,
            Payload::LabelPush { .. } => 17,
            Payload::SuperEdge { .. } => 18,
            Payload::SuperParts { .. } => 19,
            Payload::SuperRelabel { .. } => 20,
            Payload::SuperMove { .. } => 21,
            Payload::DenseBase { .. } => 22,
            Payload::MstCycleEdge { .. } => 23,
            Payload::MstSwap { .. } => 24,
            Payload::MstCutSketch { .. } => 25,
            Payload::MstCandidate { .. } => 26,
        }
    }
}

/// Number of [`Payload`] variants (batch-run buckets).
const N_TAGS: usize = 27;

impl BatchWire for Payload {
    /// Stable snake_case variant name for [`kmachine::trace`] superstep
    /// payload-kind histograms.
    fn kind_name(&self) -> &'static str {
        match self {
            Payload::PartSketch { .. } => "part_sketch",
            Payload::EdgeProbe { .. } => "edge_probe",
            Payload::EdgeProbeReply { .. } => "edge_probe_reply",
            Payload::Threshold { .. } => "threshold",
            Payload::PtrQuery { .. } => "ptr_query",
            Payload::PtrReply { .. } => "ptr_reply",
            Payload::Relabel { .. } => "relabel",
            Payload::Flag { .. } => "flag",
            Payload::LabelAnnounce { .. } => "label_announce",
            Payload::CountReport { .. } => "count_report",
            Payload::FloodLabels { .. } => "flood_labels",
            Payload::EdgeList { .. } => "edge_list",
            Payload::Candidate { .. } => "candidate",
            Payload::StDone { .. } => "st_done",
            Payload::TestBatch { .. } => "test_batch",
            Payload::EdgeUpdate { .. } => "edge_update",
            Payload::CertSketch { .. } => "cert_sketch",
            Payload::LabelPush { .. } => "label_push",
            Payload::SuperEdge { .. } => "super_edge",
            Payload::SuperParts { .. } => "super_parts",
            Payload::SuperRelabel { .. } => "super_relabel",
            Payload::SuperMove { .. } => "super_move",
            Payload::DenseBase { .. } => "dense_base",
            Payload::MstCycleEdge { .. } => "mst_cycle_edge",
            Payload::MstSwap { .. } => "mst_swap",
            Payload::MstCutSketch { .. } => "mst_cut_sketch",
            Payload::MstCandidate { .. } => "mst_candidate",
        }
    }

    /// One directed link's batch, encoded as per-variant runs: each run
    /// pays the 16-bit tag once plus a varint count; its primary id field
    /// (the label or vertex the destination groups by) travels delta-sorted
    /// as a varint stream, every other field as a plain varint; flags are
    /// one bit; sketches keep their raw wire size. [`Payload::TestBatch`]
    /// is already an aggregate and falls back to its naive per-message
    /// size. The encoding is self-describing — no id-width context needed,
    /// which is what makes it the *charged* size rather than a model bound.
    fn batch_wire_bits(batch: &[&Envelope<Self>]) -> u64 {
        let mut primary: Vec<Vec<u64>> = vec![Vec::new(); N_TAGS];
        let mut sec = [0u64; N_TAGS];
        let mut cnt = [0u64; N_TAGS];
        let v32 = |x: u32| varint_bits(u64::from(x));
        for e in batch {
            let t = e.payload.tag_index();
            cnt[t] += 1;
            match &e.payload {
                Payload::PartSketch { label, sketch } => {
                    primary[t].push(*label);
                    sec[t] += sketch.wire_bits();
                }
                Payload::EdgeProbe { comp, ask, other } => {
                    primary[t].push(*comp);
                    sec[t] += v32(*ask) + v32(*other);
                }
                Payload::EdgeProbeReply {
                    comp,
                    vertex,
                    label,
                    weight,
                    ..
                } => {
                    primary[t].push(*comp);
                    sec[t] += v32(*vertex) + varint_bits(*label) + 1 + varint_bits(*weight);
                }
                Payload::Threshold { label, key } => {
                    primary[t].push(*label);
                    sec[t] += 1 + key.map_or(0, |(w, u, v)| varint_bits(w) + v32(u) + v32(v));
                }
                Payload::PtrQuery { asker, target } => {
                    primary[t].push(*target);
                    sec[t] += varint_bits(*asker);
                }
                Payload::PtrReply { asker, ptr, .. } => {
                    primary[t].push(*asker);
                    sec[t] += varint_bits(*ptr) + 1;
                }
                Payload::Relabel { old, new } => {
                    primary[t].push(*old);
                    sec[t] += varint_bits(*new);
                }
                Payload::Flag { .. } => sec[t] += 1,
                Payload::LabelAnnounce { label } => primary[t].push(*label),
                Payload::CountReport { count } => sec[t] += varint_bits(*count),
                Payload::FloodLabels { updates } => {
                    sec[t] += updates
                        .iter()
                        .map(|&(v, lab)| v32(v) + varint_bits(lab))
                        .sum::<u64>();
                }
                Payload::EdgeList { edges } => {
                    sec[t] += edges
                        .iter()
                        .map(|&(u, v, w)| v32(u) + v32(v) + varint_bits(w))
                        .sum::<u64>();
                }
                Payload::Candidate {
                    label,
                    key: (w, u, v),
                    to_label,
                } => {
                    primary[t].push(*label);
                    sec[t] += varint_bits(*w) + v32(*u) + v32(*v) + varint_bits(*to_label);
                }
                Payload::StDone { .. } => sec[t] += 1,
                Payload::TestBatch { .. } => sec[t] += e.bits.max(1),
                Payload::EdgeUpdate {
                    vertex,
                    other,
                    weight,
                    ..
                } => {
                    primary[t].push(u64::from(*vertex));
                    sec[t] += v32(*other) + varint_bits(*weight) + 1;
                }
                Payload::CertSketch { label, sketch } => {
                    primary[t].push(*label);
                    sec[t] += sketch.wire_bits();
                }
                Payload::LabelPush {
                    u,
                    v,
                    weight,
                    label,
                } => {
                    primary[t].push(u64::from(*v));
                    sec[t] += v32(*u) + varint_bits(*weight) + varint_bits(*label);
                }
                Payload::SuperEdge {
                    a,
                    b,
                    weight,
                    ou,
                    ov,
                } => {
                    primary[t].push(*a);
                    sec[t] += varint_bits(*b) + varint_bits(*weight) + v32(*ou) + v32(*ov);
                }
                Payload::SuperParts { label, parts } => {
                    primary[t].push(*label);
                    sec[t] += parts
                        .iter()
                        .map(|&p| varint_bits(u64::from(p)))
                        .sum::<u64>();
                }
                Payload::SuperRelabel { old, new } => {
                    primary[t].push(*old);
                    sec[t] += varint_bits(*new);
                }
                Payload::SuperMove { label, parts, adj } => {
                    primary[t].push(*label);
                    sec[t] += parts
                        .iter()
                        .map(|&p| varint_bits(u64::from(p)))
                        .sum::<u64>();
                    sec[t] += adj
                        .iter()
                        .map(|&(nb, w, ou, ov)| {
                            varint_bits(nb) + varint_bits(w) + v32(ou) + v32(ov)
                        })
                        .sum::<u64>();
                }
                Payload::DenseBase { base, total } => {
                    sec[t] += varint_bits(*base) + varint_bits(*total);
                }
                Payload::MstCycleEdge { comp, u, v, weight } => {
                    primary[t].push(*comp);
                    sec[t] += v32(*u) + v32(*v) + varint_bits(*weight);
                }
                Payload::MstSwap { comp, evicted } => {
                    primary[t].push(*comp);
                    sec[t] += 1 + evicted.map_or(0, |(w, u, v)| varint_bits(w) + v32(u) + v32(v));
                }
                Payload::MstCutSketch { piece, sketch } => {
                    primary[t].push(*piece);
                    sec[t] += sketch.wire_bits();
                }
                Payload::MstCandidate {
                    piece,
                    key: (w, u, v),
                    to_piece,
                } => {
                    primary[t].push(*piece);
                    sec[t] += varint_bits(*w) + v32(*u) + v32(*v) + varint_bits(*to_piece);
                }
            }
        }
        let mut bits = 0u64;
        for t in 0..N_TAGS {
            if cnt[t] == 0 {
                continue;
            }
            if t == 14 {
                // TestBatch: naive fallback, no shared run header.
                bits += sec[t];
                continue;
            }
            bits += TAG_BITS + varint_bits(cnt[t]) + delta_varint_bits(&mut primary[t]) + sec[t];
        }
        bits
    }
}

/// Byte-level helpers of the transport codec (DESIGN.md §3.12). These are
/// the *physical* encoding used by the multi-process backend; the logical
/// bandwidth charge stays [`Payload::wire_bits_lw`] /
/// [`Payload::batch_wire_bits`], computed from the decoded envelopes — the
/// simulator remains the accounting oracle whatever the bytes cost.
fn put_sketch(s: &L0Sketch, out: &mut Vec<u8>) {
    let p = s.params();
    put_varint(out, p.n as u64);
    put_varint(out, u64::from(p.levels));
    put_varint(out, u64::from(p.reps));
    put_varint(out, p.independence as u64);
    for c in s.cell_slice() {
        put_signed(out, c.count);
        put_signed128(out, c.index_sum);
        put_varint(out, c.fingerprint.value());
    }
}

fn get_sketch(r: &mut WireReader<'_>) -> Result<L0Sketch, WireError> {
    let params = SketchParams {
        n: r.varint("sketch.n")? as usize,
        levels: get_u32(r, "sketch.levels")?,
        reps: get_u32(r, "sketch.reps")?,
        independence: r.varint("sketch.independence")? as usize,
    };
    let cells = (0..params.cells())
        .map(|_| {
            Ok(Cell {
                count: r.signed("cell.count")?,
                index_sum: r.signed128("cell.index_sum")?,
                fingerprint: M61::new(r.varint("cell.fingerprint")?),
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(L0Sketch::from_cells(params, cells))
}

fn get_u32(r: &mut WireReader<'_>, field: &'static str) -> Result<u32, WireError> {
    u32::try_from(r.varint(field)?)
        .map_err(|_| WireError::new(r.offset(), field, "value overflows u32"))
}

fn get_u16(r: &mut WireReader<'_>, field: &'static str) -> Result<u16, WireError> {
    u16::try_from(r.varint(field)?)
        .map_err(|_| WireError::new(r.offset(), field, "value overflows u16"))
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn get_bool(r: &mut WireReader<'_>, field: &'static str) -> Result<bool, WireError> {
    match r.u8(field)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::new(r.offset(), field, "flag byte is not 0/1")),
    }
}

impl WireCodec for Payload {
    /// One leading tag byte (the variant's `tag_index`) followed by the
    /// variant's fields as LEB128 varints — ids and labels plain, signed
    /// sketch-cell sums zigzag-coded, collections length-prefixed. This is
    /// what actually crosses the process mesh; see the sketch helpers
    /// below for why its byte count is allowed to differ from the charged
    /// bits.
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag_index() as u8);
        match self {
            Payload::PartSketch { label, sketch } | Payload::CertSketch { label, sketch } => {
                put_varint(out, *label);
                put_sketch(sketch, out);
            }
            Payload::EdgeProbe { comp, ask, other } => {
                put_varint(out, *comp);
                put_varint(out, u64::from(*ask));
                put_varint(out, u64::from(*other));
            }
            Payload::EdgeProbeReply {
                comp,
                vertex,
                label,
                exists,
                weight,
            } => {
                put_varint(out, *comp);
                put_varint(out, u64::from(*vertex));
                put_varint(out, *label);
                put_bool(out, *exists);
                put_varint(out, *weight);
            }
            Payload::Threshold { label, key } => {
                put_varint(out, *label);
                put_bool(out, key.is_some());
                if let Some((w, u, v)) = key {
                    put_varint(out, *w);
                    put_varint(out, u64::from(*u));
                    put_varint(out, u64::from(*v));
                }
            }
            Payload::PtrQuery { asker, target } => {
                put_varint(out, *asker);
                put_varint(out, *target);
            }
            Payload::PtrReply { asker, ptr, done } => {
                put_varint(out, *asker);
                put_varint(out, *ptr);
                put_bool(out, *done);
            }
            Payload::Relabel { old, new } | Payload::SuperRelabel { old, new } => {
                put_varint(out, *old);
                put_varint(out, *new);
            }
            Payload::Flag { bit } => put_bool(out, *bit),
            Payload::LabelAnnounce { label } => put_varint(out, *label),
            Payload::CountReport { count } => put_varint(out, *count),
            Payload::FloodLabels { updates } => {
                put_varint(out, updates.len() as u64);
                for (v, lab) in updates {
                    put_varint(out, u64::from(*v));
                    put_varint(out, *lab);
                }
            }
            Payload::EdgeList { edges } => {
                put_varint(out, edges.len() as u64);
                for (u, v, w) in edges {
                    put_varint(out, u64::from(*u));
                    put_varint(out, u64::from(*v));
                    put_varint(out, *w);
                }
            }
            Payload::Candidate {
                label,
                key: (w, u, v),
                to_label,
            } => {
                put_varint(out, *label);
                put_varint(out, *w);
                put_varint(out, u64::from(*u));
                put_varint(out, u64::from(*v));
                put_varint(out, *to_label);
            }
            Payload::StDone { same } => put_bool(out, *same),
            Payload::TestBatch { count } => put_varint(out, *count),
            Payload::EdgeUpdate {
                vertex,
                other,
                weight,
                insert,
            } => {
                put_varint(out, u64::from(*vertex));
                put_varint(out, u64::from(*other));
                put_varint(out, *weight);
                put_bool(out, *insert);
            }
            Payload::LabelPush {
                u,
                v,
                weight,
                label,
            } => {
                put_varint(out, u64::from(*u));
                put_varint(out, u64::from(*v));
                put_varint(out, *weight);
                put_varint(out, *label);
            }
            Payload::SuperEdge {
                a,
                b,
                weight,
                ou,
                ov,
            } => {
                put_varint(out, *a);
                put_varint(out, *b);
                put_varint(out, *weight);
                put_varint(out, u64::from(*ou));
                put_varint(out, u64::from(*ov));
            }
            Payload::SuperParts { label, parts } => {
                put_varint(out, *label);
                put_varint(out, parts.len() as u64);
                for p in parts {
                    put_varint(out, u64::from(*p));
                }
            }
            Payload::SuperMove { label, parts, adj } => {
                put_varint(out, *label);
                put_varint(out, parts.len() as u64);
                for p in parts {
                    put_varint(out, u64::from(*p));
                }
                put_varint(out, adj.len() as u64);
                for (nb, w, ou, ov) in adj {
                    put_varint(out, *nb);
                    put_varint(out, *w);
                    put_varint(out, u64::from(*ou));
                    put_varint(out, u64::from(*ov));
                }
            }
            Payload::DenseBase { base, total } => {
                put_varint(out, *base);
                put_varint(out, *total);
            }
            Payload::MstCycleEdge { comp, u, v, weight } => {
                put_varint(out, *comp);
                put_varint(out, u64::from(*u));
                put_varint(out, u64::from(*v));
                put_varint(out, *weight);
            }
            Payload::MstSwap { comp, evicted } => {
                put_varint(out, *comp);
                put_bool(out, evicted.is_some());
                if let Some((w, u, v)) = evicted {
                    put_varint(out, *w);
                    put_varint(out, u64::from(*u));
                    put_varint(out, u64::from(*v));
                }
            }
            Payload::MstCutSketch { piece, sketch } => {
                put_varint(out, *piece);
                put_sketch(sketch, out);
            }
            Payload::MstCandidate {
                piece,
                key: (w, u, v),
                to_piece,
            } => {
                put_varint(out, *piece);
                put_varint(out, *w);
                put_varint(out, u64::from(*u));
                put_varint(out, u64::from(*v));
                put_varint(out, *to_piece);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.u8("payload.tag")?;
        Ok(match tag {
            0 | 16 => {
                let label = r.varint("label")?;
                let sketch = Box::new(get_sketch(r)?);
                if tag == 0 {
                    Payload::PartSketch { label, sketch }
                } else {
                    Payload::CertSketch { label, sketch }
                }
            }
            1 => Payload::EdgeProbe {
                comp: r.varint("comp")?,
                ask: get_u32(r, "ask")?,
                other: get_u32(r, "other")?,
            },
            2 => Payload::EdgeProbeReply {
                comp: r.varint("comp")?,
                vertex: get_u32(r, "vertex")?,
                label: r.varint("label")?,
                exists: get_bool(r, "exists")?,
                weight: r.varint("weight")?,
            },
            3 => Payload::Threshold {
                label: r.varint("label")?,
                key: if get_bool(r, "key.some")? {
                    Some((
                        r.varint("key.w")?,
                        get_u32(r, "key.u")?,
                        get_u32(r, "key.v")?,
                    ))
                } else {
                    None
                },
            },
            4 => Payload::PtrQuery {
                asker: r.varint("asker")?,
                target: r.varint("target")?,
            },
            5 => Payload::PtrReply {
                asker: r.varint("asker")?,
                ptr: r.varint("ptr")?,
                done: get_bool(r, "done")?,
            },
            6 | 20 => {
                let old = r.varint("old")?;
                let new = r.varint("new")?;
                if tag == 6 {
                    Payload::Relabel { old, new }
                } else {
                    Payload::SuperRelabel { old, new }
                }
            }
            7 => Payload::Flag {
                bit: get_bool(r, "bit")?,
            },
            8 => Payload::LabelAnnounce {
                label: r.varint("label")?,
            },
            9 => Payload::CountReport {
                count: r.varint("count")?,
            },
            10 => {
                let n = r.varint("updates.len")?;
                let updates = (0..n)
                    .map(|_| Ok((get_u32(r, "update.v")?, r.varint("update.label")?)))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Payload::FloodLabels { updates }
            }
            11 => {
                let n = r.varint("edges.len")?;
                let edges = (0..n)
                    .map(|_| {
                        Ok((
                            get_u32(r, "edge.u")?,
                            get_u32(r, "edge.v")?,
                            r.varint("edge.w")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Payload::EdgeList { edges }
            }
            12 => Payload::Candidate {
                label: r.varint("label")?,
                key: (
                    r.varint("key.w")?,
                    get_u32(r, "key.u")?,
                    get_u32(r, "key.v")?,
                ),
                to_label: r.varint("to_label")?,
            },
            13 => Payload::StDone {
                same: get_bool(r, "same")?,
            },
            14 => Payload::TestBatch {
                count: r.varint("count")?,
            },
            15 => Payload::EdgeUpdate {
                vertex: get_u32(r, "vertex")?,
                other: get_u32(r, "other")?,
                weight: r.varint("weight")?,
                insert: get_bool(r, "insert")?,
            },
            17 => Payload::LabelPush {
                u: get_u32(r, "u")?,
                v: get_u32(r, "v")?,
                weight: r.varint("weight")?,
                label: r.varint("label")?,
            },
            18 => Payload::SuperEdge {
                a: r.varint("a")?,
                b: r.varint("b")?,
                weight: r.varint("weight")?,
                ou: get_u32(r, "ou")?,
                ov: get_u32(r, "ov")?,
            },
            19 => {
                let label = r.varint("label")?;
                let n = r.varint("parts.len")?;
                let parts = (0..n)
                    .map(|_| get_u16(r, "part"))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Payload::SuperParts { label, parts }
            }
            21 => {
                let label = r.varint("label")?;
                let np = r.varint("parts.len")?;
                let parts = (0..np)
                    .map(|_| get_u16(r, "part"))
                    .collect::<Result<Vec<_>, WireError>>()?;
                let na = r.varint("adj.len")?;
                let adj = (0..na)
                    .map(|_| {
                        Ok((
                            r.varint("adj.nb")?,
                            r.varint("adj.w")?,
                            get_u32(r, "adj.ou")?,
                            get_u32(r, "adj.ov")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Payload::SuperMove { label, parts, adj }
            }
            22 => Payload::DenseBase {
                base: r.varint("base")?,
                total: r.varint("total")?,
            },
            23 => Payload::MstCycleEdge {
                comp: r.varint("comp")?,
                u: get_u32(r, "u")?,
                v: get_u32(r, "v")?,
                weight: r.varint("weight")?,
            },
            24 => Payload::MstSwap {
                comp: r.varint("comp")?,
                evicted: if get_bool(r, "evicted.some")? {
                    Some((
                        r.varint("evicted.w")?,
                        get_u32(r, "evicted.u")?,
                        get_u32(r, "evicted.v")?,
                    ))
                } else {
                    None
                },
            },
            25 => Payload::MstCutSketch {
                piece: r.varint("piece")?,
                sketch: Box::new(get_sketch(r)?),
            },
            26 => Payload::MstCandidate {
                piece: r.varint("piece")?,
                key: (
                    r.varint("key.w")?,
                    get_u32(r, "key.u")?,
                    get_u32(r, "key.v")?,
                ),
                to_piece: r.varint("to_piece")?,
            },
            _ => {
                return Err(WireError::new(
                    r.offset(),
                    "payload.tag",
                    "unknown payload tag",
                ))
            }
        })
    }
}

/// The id width for an `n`-vertex instance.
pub fn id_bits(n: usize) -> u64 {
    kmachine::bandwidth::id_bits(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksketch::SketchParams;

    #[test]
    fn sizes_scale_with_id_width() {
        let q = Payload::PtrQuery {
            asker: 1,
            target: 2,
        };
        assert_eq!(q.wire_bits(10), 16 + 20);
        assert_eq!(q.wire_bits(20), 16 + 40);
    }

    #[test]
    fn sketch_messages_dominate_control_messages() {
        let p = SketchParams::for_graph(1 << 14, 4);
        let s = Payload::PartSketch {
            label: 0,
            sketch: Box::new(ksketch::L0Sketch::new(p)),
        };
        let f = Payload::Flag { bit: true };
        assert!(s.wire_bits(14) > 100 * f.wire_bits(14));
    }

    #[test]
    fn batched_messages_cost_per_entry() {
        let one = Payload::FloodLabels {
            updates: vec![(1, 2)],
        };
        let ten = Payload::FloodLabels {
            updates: (0..10).map(|i| (i, i as u64)).collect(),
        };
        let l = 12;
        assert_eq!(
            ten.wire_bits(l) - TAG_BITS,
            10 * (one.wire_bits(l) - TAG_BITS)
        );
    }

    #[test]
    fn threshold_none_is_cheaper_than_some() {
        let some = Payload::Threshold {
            label: 5,
            key: Some((9, 1, 2)),
        };
        let none = Payload::Threshold {
            label: 5,
            key: None,
        };
        assert!(some.wire_bits(16) > none.wire_bits(16));
    }

    #[test]
    fn edge_update_costs_one_edge_record() {
        let up = Payload::EdgeUpdate {
            vertex: 3,
            other: 9,
            weight: 5,
            insert: true,
        };
        // Two ids + weight + direction bit, plus the flat tag.
        assert_eq!(up.wire_bits(12), 16 + 24 + 32 + 1);
    }

    #[test]
    fn id_bits_matches_bandwidth_helper() {
        assert_eq!(id_bits(1 << 16), 16);
        assert_eq!(id_bits((1 << 16) + 1), 17);
    }

    #[test]
    fn label_width_shrinks_label_fields_only() {
        let q = Payload::PtrQuery {
            asker: 1,
            target: 2,
        };
        // Both fields are labels: full width at lw = l, narrow after.
        assert_eq!(q.wire_bits_lw(20, 20), q.wire_bits(20));
        assert_eq!(q.wire_bits_lw(20, 3), 16 + 6);
        // A probe keeps its vertex ids at l; only the component narrows.
        let p = Payload::EdgeProbe {
            comp: 9,
            ask: 1,
            other: 2,
        };
        assert_eq!(p.wire_bits_lw(20, 20), p.wire_bits(20));
        assert_eq!(p.wire_bits_lw(20, 3), 16 + 3 + 40);
    }

    #[test]
    fn every_variant_is_unchanged_at_equal_widths() {
        // `wire_bits(l)` must stay the historical accounting: the lw
        // generalization may not move a single bit when lw == l.
        let payloads = vec![
            Payload::EdgeProbeReply {
                comp: 1,
                vertex: 2,
                label: 3,
                exists: true,
                weight: 4,
            },
            Payload::Threshold {
                label: 1,
                key: Some((2, 3, 4)),
            },
            Payload::Candidate {
                label: 1,
                key: (2, 3, 4),
                to_label: 5,
            },
            Payload::FloodLabels {
                updates: vec![(1, 2), (3, 4)],
            },
            Payload::LabelAnnounce { label: 7 },
            Payload::Relabel { old: 1, new: 2 },
        ];
        for p in payloads {
            for l in [1u64, 10, 21] {
                assert_eq!(p.wire_bits_lw(l, l), p.wire_bits(l), "{p:?} at l={l}");
            }
        }
    }

    #[test]
    fn batched_relabels_share_one_tag_and_compress_ids() {
        let l = 20;
        let batch: Vec<Envelope<Payload>> = (0..50u64)
            .map(|i| {
                let p = Payload::Relabel {
                    old: 3000 + i,
                    new: 7,
                };
                let bits = p.wire_bits(l);
                Envelope::with_bits(0, 1, p, bits)
            })
            .collect();
        let refs: Vec<&Envelope<Payload>> = batch.iter().collect();
        let encoded = Payload::batch_wire_bits(&refs);
        let naive: u64 = batch.iter().map(|e| e.bits).sum();
        // One tag + count + delta run (varint(3000) + 49 byte gaps) + 50
        // varint `new` fields.
        assert_eq!(encoded, 16 + 8 + (16 + 49 * 8) + 50 * 8);
        assert!(encoded < naive / 2, "{encoded} vs {naive}");
    }

    #[test]
    fn test_batches_fall_back_to_their_naive_size() {
        let l = 16;
        let batch: Vec<Envelope<Payload>> = (0..4u64)
            .map(|c| {
                let p = Payload::TestBatch { count: c + 1 };
                let bits = p.wire_bits(l);
                Envelope::with_bits(0, 1, p, bits)
            })
            .collect();
        let refs: Vec<&Envelope<Payload>> = batch.iter().collect();
        let naive: u64 = batch.iter().map(|e| e.bits).sum();
        assert_eq!(Payload::batch_wire_bits(&refs), naive);
    }

    fn sample_sketch() -> Box<L0Sketch> {
        use krand::shared::SharedRandomness;
        let params = SketchParams::for_graph(64, 3);
        let fns = ksketch::SketchFns::new(&SharedRandomness::new(9), 0, params);
        let mut s = L0Sketch::new(params);
        s.add_incident_edge(&fns, 3, 7);
        s.add_incident_edge(&fns, 3, 9);
        s.remove_incident_edge(&fns, 3, 7);
        Box::new(s)
    }

    /// One exemplar of every variant — the codec matrix below iterates it.
    fn one_of_each() -> Vec<Payload> {
        vec![
            Payload::PartSketch {
                label: 5,
                sketch: sample_sketch(),
            },
            Payload::EdgeProbe {
                comp: 1,
                ask: 2,
                other: 3,
            },
            Payload::EdgeProbeReply {
                comp: 1,
                vertex: 2,
                label: 3,
                exists: true,
                weight: u64::MAX,
            },
            Payload::Threshold {
                label: 9,
                key: Some((4, 5, 6)),
            },
            Payload::Threshold {
                label: 9,
                key: None,
            },
            Payload::PtrQuery {
                asker: 1,
                target: 2,
            },
            Payload::PtrReply {
                asker: 1,
                ptr: 2,
                done: false,
            },
            Payload::Relabel { old: 8, new: 9 },
            Payload::Flag { bit: true },
            Payload::LabelAnnounce { label: 1 << 40 },
            Payload::CountReport { count: 0 },
            Payload::FloodLabels {
                updates: vec![(1, 2), (u32::MAX, u64::MAX)],
            },
            Payload::EdgeList {
                edges: vec![(1, 2, 3), (4, 5, 6)],
            },
            Payload::Candidate {
                label: 1,
                key: (2, 3, 4),
                to_label: 5,
            },
            Payload::StDone { same: false },
            Payload::TestBatch { count: 77 },
            Payload::EdgeUpdate {
                vertex: 1,
                other: 2,
                weight: 3,
                insert: false,
            },
            Payload::CertSketch {
                label: 6,
                sketch: sample_sketch(),
            },
            Payload::LabelPush {
                u: 1,
                v: 2,
                weight: 3,
                label: 4,
            },
            Payload::SuperEdge {
                a: 1,
                b: 2,
                weight: 3,
                ou: 4,
                ov: 5,
            },
            Payload::SuperParts {
                label: 1,
                parts: vec![0, 3, 15],
            },
            Payload::SuperRelabel { old: 1, new: 2 },
            Payload::SuperMove {
                label: 1,
                parts: vec![2],
                adj: vec![(3, 4, 5, 6), (7, 8, 9, 10)],
            },
            Payload::DenseBase { base: 1, total: 2 },
            Payload::MstCycleEdge {
                comp: 1,
                u: 2,
                v: 3,
                weight: u64::MAX,
            },
            Payload::MstSwap {
                comp: 4,
                evicted: Some((5, 6, 7)),
            },
            Payload::MstSwap {
                comp: 4,
                evicted: None,
            },
            Payload::MstCutSketch {
                piece: 8,
                sketch: sample_sketch(),
            },
            Payload::MstCandidate {
                piece: 1,
                key: (2, 3, 4),
                to_piece: 5,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_the_byte_codec() {
        for p in one_of_each() {
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let mut r = WireReader::new(&buf);
            let back = Payload::decode(&mut r).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert_eq!(back, p, "codec must round-trip exactly");
            assert!(r.is_empty(), "{p:?}: codec left trailing bytes");
        }
    }

    #[test]
    fn truncated_payloads_decode_to_field_precise_errors() {
        for p in one_of_each() {
            let mut buf = Vec::new();
            p.encode(&mut buf);
            // Chopping the last byte must fail (never silently succeed
            // short) except for payloads whose final field is a varint
            // whose last byte is redundant — there are none: LEB128
            // terminates on the final byte, so every truncation is fatal.
            let mut r = WireReader::new(&buf[..buf.len() - 1]);
            let res = Payload::decode(&mut r);
            let complete = res.is_ok() && r.is_empty();
            assert!(
                !complete,
                "{p:?}: truncated buffer decoded to a complete payload"
            );
        }
        let e = Payload::decode(&mut WireReader::new(&[99])).unwrap_err();
        assert_eq!(e.field, "payload.tag");
        assert_eq!(e.reason, "unknown payload tag");
    }

    #[test]
    fn sketch_payloads_carry_their_cells_exactly() {
        let sketch = sample_sketch();
        let p = Payload::PartSketch {
            label: 3,
            sketch: sketch.clone(),
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let back = Payload::decode(&mut WireReader::new(&buf)).unwrap();
        let Payload::PartSketch { sketch: got, .. } = back else {
            panic!("wrong variant");
        };
        assert_eq!(got.params(), sketch.params());
        assert_eq!(got.cell_slice(), sketch.cell_slice());
    }

    #[test]
    fn mixed_batches_pay_one_header_per_variant_run() {
        let l = 12;
        let mk = |p: Payload| {
            let bits = p.wire_bits(l);
            Envelope::with_bits(0, 1, p, bits)
        };
        let batch = [
            mk(Payload::Flag { bit: true }),
            mk(Payload::Flag { bit: false }),
            mk(Payload::CountReport { count: 3 }),
        ];
        let refs: Vec<&Envelope<Payload>> = batch.iter().collect();
        // Flag run: tag + count(2) + 2 bits; CountReport run: tag +
        // count(1) + varint(3).
        assert_eq!(Payload::batch_wire_bits(&refs), (16 + 8 + 2) + (16 + 8 + 8));
    }
}
