//! Message payloads of the distributed algorithms, with explicit wire sizes.
//!
//! Wire sizes follow the paper's encodings: vertex ids and component labels
//! cost `⌈log₂ n⌉` bits, weights 32 bits, sketches their `polylog(n)` size
//! ([`ksketch::SketchParams::wire_bits`]), plus a flat 16-bit type tag per
//! message. Sizes are computed once per message by [`Payload::wire_bits`],
//! which needs the id width `L = ⌈log₂ n⌉` as context.

use ksketch::L0Sketch;

/// A component label. Labels are always ids of representative vertices, so
/// they fit in the same `⌈log₂ n⌉` bits as vertex ids.
pub type Label = u64;

/// An MST comparison key: `(weight, u, v)` — the tie-free total order.
pub type EdgeKey = (u64, u32, u32);

/// Every message any of the algorithms sends.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A component part's combined sketch, machine → component proxy (§2.4).
    PartSketch {
        /// The component label this part belongs to.
        label: Label,
        /// The part's combined sketch (sum of its vertices' sketches).
        sketch: Box<L0Sketch>,
    },
    /// Proxy asks `home(ask)` about endpoint `ask` of candidate edge
    /// `{ask, other}`: current label, edge existence, and weight.
    EdgeProbe {
        /// Component on whose behalf the proxy asks.
        comp: Label,
        /// The endpoint whose home machine is being asked.
        ask: u32,
        /// The other endpoint of the candidate edge.
        other: u32,
    },
    /// Home machine's answer to an [`Payload::EdgeProbe`].
    EdgeProbeReply {
        /// Component the probe belonged to.
        comp: Label,
        /// The endpoint that was asked about.
        vertex: u32,
        /// Its current component label.
        label: Label,
        /// Whether the probed edge exists in `G`.
        exists: bool,
        /// The edge weight (0 if absent).
        weight: u64,
    },
    /// MST elimination broadcast: parts must rebuild sketches filtered to
    /// edges with key strictly below `key`; `None` means the component is
    /// done eliminating (its MWOE is fixed).
    Threshold {
        /// The component label.
        label: Label,
        /// The new strict upper bound, or `None` when done.
        key: Option<EdgeKey>,
    },
    /// Pointer-jumping query, proxy(asker) → proxy(target) (§2.5).
    PtrQuery {
        /// The component doing the jump.
        asker: Label,
        /// The component whose pointer is requested.
        target: Label,
    },
    /// Pointer-jumping reply.
    PtrReply {
        /// The component doing the jump.
        asker: Label,
        /// The target's current pointer.
        ptr: Label,
        /// Whether the target's pointer is already a root.
        done: bool,
    },
    /// Merge command, proxy → machines holding parts of `old`.
    Relabel {
        /// The label being retired.
        old: Label,
        /// The root label that replaces it.
        new: Label,
    },
    /// A one-bit control flag (convergence detection).
    Flag {
        /// The bit.
        bit: bool,
    },
    /// Output protocol (§2.6 end): a machine announces a label it holds.
    LabelAnnounce {
        /// The label.
        label: Label,
    },
    /// Output protocol: a proxy reports how many distinct labels it proxies.
    CountReport {
        /// Number of distinct labels.
        count: u64,
    },
    /// Flooding baseline: batched `(vertex, new label)` updates addressed to
    /// a machine hosting neighbors of those vertices.
    FloodLabels {
        /// The updates.
        updates: Vec<(u32, Label)>,
    },
    /// A batch of edges (referee collection, REP routing).
    EdgeList {
        /// `(u, v, w)` triples.
        edges: Vec<(u32, u32, u64)>,
    },
    /// Edge-checking Borůvka: a part's local MWOE candidate for `label`.
    Candidate {
        /// The component label.
        label: Label,
        /// The candidate edge key.
        key: EdgeKey,
        /// The label on the other side of the candidate edge.
        to_label: Label,
    },
    /// Final s–t comparison result exchanged between two home machines.
    StDone {
        /// Whether both endpoints carried the same label.
        same: bool,
    },
    /// Per-edge status tests of the GHS-style baseline, aggregated per
    /// machine pair for simulation efficiency: `count` individual tests of
    /// `3·⌈log₂ n⌉` bits each (edge id + queried label).
    TestBatch {
        /// Number of individual edge tests carried.
        count: u64,
    },
    /// Dynamic update routed from the ingest coordinator to an endpoint's
    /// home machine: the home XORs the edge contribution into (insert) or
    /// out of (delete) the endpoint's incidence sketch and stages the
    /// half-edge delta.
    EdgeUpdate {
        /// The endpoint homed at the destination machine.
        vertex: u32,
        /// The other endpoint of the updated edge.
        other: u32,
        /// The edge weight (0 for deletions).
        weight: u64,
        /// Insert (`true`) or delete (`false`).
        insert: bool,
    },
    /// Dynamic certification: a machine's aggregated incidence sketch for
    /// one of the component labels it hosts, sent to the label's referee
    /// (the representative vertex's home). Linearity makes the per-label
    /// sum cancel to exactly zero iff the label class has no outgoing edge.
    CertSketch {
        /// The component label being certified.
        label: Label,
        /// The sum of the machine's local vertex sketches for that label.
        sketch: Box<L0Sketch>,
    },
}

/// Flat per-message type tag cost.
const TAG_BITS: u64 = 16;
/// Weight field cost.
const W_BITS: u64 = 32;

impl Payload {
    /// The wire size given the id width `l = ⌈log₂ n⌉` bits.
    pub fn wire_bits(&self, l: u64) -> u64 {
        TAG_BITS
            + match self {
                Payload::PartSketch { sketch, .. } => l + sketch.wire_bits(),
                Payload::EdgeProbe { .. } => 3 * l,
                Payload::EdgeProbeReply { .. } => 3 * l + 1 + W_BITS,
                Payload::Threshold { key, .. } => l + 1 + key.map_or(0, |_| 2 * l + W_BITS),
                Payload::PtrQuery { .. } => 2 * l,
                Payload::PtrReply { .. } => 2 * l + 1,
                Payload::Relabel { .. } => 2 * l,
                Payload::Flag { .. } => 1,
                Payload::LabelAnnounce { .. } => l,
                Payload::CountReport { .. } => 32,
                Payload::FloodLabels { updates } => updates.len() as u64 * 2 * l,
                Payload::EdgeList { edges } => edges.len() as u64 * (2 * l + W_BITS),
                Payload::Candidate { .. } => 2 * l + (2 * l + W_BITS) + l,
                Payload::StDone { .. } => 1,
                Payload::TestBatch { count } => count * 3 * l,
                Payload::EdgeUpdate { .. } => 2 * l + W_BITS + 1,
                Payload::CertSketch { sketch, .. } => l + sketch.wire_bits(),
            }
    }
}

/// The id width for an `n`-vertex instance.
pub fn id_bits(n: usize) -> u64 {
    kmachine::bandwidth::id_bits(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksketch::SketchParams;

    #[test]
    fn sizes_scale_with_id_width() {
        let q = Payload::PtrQuery {
            asker: 1,
            target: 2,
        };
        assert_eq!(q.wire_bits(10), 16 + 20);
        assert_eq!(q.wire_bits(20), 16 + 40);
    }

    #[test]
    fn sketch_messages_dominate_control_messages() {
        let p = SketchParams::for_graph(1 << 14, 4);
        let s = Payload::PartSketch {
            label: 0,
            sketch: Box::new(ksketch::L0Sketch::new(p)),
        };
        let f = Payload::Flag { bit: true };
        assert!(s.wire_bits(14) > 100 * f.wire_bits(14));
    }

    #[test]
    fn batched_messages_cost_per_entry() {
        let one = Payload::FloodLabels {
            updates: vec![(1, 2)],
        };
        let ten = Payload::FloodLabels {
            updates: (0..10).map(|i| (i, i as u64)).collect(),
        };
        let l = 12;
        assert_eq!(
            ten.wire_bits(l) - TAG_BITS,
            10 * (one.wire_bits(l) - TAG_BITS)
        );
    }

    #[test]
    fn threshold_none_is_cheaper_than_some() {
        let some = Payload::Threshold {
            label: 5,
            key: Some((9, 1, 2)),
        };
        let none = Payload::Threshold {
            label: 5,
            key: None,
        };
        assert!(some.wire_bits(16) > none.wire_bits(16));
    }

    #[test]
    fn edge_update_costs_one_edge_record() {
        let up = Payload::EdgeUpdate {
            vertex: 3,
            other: 9,
            weight: 5,
            insert: true,
        };
        // Two ids + weight + direction bit, plus the flat tag.
        assert_eq!(up.wire_bits(12), 16 + 24 + 32 + 1);
    }

    #[test]
    fn id_bits_matches_bandwidth_helper() {
        assert_eq!(id_bits(1 << 16), 16);
        assert_eq!(id_bits((1 << 16) + 1), 17);
    }
}
