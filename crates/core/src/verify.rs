//! Graph verification problems (paper §3.3, Theorem 4).
//!
//! All eight problems reduce to (one or two runs of) the `O~(n/k²)`
//! connectivity algorithm, exactly as in the paper's proof of Theorem 4:
//!
//! * **cut** — remove the cut edges and test connectivity;
//! * **s-t connectivity** — compare the two endpoint labels;
//! * **edge on all paths** — s-t connectivity in `G − e`;
//! * **s-t cut** — s-t connectivity after removing the subgraph;
//! * **bipartiteness** — the AGM reduction: `G` is bipartite iff its
//!   bipartite double cover has exactly `2·cc(G)` components;
//! * **spanning connected subgraph / cycle containment / e-cycle
//!   containment** — the reductions of \[11\] via component counting.
//!
//! Every function returns the verdict plus the combined communication
//! statistics, so the E11 experiments can report rounds per problem.

use crate::connectivity::{connected_components_with_partition, ConnectivityConfig};
use kgraph::{Graph, Partition};
use kmachine::metrics::CommStats;
use rustc_hash::FxHashSet;

/// A verification verdict plus its communication cost.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The answer to the verification question.
    pub holds: bool,
    /// Combined communication statistics of all runs involved.
    pub stats: CommStats,
}

fn run_conn(
    g: &Graph,
    part: &Partition,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> (Vec<u64>, usize, CommStats) {
    let out = connected_components_with_partition(g, part, seed, cfg);
    let count = out.component_count();
    (out.labels, count, out.stats)
}

/// Spanning connected subgraph (SCS): does the subgraph `h_edges ⊆ E(G)`
/// span `G` and form a connected graph? (The Figure-1 / Theorem-5 problem.)
pub fn spanning_connected_subgraph(
    g: &Graph,
    h_edges: &FxHashSet<(u32, u32)>,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let h = g.edge_subgraph(h_edges);
    let part = Partition::random_vertex(g, k, seed);
    let (_, count, stats) = run_conn(&h, &part, seed, cfg);
    Verdict {
        holds: count == 1,
        stats,
    }
}

/// Cycle containment: does the subgraph `h_edges` contain a cycle?
/// A subgraph with `c` components and `m` edges on `n` vertices is a forest
/// iff `m = n − c`; the edge count is aggregated alongside the §2.6 output
/// protocol (its cost is dominated by the connectivity run).
pub fn cycle_containment(
    g: &Graph,
    h_edges: &FxHashSet<(u32, u32)>,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let h = g.edge_subgraph(h_edges);
    let part = Partition::random_vertex(g, k, seed);
    let (_, count, stats) = run_conn(&h, &part, seed, cfg);
    Verdict {
        holds: h.m() > h.n() - count,
        stats,
    }
}

/// e-cycle containment: does edge `e = (a, b) ∈ H` lie on a cycle of the
/// subgraph? True iff `a` and `b` stay connected in `H − e`.
pub fn e_cycle_containment(
    g: &Graph,
    h_edges: &FxHashSet<(u32, u32)>,
    e: (u32, u32),
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let canon = (e.0.min(e.1), e.0.max(e.1));
    let mut kept = h_edges.clone();
    kept.remove(&canon);
    let h_minus = g.edge_subgraph(&kept);
    let part = Partition::random_vertex(g, k, seed);
    let (labels, _, stats) = run_conn(&h_minus, &part, seed, cfg);
    Verdict {
        holds: labels[canon.0 as usize] == labels[canon.1 as usize],
        stats,
    }
}

/// s-t connectivity: are `s` and `t` in the same component of `G`?
/// After the run, `home(s)` ships `label(s)` to `home(t)` for the final
/// comparison (one extra O(log n)-bit message, counted).
pub fn st_connectivity(
    g: &Graph,
    s: u32,
    t: u32,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let part = Partition::random_vertex(g, k, seed);
    let (labels, _, mut stats) = run_conn(g, &part, seed, cfg);
    stats.absorb(&final_compare_cost(g, &part, s, t, cfg));
    Verdict {
        holds: labels[s as usize] == labels[t as usize],
        stats,
    }
}

/// The final `home(s) → home(t)` label shipment of s-t style verdicts.
fn final_compare_cost(
    g: &Graph,
    part: &Partition,
    s: u32,
    t: u32,
    cfg: &ConnectivityConfig,
) -> CommStats {
    use crate::messages::{id_bits, Payload};
    use kmachine::bsp::Bsp;
    use kmachine::message::Envelope;
    use kmachine::network::NetworkConfig;
    let mut bsp: Bsp<Payload> = Bsp::new(NetworkConfig::new(part.k(), cfg.bandwidth, g.n()));
    crate::engine::attach_transport(&mut bsp, cfg.transport, part.k());
    if let Some(plan) = cfg.faults.clone() {
        bsp.install_faults(plan, cfg.recovery.ack_retransmit);
    }
    let (hs, ht) = (part.home(s), part.home(t));
    if hs != ht {
        let payload = Payload::StDone { same: true };
        let bits = payload.wire_bits_lw(id_bits(g.n()), id_bits(g.n()));
        bsp.superstep(vec![Envelope::with_bits(hs, ht, payload, bits)]);
        let _ = bsp.take_all_inboxes();
    }
    bsp.into_stats()
}

/// Cut verification: is the edge set `cut_edges` a cut of `G` (i.e. does
/// removing it disconnect the graph)?
pub fn cut_verification(
    g: &Graph,
    cut_edges: &FxHashSet<(u32, u32)>,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let reduced = g.without_edges(cut_edges);
    let part = Partition::random_vertex(g, k, seed);
    let (_, count, stats) = run_conn(&reduced, &part, seed, cfg);
    Verdict {
        holds: count > kgraph::refalgo::component_count(g),
        stats,
    }
}

/// Edge on all paths: does every `u`–`v` path use edge `e`? True iff `u`
/// and `v` are disconnected in `G − e`.
pub fn edge_on_all_paths(
    g: &Graph,
    e: (u32, u32),
    u: u32,
    v: u32,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let canon = (e.0.min(e.1), e.0.max(e.1));
    let mut rm = FxHashSet::default();
    rm.insert(canon);
    let reduced = g.without_edges(&rm);
    let part = Partition::random_vertex(g, k, seed);
    let (labels, _, mut stats) = run_conn(&reduced, &part, seed, cfg);
    stats.absorb(&final_compare_cost(g, &part, u, v, cfg));
    Verdict {
        holds: labels[u as usize] != labels[v as usize],
        stats,
    }
}

/// s-t cut verification: does removing `edges` disconnect `s` from `t`?
pub fn st_cut_verification(
    g: &Graph,
    edges: &FxHashSet<(u32, u32)>,
    s: u32,
    t: u32,
    k: usize,
    seed: u64,
    cfg: &ConnectivityConfig,
) -> Verdict {
    let reduced = g.without_edges(edges);
    let part = Partition::random_vertex(g, k, seed);
    let (labels, _, mut stats) = run_conn(&reduced, &part, seed, cfg);
    stats.absorb(&final_compare_cost(g, &part, s, t, cfg));
    Verdict {
        holds: labels[s as usize] != labels[t as usize],
        stats,
    }
}

/// Bipartiteness (AGM reduction, §3.3 of \[2\]): `G` is bipartite iff its
/// bipartite double cover `D(G)` has exactly `2·cc(G)` components. The
/// cover is built locally (vertex `v` lifts to `v` and `v + n` on the same
/// home machine — no communication); both connectivity runs are counted.
pub fn bipartiteness(g: &Graph, k: usize, seed: u64, cfg: &ConnectivityConfig) -> Verdict {
    let part = Partition::random_vertex(g, k, seed);
    let (_, cc_g, mut stats) = run_conn(g, &part, seed, cfg);
    let cover = g.bipartite_double_cover();
    // The cover partition keeps v and v+n on v's home machine.
    let cover_part = part.lifted_double_cover();
    let (_, cc_d, stats2) = run_conn(&cover, &cover_part, seed ^ 0xB1, cfg);
    stats.absorb(&stats2);
    Verdict {
        holds: cc_d == 2 * cc_g,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::generators;

    fn cfg() -> ConnectivityConfig {
        ConnectivityConfig::default()
    }

    fn edge_set(edges: &[(u32, u32)]) -> FxHashSet<(u32, u32)> {
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect()
    }

    #[test]
    fn scs_accepts_spanning_tree_rejects_disconnected() {
        let g = generators::random_connected(60, 40, 1);
        // All edges: connected, spanning.
        let all: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        assert!(spanning_connected_subgraph(&g, &all, 4, 2, &cfg()).holds);
        // Empty subgraph: disconnected.
        let none = FxHashSet::default();
        assert!(!spanning_connected_subgraph(&g, &none, 4, 3, &cfg()).holds);
    }

    #[test]
    fn cycle_containment_tells_forests_from_cyclic() {
        let g = generators::cycle(30);
        let all: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        assert!(cycle_containment(&g, &all, 4, 4, &cfg()).holds);
        // Drop one edge: a path, no cycle.
        let mut forest = all.clone();
        let first = *forest.iter().next().unwrap();
        forest.remove(&first);
        assert!(!cycle_containment(&g, &forest, 4, 5, &cfg()).holds);
    }

    #[test]
    fn e_cycle_detects_whether_edge_lies_on_cycle() {
        // Triangle + pendant edge.
        let g = Graph::unweighted(5, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let h: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        assert!(e_cycle_containment(&g, &h, (0, 1), 2, 6, &cfg()).holds);
        assert!(!e_cycle_containment(&g, &h, (2, 3), 2, 7, &cfg()).holds);
    }

    #[test]
    fn st_connectivity_answers_both_ways() {
        let g = generators::planted_components(80, 2, 3, 8);
        let labels = kgraph::refalgo::connected_components(&g);
        let s = 0u32;
        let same = (1..80u32)
            .find(|&v| labels[v as usize] == labels[0])
            .unwrap();
        let diff = (1..80u32)
            .find(|&v| labels[v as usize] != labels[0])
            .unwrap();
        assert!(st_connectivity(&g, s, same, 4, 9, &cfg()).holds);
        assert!(!st_connectivity(&g, s, diff, 4, 10, &cfg()).holds);
    }

    #[test]
    fn cut_verification_accepts_real_cuts() {
        // A path: any single edge is a cut.
        let g = generators::path(40);
        assert!(cut_verification(&g, &edge_set(&[(10, 11)]), 4, 11, &cfg()).holds);
        // A cycle: one edge is not a cut, two adjacent ones are.
        let c = generators::cycle(40);
        assert!(!cut_verification(&c, &edge_set(&[(10, 11)]), 4, 12, &cfg()).holds);
        assert!(cut_verification(&c, &edge_set(&[(10, 11), (20, 21)]), 4, 13, &cfg()).holds);
    }

    #[test]
    fn edge_on_all_paths_detects_bridges() {
        // Two triangles joined by a bridge (4,5)... build explicitly:
        let g = Graph::unweighted(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3), // bridge
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        assert!(edge_on_all_paths(&g, (2, 3), 0, 4, 2, 14, &cfg()).holds);
        assert!(!edge_on_all_paths(&g, (0, 1), 0, 2, 2, 15, &cfg()).holds);
    }

    #[test]
    fn st_cut_verification_works() {
        let g = generators::path(30);
        assert!(st_cut_verification(&g, &edge_set(&[(14, 15)]), 0, 29, 4, 16, &cfg()).holds);
        assert!(!st_cut_verification(&g, &edge_set(&[(14, 15)]), 0, 10, 4, 17, &cfg()).holds);
    }

    #[test]
    fn bipartiteness_even_vs_odd_cycles() {
        assert!(bipartiteness(&generators::cycle(32), 4, 18, &cfg()).holds);
        assert!(!bipartiteness(&generators::cycle(33), 4, 19, &cfg()).holds);
    }

    #[test]
    fn bipartiteness_on_disconnected_mixed_graph() {
        // One even cycle + one odd cycle, disjoint: not bipartite.
        let mut edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 1) % 16)).collect();
        edges.extend((0..9u32).map(|i| (16 + i, 16 + (i + 1) % 9)));
        let g = Graph::unweighted(25, edges);
        assert!(!bipartiteness(&g, 4, 20, &cfg()).holds);
        // Two even cycles: bipartite.
        let mut edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 1) % 16)).collect();
        edges.extend((0..10u32).map(|i| (16 + i, 16 + (i + 1) % 10)));
        let g = Graph::unweighted(26, edges);
        assert!(bipartiteness(&g, 4, 21, &cfg()).holds);
    }

    #[test]
    fn verification_costs_are_reported() {
        let g = generators::random_connected(60, 30, 22);
        let v = st_connectivity(&g, 0, 30, 4, 23, &cfg());
        assert!(v.stats.rounds > 0);
        assert!(v.stats.total_bits > 0);
    }
}
