//! Minimum spanning tree in the k-machine model (paper §3.1, Theorem 2).
//!
//! Sketch-based Borůvka: each phase every component finds its minimum-weight
//! outgoing edge (MWOE) by the `Θ(log n)`-iteration edge-elimination loop —
//! sample a uniform outgoing edge, broadcast its weight as a threshold,
//! rebuild sketches restricted to strictly lighter edges, resample — then
//! merges along MWOEs with the same DRR machinery as connectivity.
//!
//! Output criteria (Theorem 2):
//! * **(a) `AnyMachine`** — every MST edge is output by at least one machine
//!   (the proxy that chose it). `O~(n/k²)` rounds.
//! * **(b) `BothEndpoints`** — every MST edge is additionally routed to the
//!   home machines of both endpoints. This is the regime with the
//!   `Ω~(n/k)` lower bound of \[22\] (a machine hosting a high-degree vertex
//!   must receive the status of all its edges); the extra routing step
//!   reproduces exactly that bottleneck on star-like graphs (E8).

use crate::engine::{Engine, EngineConfig, EngineResult, Mode};
use crate::messages::{id_bits, Payload};
use kgraph::graph::Edge;
use kgraph::{Graph, Partition, ShardedGraph};
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::message::{Encoding, Envelope};
use kmachine::metrics::CommStats;
use kmachine::network::NetworkConfig;
use kmachine::trace::Tracer;
use kmachine::transport::TransportSel;

/// Which output criterion of Theorem 2 to satisfy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputCriterion {
    /// Theorem 2(a): each MST edge known by at least one machine.
    AnyMachine,
    /// Theorem 2(b): each MST edge known by both endpoint home machines.
    BothEndpoints,
}

/// Configuration for an MST run.
#[derive(Clone, Debug)]
pub struct MstConfig {
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Sketch repetitions.
    pub reps: u32,
    /// Charge the §2.2 shared-randomness distribution cost.
    pub charge_shared_randomness: bool,
    /// Which Theorem 2 output criterion to satisfy.
    pub criterion: OutputCriterion,
    /// Optional hard phase cap.
    pub max_phases: Option<u32>,
    /// Deterministic fault-injection plan the run must survive (`None` —
    /// the default — keeps the fault-free behaviour bit for bit).
    pub faults: Option<kmachine::fault::FaultPlan>,
    /// How injected faults are survived (see
    /// [`crate::engine::RecoveryPolicy`]).
    pub recovery: crate::engine::RecoveryPolicy,
    /// Supergraph contraction after phase 0 (DESIGN.md §3.11; default
    /// `false`). Contracted phases compute exact local MWOEs on the
    /// deduped supergraph — the output forest is the same unique MST
    /// (tie-free edge keys), reached without the elimination loop.
    pub contract: bool,
    /// Wire encoding the superstep layer charges bandwidth under (default
    /// per-message [`Encoding::Naive`]). Accounting only.
    pub encoding: Encoding,
    /// Byte transport carrying each superstep window (default
    /// [`TransportSel::Sim`], the in-process oracle; see DESIGN.md §3.12).
    pub transport: TransportSel,
    /// Structured event tracer (DESIGN.md §3.14; default off). Never
    /// changes outputs or [`CommStats`].
    pub trace: Tracer,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            bandwidth: Bandwidth::default(),
            reps: 5,
            charge_shared_randomness: true,
            criterion: OutputCriterion::AnyMachine,
            max_phases: None,
            faults: None,
            recovery: crate::engine::RecoveryPolicy::default(),
            contract: false,
            encoding: Encoding::Naive,
            transport: TransportSel::Sim,
            trace: Tracer::off(),
        }
    }
}

/// The result of an MST run.
#[derive(Clone, Debug)]
pub struct MstOutput {
    /// The spanning-forest edges (canonical, deduplicated, sorted).
    pub edges: Vec<Edge>,
    /// Total weight of the output forest.
    pub total_weight: u128,
    /// Full communication accounting.
    pub stats: CommStats,
    /// Borůvka phases executed.
    pub phases: u32,
    /// How many edges each machine output (criterion (a) distribution).
    pub edges_per_machine: Vec<usize>,
    /// The isolated cost of the Theorem 2(b) endpoint-routing stage
    /// (`None` under criterion (a)). On star-like inputs this stage
    /// concentrates Θ(n) receive bits at one machine — the Ω~(n/k)
    /// bottleneck of \[22\] (experiment E8).
    pub endpoint_routing: Option<CommStats>,
}

/// Runs the MST algorithm on a weighted graph over `k` machines.
///
/// Deprecated-in-place: a thin shim over the session API
/// ([`crate::session::Mst`]); bit-identical to running on a
/// [`crate::session::Cluster`] built with the same `(k, seed)`.
///
/// ```
/// use kconn::mst::{minimum_spanning_tree, MstConfig};
/// use kgraph::{generators, refalgo};
///
/// let g = generators::randomize_weights(&generators::grid(5, 6), 100, 3);
/// let out = minimum_spanning_tree(&g, 4, 3, &MstConfig::default());
/// assert!(refalgo::is_spanning_forest(&g, &out.edges));
/// let kruskal = refalgo::kruskal(&g);
/// assert_eq!(out.total_weight, refalgo::forest_weight(&kruskal));
/// ```
pub fn minimum_spanning_tree(g: &Graph, k: usize, seed: u64, cfg: &MstConfig) -> MstOutput {
    use crate::session::{Cluster, Mst, Problem};
    Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(Mst::with(cfg.clone()))
        .output
}

/// Runs the MST algorithm with an explicit partition — the harness path
/// for callers that carry their own partition (e.g. the REP baseline's
/// post-filter core run); everyone else goes through
/// [`crate::session::Cluster`]. Shards first — the engine only ever sees
/// per-machine views.
pub fn minimum_spanning_tree_with_partition(
    g: &Graph,
    part: &Partition,
    seed: u64,
    cfg: &MstConfig,
) -> MstOutput {
    let sg = ShardedGraph::from_graph(g, part);
    minimum_spanning_tree_sharded(&sg, seed, cfg)
}

/// Runs the MST algorithm directly on sharded storage (the streaming
/// ingestion path).
pub fn minimum_spanning_tree_sharded(sg: &ShardedGraph, seed: u64, cfg: &MstConfig) -> MstOutput {
    let engine_cfg = EngineConfig {
        bandwidth: cfg.bandwidth,
        reps: cfg.reps,
        charge_shared_randomness: cfg.charge_shared_randomness,
        run_output_protocol: false,
        max_phases: cfg.max_phases,
        merge: Default::default(),
        cost_model: Default::default(),
        faults: cfg.faults.clone(),
        recovery: cfg.recovery,
        contract: cfg.contract,
        encoding: cfg.encoding,
        transport: cfg.transport,
        trace: cfg.trace.clone(),
        ..EngineConfig::default()
    };
    let result = Engine::new(sg, Mode::Mst, seed, engine_cfg).run();
    let mut stats = result.stats.clone();
    let mut endpoint_routing = None;
    if cfg.criterion == OutputCriterion::BothEndpoints {
        let routing = route_to_endpoints(sg, &result, cfg);
        stats.absorb(&routing);
        endpoint_routing = Some(routing);
    }
    let mut edges: Vec<Edge> = result
        .mst_edges
        .iter()
        .map(|&(u, v, w)| Edge::new(u, v, w))
        .collect();
    edges.sort_unstable_by_key(|e| (e.u, e.v));
    edges.dedup();
    let total_weight = edges.iter().map(|e| e.w as u128).sum();
    MstOutput {
        edges,
        total_weight,
        stats,
        phases: result.phases,
        edges_per_machine: result.mst_edges_per_machine,
        endpoint_routing,
    }
}

/// Theorem 2(b): route every chosen edge to both endpoint home machines.
/// The per-machine receive load is Θ(deg) edge records — on a star this is
/// the Ω~(n/k) bottleneck the paper proves unavoidable.
fn route_to_endpoints(sg: &ShardedGraph, result: &EngineResult, cfg: &MstConfig) -> CommStats {
    // Reconstruct which machine output each edge (machine order matches the
    // flattening in EngineResult).
    let mut sourced = Vec::new();
    let mut idx = 0usize;
    for (machine, &cnt) in result.mst_edges_per_machine.iter().enumerate() {
        for _ in 0..cnt {
            sourced.push((machine, result.mst_edges[idx]));
            idx += 1;
        }
    }
    route_edges_to_endpoints(sg, &sourced, cfg)
}

/// The routing superstep behind criterion (b), shared with the dynamic
/// layer's incremental MST path: each `(source machine, edge)` record is
/// sent to both endpoint home machines over the reliable superstep layer.
pub(crate) fn route_edges_to_endpoints(
    sg: &ShardedGraph,
    sourced: &[(usize, (u32, u32, u64))],
    cfg: &MstConfig,
) -> CommStats {
    let part = sg.partition();
    let mut net = NetworkConfig::new(part.k(), cfg.bandwidth, sg.n());
    net.encoding = cfg.encoding;
    let mut bsp: Bsp<Payload> = Bsp::new(net);
    crate::engine::attach_transport(&mut bsp, cfg.transport, part.k());
    bsp.set_tracer(cfg.trace.clone());
    let l = id_bits(sg.n());
    let mut out = Vec::new();
    for &(machine, (u, v, w)) in sourced {
        for dst in [part.home(u), part.home(v)] {
            let payload = Payload::EdgeList {
                edges: vec![(u, v, w)],
            };
            let bits = payload.wire_bits_lw(l, l);
            out.push(Envelope::with_bits(machine, dst, payload, bits));
        }
    }
    bsp.superstep(out);
    let _ = bsp.take_all_inboxes();
    let stats = bsp.into_stats();
    // The routing stage is absorbed into the run's reported totals, so it
    // must appear as its own trace segment for the per-phase breakdown to
    // keep tiling those totals exactly (DESIGN.md §3.14).
    let (rounds, bits) = (stats.rounds, stats.total_bits);
    cfg.trace.emit(|| kmachine::trace::TraceEvent::Segment {
        name: "endpoint_routing".to_string(),
        rounds,
        bits,
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{generators, refalgo};

    fn check(g: &Graph, k: usize, seed: u64) -> MstOutput {
        let out = minimum_spanning_tree(g, k, seed, &MstConfig::default());
        let reference = refalgo::kruskal(g);
        assert!(
            refalgo::is_spanning_forest(g, &out.edges),
            "output must be a spanning forest"
        );
        assert_eq!(
            out.total_weight,
            refalgo::forest_weight(&reference),
            "forest weight must equal Kruskal's"
        );
        out
    }

    #[test]
    fn tiny_weighted_square() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)]);
        let out = check(&g, 2, 3);
        assert_eq!(out.edges.len(), 3);
        assert_eq!(out.total_weight, 6);
    }

    #[test]
    fn weighted_grid() {
        let g = generators::randomize_weights(&generators::grid(6, 7), 1000, 5);
        check(&g, 4, 6);
    }

    #[test]
    fn weighted_random_connected() {
        let g = generators::randomize_weights(&generators::random_connected(150, 200, 7), 500, 8);
        check(&g, 6, 9);
    }

    #[test]
    fn disconnected_graph_yields_spanning_forest() {
        let g =
            generators::randomize_weights(&generators::planted_components(120, 3, 5, 10), 99, 11);
        let out = check(&g, 4, 12);
        assert_eq!(out.edges.len(), 120 - 3);
    }

    #[test]
    fn uniform_weights_still_give_minimum_forest() {
        // All weights 1: any spanning tree is minimum; the tie-free key
        // keeps the algorithm deterministic and the forest valid.
        let g = generators::random_connected(80, 60, 13);
        check(&g, 4, 14);
    }

    #[test]
    fn star_graph_mwoe_everywhere() {
        let g = generators::randomize_weights(&generators::star(64), 100, 15);
        let out = check(&g, 4, 16);
        assert_eq!(out.edges.len(), 63);
    }

    #[test]
    fn both_endpoints_criterion_costs_more() {
        let g = generators::randomize_weights(&generators::star(256), 50, 17);
        let a = minimum_spanning_tree(
            &g,
            8,
            18,
            &MstConfig {
                criterion: OutputCriterion::AnyMachine,
                ..MstConfig::default()
            },
        );
        let b = minimum_spanning_tree(
            &g,
            8,
            18,
            &MstConfig {
                criterion: OutputCriterion::BothEndpoints,
                ..MstConfig::default()
            },
        );
        assert_eq!(a.total_weight, b.total_weight);
        assert!(
            b.stats.rounds > a.stats.rounds,
            "criterion (b) must pay the endpoint routing: {} vs {}",
            b.stats.rounds,
            a.stats.rounds
        );
        // The star's hub home machine receives Θ(n) bits under (b).
        assert!(b.stats.max_machine_recv_bits() > a.stats.max_machine_recv_bits());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::randomize_weights(&generators::gnm(100, 300, 19), 77, 20);
        let a = minimum_spanning_tree(&g, 4, 21, &MstConfig::default());
        let b = minimum_spanning_tree(&g, 4, 21, &MstConfig::default());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.stats.rounds, b.stats.rounds);
    }
}
