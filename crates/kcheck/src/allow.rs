//! The `kcheck.allow` file: audited exceptions.
//!
//! One entry per line:
//!
//! ```text
//! KC02 crates/kmachine/src/transport.rs "Instant::now() + HELLO_TIMEOUT" -- physical deadline, not algorithm state
//! ```
//!
//! i.e. `<CODE> <path> "<needle>" -- <justification>`. An entry suppresses a
//! diagnostic when the code and file match exactly and the *original* source
//! line contains the quoted needle — content-anchored so entries survive
//! line-number churn. Blank lines and `#` comments are ignored. Every entry
//! must suppress at least one diagnostic; stale entries are themselves
//! reported as errors so the allowlist can only shrink honestly.

use crate::diag::Diagnostic;

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Lint code, e.g. `KC02`.
    pub code: String,
    /// Workspace-relative path the exception applies to.
    pub file: String,
    /// Substring the offending source line must contain.
    pub needle: String,
    /// One-line human justification (required).
    pub reason: String,
    /// Line in `kcheck.allow`, for stale-entry reporting.
    pub line: usize,
}

impl AllowEntry {
    /// Does this entry suppress `d` (whose quoted snippet is the original
    /// source line)?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.code == d.lint.code() && self.file == d.file && d.snippet.contains(&self.needle)
    }
}

/// The parsed allowlist.
#[derive(Default, Debug)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist text; malformed lines are hard errors (an
    /// allowlist that silently drops entries would un-audit exceptions).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("kcheck.allow:{}: {what}: {raw}", idx + 1);
            let (code, rest) = line.split_once(' ').ok_or_else(|| err("missing path"))?;
            if !matches!(code, "KC01" | "KC02" | "KC03" | "KC04" | "KC05" | "KC06") {
                return Err(err("unknown lint code"));
            }
            let rest = rest.trim_start();
            let (file, rest) = rest
                .split_once(" \"")
                .ok_or_else(|| err("missing quoted needle"))?;
            let (needle, rest) = rest
                .split_once('"')
                .ok_or_else(|| err("unterminated needle"))?;
            let reason = rest
                .trim_start()
                .strip_prefix("--")
                .map(str::trim)
                .ok_or_else(|| err("missing `-- justification`"))?;
            if needle.is_empty() || reason.is_empty() {
                return Err(err("empty needle or justification"));
            }
            entries.push(AllowEntry {
                code: code.to_string(),
                file: file.trim().to_string(),
                needle: needle.to_string(),
                reason: reason.to_string(),
                line: idx + 1,
            });
        }
        Ok(Allowlist { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Lint};

    fn diag(file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            lint: Lint::WallClock,
            file: file.into(),
            line: 7,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let a =
            Allowlist::parse("# comment\n\nKC02 src/a.rs \"Instant::now\" -- physical deadline\n")
                .unwrap();
        assert_eq!(a.entries.len(), 1);
        assert!(a.entries[0].matches(&diag("src/a.rs", "let t = Instant::now();")));
        assert!(!a.entries[0].matches(&diag("src/b.rs", "let t = Instant::now();")));
        assert!(!a.entries[0].matches(&diag("src/a.rs", "let t = later;")));
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in [
            "KC09 src/a.rs \"x\" -- y",
            "KC02 src/a.rs x -- y",
            "KC02 src/a.rs \"x\"",
            "KC02 src/a.rs \"\" -- y",
        ] {
            assert!(Allowlist::parse(bad).is_err(), "{bad}");
        }
    }
}
