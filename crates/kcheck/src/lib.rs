#![warn(missing_docs)]
//! `kcheck` — the workspace invariant linter behind `kmm check`.
//!
//! Runtime conformance tests prove the invariants this reproduction rests
//! on *for the seeds they run*; `kcheck` proves the source-level half at
//! the diff, before any seed-dependent cell runs. Five lints (DESIGN.md
//! §3.13 is the catalogue):
//!
//! * **KC01 deterministic-iteration** — no unordered iteration over
//!   `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` in message-producing or
//!   accounting paths; the sanctioned route is `kmachine::det`.
//! * **KC02 wall-clock-and-rng** — no `Instant`/`SystemTime`/ambient RNG
//!   in those paths outside audited report/deadline fields.
//! * **KC03 payload-exhaustiveness** — every `Payload` variant has a
//!   charge arm (`wire_bits_lw`), a tag (`tag_index`), a batch price
//!   (`batch_wire_bits`), an encode arm and a decode arm; wildcards that
//!   would absorb a future variant are rejected.
//! * **KC04 charge-site-discipline** — envelope charges in `kconn` use
//!   `wire_bits_lw(l, lw)`, never raw `wire_bits(l)`.
//! * **KC05 panic-hygiene** — no `unwrap`/`expect`/slice-indexing in the
//!   transport worker and window-protocol paths.
//!
//! Audited exceptions live in `kcheck.allow` ([`allow`]); stale entries
//! are errors. The pass is dependency-free: it lexes by *blanking*
//! comments and literals ([`scan`]) rather than parsing a full AST, which
//! is exactly strong enough for these lints and builds offline.

pub mod allow;
pub mod config;
pub mod diag;
pub mod lints;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use allow::{AllowEntry, Allowlist};
pub use config::{ArmSpec, Config, ExhaustiveSpec};
pub use diag::{Diagnostic, Lint};

/// One loaded source file, pre-blanked for the lints.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Original text (diagnostics quote this).
    pub text: String,
    /// Blanked text (lints scan this — see [`scan::blank`]).
    pub blanked: String,
    /// Byte spans of `#[cfg(test)]` items in `blanked`.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Blank and index `text` under the relative path `rel`.
    pub fn new(rel: String, text: String) -> SourceFile {
        let blanked = scan::blank(&text);
        let test_spans = scan::test_spans(&blanked);
        SourceFile {
            rel,
            text,
            blanked,
            test_spans,
        }
    }
}

/// Directory names the walker never descends into: build outputs, the
/// vendored shims (external API surface, not ours to lint), and test /
/// fixture trees (tests may unwrap and iterate freely; fixtures are
/// deliberately bad).
const SKIP_DIRS: [&str; 7] = [
    "target", "vendor", ".git", "tests", "benches", "examples", "fixtures",
];

/// Recursively collect `.rs` files under `root`, sorted by relative path
/// so output order is itself deterministic.
pub fn collect_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&p)?;
        files.push(SourceFile::new(rel, text));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The outcome of a check run.
pub struct Report {
    /// Violations that survived the allowlist, sorted by file/line.
    pub diags: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing — stale, and an error.
    pub stale_allow: Vec<AllowEntry>,
    /// How many diagnostics the allowlist suppressed.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means zero live diagnostics *and* zero stale allow entries.
    pub fn clean(&self) -> bool {
        self.diags.is_empty() && self.stale_allow.is_empty()
    }
}

/// Run every lint over pre-loaded `files`, filtering through `allow`.
pub fn check_files(files: &[SourceFile], cfg: &Config, allow: &Allowlist) -> Report {
    let raw = lints::run_all(files, cfg);
    let mut used = vec![false; allow.entries.len()];
    let mut diags = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let mut hit = false;
        for (i, e) in allow.entries.iter().enumerate() {
            if e.matches(&d) {
                used[i] = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            diags.push(d);
        }
    }
    let stale_allow = allow
        .entries
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Report {
        diags,
        stale_allow,
        suppressed,
        files_scanned: files.len(),
    }
}

/// Load `root`'s sources and allowlist (at `allow_path`, which may not
/// exist — that is an empty allowlist) and run the full check.
pub fn check_workspace(root: &Path, cfg: &Config, allow_path: &Path) -> Result<Report, String> {
    let allow = match fs::read_to_string(allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("{}: {e}", allow_path.display())),
    };
    let files = collect_files(root).map_err(|e| format!("{}: {e}", root.display()))?;
    Ok(check_files(&files, cfg, &allow))
}
