//! The six invariant lints.
//!
//! All of them work on blanked text (see [`crate::scan`]): substring hits
//! cannot come from comments or string literals, and brace matching is
//! sound. Hits inside `#[cfg(test)]` items are skipped everywhere — tests
//! may unwrap and may iterate however they like.

use std::collections::BTreeSet;

use crate::config::{ArmSpec, Config};
use crate::diag::{Diagnostic, Lint};
use crate::scan::{self, find_word, is_ident_byte};
use crate::SourceFile;

/// Hash-container type names whose iteration order is non-canonical.
const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// Methods that observe a hash container in its internal order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Wall-clock / ambient-RNG needles (KC02).
const CLOCK_NEEDLES: [&str; 5] = [
    "Instant::now(",
    "SystemTime",
    "thread_rng(",
    "from_entropy(",
    "rand::random",
];

/// Panicking-call needles (KC05).
const PANIC_NEEDLES: [&str; 4] = [
    ".unwrap()",
    ".expect(",
    ".unwrap_err()",
    ".unwrap_unchecked(",
];

/// Ad-hoc print-macro needles (KC06).
const PRINT_NEEDLES: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

fn push(out: &mut Vec<Diagnostic>, f: &SourceFile, lint: Lint, offset: usize, message: String) {
    let line = scan::line_of(&f.blanked, offset);
    out.push(Diagnostic {
        lint,
        file: f.rel.clone(),
        line,
        message,
        snippet: scan::line_text(&f.text, line).trim().to_string(),
    });
}

/// Run every lint over every file.
pub fn run_all(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if Config::in_scope(&cfg.det_scope, &f.rel) {
            if !Config::in_scope(&cfg.det_exempt, &f.rel) {
                map_iter(f, &mut out);
            }
            wall_clock(f, &mut out);
        }
        if Config::in_scope(&cfg.charge_scope, &f.rel)
            && !Config::in_scope(&cfg.charge_exempt, &f.rel)
        {
            charge_site(f, &mut out);
        }
        if Config::in_scope(&cfg.unwrap_scope, &f.rel) {
            panic_calls(f, &mut out);
        }
        if Config::in_scope(&cfg.index_scope, &f.rel) {
            slice_indexing(f, &mut out);
        }
        if Config::in_scope(&cfg.print_scope, &f.rel) {
            print_macros(f, &mut out);
        }
    }
    for spec in &cfg.exhaustive {
        exhaustive(files, spec, &mut out);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.code()).cmp(&(b.file.as_str(), b.line, b.lint.code()))
    });
    out
}

// ---------------------------------------------------------------- KC01 --

/// Names in this file declared (or annotated) with a hash-container type:
/// `let`/field/param annotations `name: [&[mut]] T<...>`, initializations
/// `name = T::default()` / `T::new()`, and local `type` aliases whose
/// right-hand side is a hash container.
fn hash_typed_names(blanked: &str) -> BTreeSet<String> {
    let mut tokens: Vec<String> = HASH_TYPES
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    // Local aliases: `type LinkBuckets<M> = FxHashMap<...>;`
    let mut at = 0;
    while let Some(pos) = find_word(blanked, "type", at) {
        at = pos + 4;
        let rest = &blanked[pos..];
        let Some(semi) = rest.find(';') else { continue };
        let decl = &rest[..semi];
        let Some(eq) = decl.find('=') else { continue };
        if HASH_TYPES
            .iter()
            .any(|t| find_word(&decl[eq..], t, 0).is_some())
        {
            // Alias name: first ident after `type`.
            let after = decl[4..eq].trim_start();
            let name: String = after
                .chars()
                .take_while(|c| is_ident_byte(*c as u8))
                .collect();
            if !name.is_empty() {
                tokens.push(name);
            }
        }
    }
    let mut names = BTreeSet::new();
    for tok in &tokens {
        let mut at = 0;
        while let Some(pos) = find_word(blanked, tok, at) {
            at = pos + tok.len();
            if let Some(name) = decl_name(blanked, pos) {
                names.insert(name);
            }
        }
    }
    names
}

/// Walk backwards from a type-token occurrence at `pos` to the identifier
/// it declares, if this occurrence is a declaration site. Handles
/// `name: &'a mut Path::To<T>` and `name = T::default()`.
fn decl_name(blanked: &str, pos: usize) -> Option<String> {
    let b = blanked.as_bytes();
    let mut i = pos;
    loop {
        while i > 0 && (b[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        // Path separator: skip `::` and then its leading segment.
        if i >= 2 && b[i - 1] == b':' && b[i - 2] == b':' {
            i -= 2;
            while i > 0 && is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            continue;
        }
        if b[i - 1] == b':' {
            i -= 1;
            return ident_back(b, i);
        }
        if b[i - 1] == b'=' {
            // Reject compound operators (`==`, `>=`, `+=`, ...).
            if i >= 2
                && matches!(
                    b[i - 2],
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                )
            {
                return None;
            }
            i -= 1;
            return ident_back(b, i);
        }
        match b[i - 1] {
            b'&' | b'\'' => {
                i -= 1;
            }
            c if is_ident_byte(c) => {
                let start = ident_start(b, i);
                let word = &blanked[start..i];
                if word == "mut" || word == "dyn" {
                    i = start;
                } else if start > 0 && b[start - 1] == b'\'' {
                    // Lifetime name; keep walking.
                    i = start;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    }
}

fn ident_start(b: &[u8], end: usize) -> usize {
    let mut s = end;
    while s > 0 && is_ident_byte(b[s - 1]) {
        s -= 1;
    }
    s
}

fn ident_back(b: &[u8], mut end: usize) -> Option<String> {
    while end > 0 && (b[end - 1] as char).is_whitespace() {
        end -= 1;
    }
    let start = ident_start(b, end);
    if start == end {
        return None;
    }
    let name = std::str::from_utf8(&b[start..end]).ok()?.to_string();
    if name == "self" || name.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(name)
}

fn map_iter(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let names = hash_typed_names(&f.blanked);
    for name in &names {
        let mut at = 0;
        while let Some(pos) = find_word(&f.blanked, name, at) {
            at = pos + name.len();
            if scan::in_spans(&f.test_spans, pos) {
                continue;
            }
            // `name.iter()`-style observation in internal order (leading
            // whitespace tolerated so multi-line method chains don't hide).
            let rest = f.blanked[pos + name.len()..].trim_start();
            if let Some(m) = rest.strip_prefix('.') {
                let method: String = m.chars().take_while(|c| is_ident_byte(*c as u8)).collect();
                if m[method.len()..].starts_with('(') && ITER_METHODS.contains(&method.as_str()) {
                    push(
                        out,
                        f,
                        Lint::MapIter,
                        pos,
                        format!(
                            "unordered `.{method}()` over hash container `{name}` in a \
                             deterministic path; route through `kmachine::det` \
                             (sorted_entries / into_sorted_entries / sorted_members / max_value)"
                        ),
                    );
                }
            }
            // `for x in [&[mut ]]name {` — IntoIterator in internal order.
            if is_for_in_target(&f.blanked, pos, name.len()) {
                push(
                    out,
                    f,
                    Lint::MapIter,
                    pos,
                    format!(
                        "`for .. in` over hash container `{name}` iterates in internal \
                         hash order; route through `kmachine::det`"
                    ),
                );
            }
        }
    }
}

/// Is the occurrence of a name at `pos` the target of a `for .. in` header
/// whose loop body starts right after it?
fn is_for_in_target(blanked: &str, pos: usize, name_len: usize) -> bool {
    let line_start = blanked[..pos].rfind('\n').map_or(0, |p| p + 1);
    let before = &blanked[line_start..pos];
    let Some(fp) = find_word(before, "for", 0) else {
        return false;
    };
    let Some(ip) = before[fp..].rfind(" in ") else {
        return false;
    };
    // Between ` in ` and the name: only borrow sigils / `mut` / spaces.
    let between = before[fp + ip + 4..].trim();
    let between = between
        .trim_start_matches('&')
        .trim_start_matches("mut")
        .trim();
    if !between.is_empty() {
        return false;
    }
    // After the name: the loop body brace (method calls are handled by the
    // `.iter()` check above).
    blanked[pos + name_len..].trim_start().starts_with('{')
}

// ---------------------------------------------------------------- KC02 --

fn wall_clock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for needle in CLOCK_NEEDLES {
        let mut at = 0;
        while let Some(rel) = f.blanked[at..].find(needle) {
            let pos = at + rel;
            at = pos + needle.len();
            let b = f.blanked.as_bytes();
            if pos > 0 && is_ident_byte(b[pos - 1]) {
                continue;
            }
            if scan::in_spans(&f.test_spans, pos) {
                continue;
            }
            push(
                out,
                f,
                Lint::WallClock,
                pos,
                format!(
                    "`{}` in a deterministic path: wall-clock and ambient RNG are \
                     only allowed in report fields / physical deadlines (allowlist \
                     with a justification if this is one)",
                    needle.trim_end_matches('(')
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- KC03 --

/// Variant names of `enum <name>` in `blanked`, or `None` if not found.
fn enum_variants(blanked: &str, name: &str) -> Option<Vec<String>> {
    let pat = format!("enum {name}");
    let pos = find_word(blanked, &pat, 0)?;
    let open = pos + blanked[pos..].find('{')?;
    let end = scan::match_brace(blanked, open);
    let body = &blanked[open + 1..end.saturating_sub(1)];
    let b = body.as_bytes();
    let mut depth = 0i32;
    let mut variants = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => depth -= 1,
            c if depth == 0 && is_ident_byte(c) && !c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                variants.push(body[start..i].to_string());
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

fn exhaustive(
    files: &[SourceFile],
    spec: &crate::config::ExhaustiveSpec,
    out: &mut Vec<Diagnostic>,
) {
    let Some(f) = files.iter().find(|f| f.rel == spec.file) else {
        out.push(Diagnostic {
            lint: Lint::Exhaustive,
            file: spec.file.clone(),
            line: 1,
            message: format!(
                "file declaring enum `{}` not found in workspace",
                spec.enum_name
            ),
            snippet: String::new(),
        });
        return;
    };
    let Some(variants) = enum_variants(&f.blanked, &spec.enum_name) else {
        push(
            out,
            f,
            Lint::Exhaustive,
            0,
            format!("enum `{}` not found", spec.enum_name),
        );
        return;
    };
    for arm in &spec.arms {
        check_arm(f, &spec.enum_name, &variants, arm, out);
    }
}

fn check_arm(
    f: &SourceFile,
    enum_name: &str,
    variants: &[String],
    arm: &ArmSpec,
    out: &mut Vec<Diagnostic>,
) {
    let scope = if arm.impl_needle.is_empty() {
        (0, f.blanked.len())
    } else {
        match scan::impl_body(&f.blanked, &arm.impl_needle) {
            Some(s) => s,
            None => {
                push(
                    out,
                    f,
                    Lint::Exhaustive,
                    0,
                    format!("impl block `{}` not found", arm.impl_needle),
                );
                return;
            }
        }
    };
    let Some((lo, hi)) = scan::fn_body(&f.blanked, &arm.fn_name, scope) else {
        push(
            out,
            f,
            Lint::Exhaustive,
            scope.0,
            format!("`fn {}` not found in `{}`", arm.fn_name, arm.impl_needle),
        );
        return;
    };
    let body = &f.blanked[lo..hi];
    for v in variants {
        let needle = format!("{enum_name}::{v}");
        if find_word(body, &needle, 0).is_none() {
            push(
                out,
                f,
                Lint::Exhaustive,
                lo,
                format!(
                    "variant `{needle}` has no arm in `fn {}` ({}): charge, codec \
                     and tag maps must stay exhaustive",
                    arm.fn_name,
                    if arm.impl_needle.is_empty() {
                        "file scope"
                    } else {
                        &arm.impl_needle
                    }
                ),
            );
        }
    }
    if !arm.allow_wildcard {
        if let Some(pos) = wildcard_arm(body) {
            push(
                out,
                f,
                Lint::Exhaustive,
                lo + pos,
                format!(
                    "`_ =>` arm in `fn {}`: a wildcard here would silently absorb a \
                     future `{enum_name}` variant",
                    arm.fn_name
                ),
            );
        }
    }
}

/// Offset of a bare `_ =>` match arm in `body`, if any.
fn wildcard_arm(body: &str) -> Option<usize> {
    let b = body.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'_' {
            continue;
        }
        let ok_before = i == 0 || !is_ident_byte(b[i - 1]);
        let ok_after = i + 1 >= b.len() || !is_ident_byte(b[i + 1]);
        if !(ok_before && ok_after) {
            continue;
        }
        let rest = body[i + 1..].trim_start();
        if rest.starts_with("=>") {
            return Some(i);
        }
    }
    None
}

// ---------------------------------------------------------------- KC04 --

fn charge_site(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut at = 0;
    while let Some(rel) = f.blanked[at..].find(".wire_bits(") {
        let pos = at + rel;
        at = pos + ".wire_bits(".len();
        if scan::in_spans(&f.test_spans, pos) {
            continue;
        }
        // Zero-arg `.wire_bits()` is a different method (`WireSize`), not a
        // Payload charge — only argument-taking calls are charge sites.
        let after_paren = f.blanked[pos + ".wire_bits(".len()..].trim_start();
        if after_paren.starts_with(')') {
            continue;
        }
        push(
            out,
            f,
            Lint::ChargeSite,
            pos,
            "raw `.wire_bits(l)` charge: use `.wire_bits_lw(l, lw)` so label fields \
             are priced at the live contracted width"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------- KC05 --

fn panic_calls(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for needle in PANIC_NEEDLES {
        let mut at = 0;
        while let Some(rel) = f.blanked[at..].find(needle) {
            let pos = at + rel;
            at = pos + needle.len();
            if scan::in_spans(&f.test_spans, pos) {
                continue;
            }
            push(
                out,
                f,
                Lint::PanicHygiene,
                pos,
                format!(
                    "`{needle}..` on a transport/window-protocol path: a panic here \
                     becomes a worker respawn+replay billed to `machine_crashes`; \
                     handle the None/Err case explicitly",
                ),
            );
        }
    }
}

fn slice_indexing(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let b = f.blanked.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1];
        // Indexing expressions: `expr[` where expr ends in an identifier or
        // a closing `)` / `]`. Everything else (`&[`, `#[`, `vec![`, array
        // types/literals after `:=(,<`) is not an index.
        let is_index = if is_ident_byte(prev) {
            // Exclude lifetimes: `&'a [T]` written without a space.
            let start = ident_start(b, i);
            !(start > 0 && b[start - 1] == b'\'')
        } else {
            prev == b')' || prev == b']'
        };
        if !is_index || scan::in_spans(&f.test_spans, i) {
            continue;
        }
        push(
            out,
            f,
            Lint::PanicHygiene,
            i,
            "slice/array indexing on a frame-handling path can panic on malformed \
             input; use `get`/`split_first`/pattern matching (allowlist with a \
             justification if the bound is structural)"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------- KC06 --

fn print_macros(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for needle in PRINT_NEEDLES {
        let mut at = 0;
        while let Some(rel) = f.blanked[at..].find(needle) {
            let pos = at + rel;
            at = pos + needle.len();
            let b = f.blanked.as_bytes();
            // `eprintln!` contains `println!` and `print!`; only the match
            // starting at the macro name itself counts.
            if pos > 0 && is_ident_byte(b[pos - 1]) {
                continue;
            }
            if scan::in_spans(&f.test_spans, pos) {
                continue;
            }
            push(
                out,
                f,
                Lint::AdHocPrint,
                pos,
                format!(
                    "`{needle}` in a library crate: diagnostics route through the \
                     structured `kmachine::trace` event stream (DESIGN.md §3.14); \
                     CLI front ends and sinks are allowlisted with a justification"
                ),
            );
        }
    }
}
