//! Diagnostic records and rustc-style rendering.

use std::fmt;

/// The six invariant lints (DESIGN.md §3.13).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lint {
    /// KC01 — unordered iteration over a hash container in a
    /// message-producing or accounting path.
    MapIter,
    /// KC02 — wall-clock / ambient-RNG use in deterministic paths.
    WallClock,
    /// KC03 — a `Payload` variant missing from a charge/codec arm, or a
    /// wildcard arm hiding such a gap.
    Exhaustive,
    /// KC04 — an envelope charge using raw `wire_bits(l)` instead of
    /// `wire_bits_lw(l, lw)`.
    ChargeSite,
    /// KC05 — `unwrap`/`expect`/slice-indexing in transport worker and
    /// window-protocol paths.
    PanicHygiene,
    /// KC06 — ad-hoc `println!`/`eprintln!`/`dbg!` in library crates;
    /// diagnostics route through `kmachine::trace` instead.
    AdHocPrint,
}

impl Lint {
    /// Stable short code, used in output and in `kcheck.allow`.
    pub fn code(self) -> &'static str {
        match self {
            Lint::MapIter => "KC01",
            Lint::WallClock => "KC02",
            Lint::Exhaustive => "KC03",
            Lint::ChargeSite => "KC04",
            Lint::PanicHygiene => "KC05",
            Lint::AdHocPrint => "KC06",
        }
    }

    /// Human name for the summary table.
    pub fn name(self) -> &'static str {
        match self {
            Lint::MapIter => "deterministic-iteration",
            Lint::WallClock => "wall-clock-and-rng",
            Lint::Exhaustive => "payload-exhaustiveness",
            Lint::ChargeSite => "charge-site-discipline",
            Lint::PanicHygiene => "panic-hygiene",
            Lint::AdHocPrint => "ad-hoc-print",
        }
    }
}

/// One finding: lint, location, message, and the offending source line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what the sanctioned route is.
    pub message: String,
    /// The original (un-blanked) source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.lint.code(), self.message)?;
        writeln!(f, "  --> {}:{}", self.file, self.line)?;
        writeln!(f, "   |")?;
        writeln!(f, "   | {}", self.snippet)
    }
}
