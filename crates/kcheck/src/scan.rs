//! Lexical groundwork: source *blanking* and span utilities.
//!
//! The pass is dependency-free (no `syn` in an offline workspace), so every
//! lint works on a *blanked* copy of the source: comments (line, nested
//! block, doc), string literals (plain, raw, byte), and char literals are
//! replaced character-for-character with spaces, newlines preserved. On the
//! blanked text, naive substring and brace matching become sound: a `{` is
//! a real brace, `.unwrap()` inside a doc-comment example no longer exists,
//! and `"HashMap"` in a log message cannot trip the determinism lint.
//! Diagnostics still quote the *original* line, so what the user sees (and
//! what `kcheck.allow` needles match against) is real code.

/// Blank comments and literal contents from `src`.
///
/// The output has exactly the same length and line structure as the input;
/// every character belonging to a comment, or to the interior of a string /
/// char literal, becomes a space (newlines are kept so line numbers agree).
/// The delimiting quotes of string/char literals are kept, which keeps
/// patterns like `.expect(` recognizable as `.expect("` in the original.
pub fn blank(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment (covers `//`, `///`, `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# (any hash count).
        if c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            let start = if c == b'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0usize;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = j < b.len() && b[j] == b'"' && !prev_is_ident(b, i);
            if is_raw {
                // Emit the prefix (`r`, optional `b`, hashes, opening quote).
                out.extend(std::iter::repeat_n(b'"', j + 1 - i));
                i = j + 1;
                // Blank until closing quote followed by `hashes` hashes.
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == b'"' {
                        let mut h = 0usize;
                        while i + 1 + h < b.len() && b[i + 1 + h] == b'#' && h < hashes {
                            h += 1;
                        }
                        if h == hashes {
                            out.extend(std::iter::repeat_n(b'"', hashes + 1));
                            i += 1 + hashes;
                            break;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                continue;
            }
        }
        // Plain / byte string.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_is_ident(b, i)) {
            if c == b'b' {
                out.push(b'"');
                i += 1;
            }
            out.push(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                }
                out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime. A literal is `'` followed by an escape,
        // or by one char and a closing `'` (`b'x'` handled via the plain
        // path since `b` is pushed through as an ident char otherwise).
        if c == b'\'' {
            let is_char_lit = i + 1 < b.len()
                && (b[i + 1] == b'\\'
                    || (i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\''));
            if is_char_lit {
                out.push(b'\'');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == b'\'' {
                        out.push(b'\'');
                        i += 1;
                        break;
                    }
                    out.push(b' ');
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // Blanking only ever substitutes ASCII for ASCII, so the output is as
    // valid UTF-8 as the input was.
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(b[i - 1])
}

/// Is `c` a character that can appear in a Rust identifier?
pub fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Byte offset → 1-based line number.
pub fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// The full original text of the 1-based line `line`.
pub fn line_text(src: &str, line: usize) -> &str {
    src.lines().nth(line.saturating_sub(1)).unwrap_or("")
}

/// Find `needle` in `hay[from..]` at an identifier boundary on both sides
/// (the char before and after the match, if any, is not an ident char).
pub fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let hb = hay.as_bytes();
    let mut at = from;
    while let Some(rel) = hay.get(at..)?.find(needle) {
        let pos = at + rel;
        let ok_before = pos == 0 || !is_ident_byte(hb[pos - 1]);
        let end = pos + needle.len();
        let ok_after = end >= hb.len() || !is_ident_byte(hb[end]);
        if ok_before && ok_after {
            return Some(pos);
        }
        at = pos + 1;
    }
    None
}

/// Given the offset of a `{` in blanked text, the offset one past its
/// matching `}` (or `len` if unbalanced).
pub fn match_brace(blanked: &str, open: usize) -> usize {
    let b = blanked.as_bytes();
    debug_assert_eq!(b.get(open), Some(&b'{'));
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Byte spans of test-gated items (their `#[cfg(..)]` attribute through
/// the closing brace of the following braced item). Lints skip hits
/// inside. Matches any cfg attribute whose predicate names `test` as a
/// word — `#[cfg(test)]`, but also composites like
/// `#[cfg(all(test, not(miri)))]`. String contents are already blanked,
/// so a feature name containing "test" cannot match.
pub fn test_spans(blanked: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 0;
    while let Some(pos) = next_test_cfg(blanked, at) {
        let after = blanked[pos..]
            .find(']')
            .map_or(blanked.len(), |r| pos + r + 1);
        match blanked[after..].find('{') {
            Some(brel) => {
                let open = after + brel;
                let end = match_brace(blanked, open);
                spans.push((pos, end));
                at = end;
            }
            None => {
                spans.push((pos, blanked.len()));
                break;
            }
        }
    }
    spans
}

/// Offset of the next `#[cfg(...)]` at or after `at` whose predicate
/// (the text up to the attribute's closing `]`) contains `test` as a
/// word, or `None`.
fn next_test_cfg(blanked: &str, mut at: usize) -> Option<usize> {
    while let Some(rel) = blanked.get(at..)?.find("#[cfg(") {
        let pos = at + rel;
        let pred_start = pos + "#[cfg(".len();
        let pred_end = blanked[pred_start..]
            .find(']')
            .map_or(blanked.len(), |r| pred_start + r);
        let pred = &blanked[pred_start..pred_end];
        let mut from = 0;
        while let Some(w) = find_word(pred, "test", from) {
            // A negated atom (`not(test)`) gates *live* code — skip it.
            if !pred[..w].trim_end().ends_with("not(") {
                return Some(pos);
            }
            from = w + 1;
        }
        at = pred_end.max(pos + 1);
    }
    None
}

/// Is `offset` inside any of `spans`?
pub fn in_spans(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Find the body `{ ... }` of `fn <name>` inside `blanked[scope]`,
/// returning absolute `(body_start, body_end)` offsets (exclusive of the
/// braces themselves). `scope` lets callers restrict the search to a
/// particular `impl` block when the fn name is ambiguous file-wide.
pub fn fn_body(blanked: &str, name: &str, scope: (usize, usize)) -> Option<(usize, usize)> {
    let (lo, hi) = scope;
    let region = &blanked[lo..hi];
    let pat = format!("fn {name}");
    let pos = find_word(region, &pat, 0)?;
    let open_rel = region[pos..].find('{')?;
    let open = lo + pos + open_rel;
    let end = match_brace(blanked, open);
    Some((open + 1, end.saturating_sub(1)))
}

/// Find the span of `impl <header> {` whose header line contains
/// `header_needle`, returning the absolute body span.
pub fn impl_body(blanked: &str, header_needle: &str) -> Option<(usize, usize)> {
    let mut at = 0;
    while let Some(rel) = blanked[at..].find("impl") {
        let pos = at + rel;
        let b = blanked.as_bytes();
        let boundary = (pos == 0 || !is_ident_byte(b[pos - 1]))
            && !is_ident_byte(*b.get(pos + 4).unwrap_or(&b' '));
        if boundary {
            if let Some(open_rel) = blanked[pos..].find('{') {
                let header = &blanked[pos..pos + open_rel];
                if header.contains(header_needle) {
                    let open = pos + open_rel;
                    let end = match_brace(blanked, open);
                    return Some((open + 1, end.saturating_sub(1)));
                }
            }
        }
        at = pos + 4;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_preserves_length_and_lines() {
        let src = "let s = \"Hash//Map {\"; // trailing { comment\nlet c = '{';\n/* multi\nline */ let x = 1;\n";
        let out = blank(src);
        assert_eq!(out.len(), src.len());
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("comment"));
        // The only remaining brace-ish chars are real code (none here).
        assert!(!out.contains('{'));
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> usize { r#\"un } wrap\"#.len() }";
        let out = blank(src);
        assert!(out.contains("fn f<'a>(x: &'a str)"));
        assert!(!out.contains("wrap"));
        let open = out.find('{').unwrap();
        assert_eq!(match_brace(&out, open), out.len());
    }

    #[test]
    fn doc_comment_code_is_invisible() {
        let src = "/// `map.iter()` then `.unwrap()`\nfn g() {}\n";
        let out = blank(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("fn g()"));
    }

    #[test]
    fn test_spans_cover_test_mods() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let out = blank(src);
        let spans = test_spans(&out);
        assert_eq!(spans.len(), 1);
        let live = out.find("x.unwrap").unwrap();
        let test = out.find("y.unwrap").unwrap();
        assert!(!in_spans(&spans, live));
        assert!(in_spans(&spans, test));
    }

    #[test]
    fn test_spans_cover_composite_cfgs_but_not_negations() {
        let src = "#[cfg(all(test, not(miri)))]\nmod conf { fn t() { a.unwrap(); } }\n\
                   #[cfg(not(test))]\nmod live { fn l() { b.unwrap(); } }\n\
                   #[cfg(feature = \"proc-tests\")]\nmod feat { fn f() { c.unwrap(); } }\n";
        let out = blank(src);
        let spans = test_spans(&out);
        assert_eq!(spans.len(), 1, "only the all(test, ..) item is a test span");
        assert!(in_spans(&spans, out.find("a.unwrap").unwrap()));
        assert!(!in_spans(&spans, out.find("b.unwrap").unwrap()));
        assert!(!in_spans(&spans, out.find("c.unwrap").unwrap()));
    }

    #[test]
    fn fn_and_impl_bodies_resolve() {
        let src = "impl Alpha { fn go(&self) { 1 } }\nimpl Wire for Alpha { fn go(&self) { 2 } }\n";
        let out = blank(src);
        let a = impl_body(&out, "impl Alpha").unwrap();
        let w = impl_body(&out, "Wire for Alpha").unwrap();
        let (s1, e1) = fn_body(&out, "go", a).unwrap();
        let (s2, e2) = fn_body(&out, "go", w).unwrap();
        assert!(out[s1..e1].contains('1'));
        assert!(out[s2..e2].contains('2'));
    }

    #[test]
    fn find_word_respects_boundaries() {
        let hay = "FloodLabels Flag Flagged";
        assert_eq!(find_word(hay, "Flag", 0), Some(12));
        assert_eq!(find_word(hay, "Flagged", 0), Some(17));
        assert_eq!(find_word(hay, "Flo", 0), None);
    }
}
