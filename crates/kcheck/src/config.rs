//! Lint scopes: which files each invariant governs.
//!
//! Scopes are workspace-relative, `/`-separated path *prefixes* (a full
//! file path is also a valid prefix). The walker already excludes
//! `target/`, `vendor/`, `.git/` and any `tests/`, `benches/`, `examples/`
//! or `fixtures/` directory, so scopes here only carve up live library and
//! binary code.

/// One function that must pattern-match every variant of a watched enum.
#[derive(Clone, Debug)]
pub struct ArmSpec {
    /// Needle identifying the surrounding `impl` block header (e.g.
    /// `"WireCodec for Payload"`); empty means search the whole file.
    pub impl_needle: String,
    /// Function name inside that impl.
    pub fn_name: String,
    /// Whether a `_ =>` arm is tolerated (only the decode direction, whose
    /// input is an untrusted numeric tag, may have an unknown-tag arm).
    pub allow_wildcard: bool,
}

/// A cross-file exhaustiveness obligation: every variant of `enum_name`
/// (defined in `file`) must appear as `EnumName::Variant` inside each of
/// the listed function bodies.
#[derive(Clone, Debug)]
pub struct ExhaustiveSpec {
    /// File defining the enum (and, today, all its match sites).
    pub file: String,
    /// The enum's name.
    pub enum_name: String,
    /// The functions that must each name every variant.
    pub arms: Vec<ArmSpec>,
}

/// Full lint configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// KC01/KC02 scope: message-producing and accounting paths.
    pub det_scope: Vec<String>,
    /// Files exempt from KC01 (the sanctioned sorted-iteration helpers —
    /// they necessarily iterate the containers they canonicalize).
    pub det_exempt: Vec<String>,
    /// KC03 obligations.
    pub exhaustive: Vec<ExhaustiveSpec>,
    /// KC04 scope: crates whose envelope charges must price label fields
    /// at the live contracted width.
    pub charge_scope: Vec<String>,
    /// Files exempt from KC04 (the definitions of the charge functions).
    pub charge_exempt: Vec<String>,
    /// KC05 unwrap/expect scope: transport worker + window-protocol paths.
    pub unwrap_scope: Vec<String>,
    /// KC05 slice-indexing scope (tighter: the frame/wire handling file).
    pub index_scope: Vec<String>,
    /// KC06 scope: library crates where ad-hoc `println!`-family macros are
    /// banned in favour of `kmachine::trace` (CLI front ends and trace
    /// sinks go through the allowlist).
    pub print_scope: Vec<String>,
}

fn owned(v: &[&str]) -> Vec<String> {
    v.iter().map(std::string::ToString::to_string).collect()
}

impl Config {
    /// The live workspace configuration (see DESIGN.md §3.13 for the
    /// rationale behind each scope line).
    pub fn workspace() -> Config {
        Config {
            det_scope: owned(&[
                "crates/core/src",
                "crates/kmachine/src",
                "crates/kgraph/src",
                "crates/ksketch/src",
                "crates/krand/src",
            ]),
            det_exempt: owned(&["crates/kmachine/src/det.rs"]),
            exhaustive: vec![ExhaustiveSpec {
                file: "crates/core/src/messages.rs".into(),
                enum_name: "Payload".into(),
                arms: vec![
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "wire_bits_lw".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "tag_index".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "BatchWire for Payload".into(),
                        fn_name: "batch_wire_bits".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "WireCodec for Payload".into(),
                        fn_name: "encode".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "WireCodec for Payload".into(),
                        fn_name: "decode".into(),
                        // decode consumes an untrusted numeric tag; its
                        // `_ =>` arm is the unknown-tag error path.
                        allow_wildcard: true,
                    },
                ],
            }],
            charge_scope: owned(&["crates/core/src"]),
            charge_exempt: owned(&["crates/core/src/messages.rs"]),
            unwrap_scope: owned(&[
                "crates/kmachine/src/transport.rs",
                "crates/kmachine/src/bsp.rs",
                "crates/kmachine/src/link.rs",
                "crates/kmachine/src/network.rs",
                "crates/kmachine/src/par.rs",
            ]),
            index_scope: owned(&["crates/kmachine/src/transport.rs"]),
            print_scope: owned(&[
                "crates/core/src",
                "crates/kmachine/src",
                "crates/kgraph/src",
                "crates/ksketch/src",
                "crates/krand/src",
                "crates/kbench/src",
                "crates/kcheck/src",
            ]),
        }
    }

    /// Does `path` fall under any prefix in `scope`?
    pub fn in_scope(scope: &[String], path: &str) -> bool {
        scope.iter().any(|p| {
            path == p
                || (path.starts_with(p.as_str()) && path.as_bytes().get(p.len()) == Some(&b'/'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_component_wise() {
        let scope = vec!["crates/core/src".to_string()];
        assert!(Config::in_scope(&scope, "crates/core/src/engine.rs"));
        assert!(Config::in_scope(&scope, "crates/core/src"));
        assert!(!Config::in_scope(&scope, "crates/core/srcish/x.rs"));
        assert!(!Config::in_scope(&scope, "crates/kbench/src/lib.rs"));
    }
}
