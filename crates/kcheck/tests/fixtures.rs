//! Fixture-corpus tests: every known-bad snippet under `tests/fixtures/`
//! is flagged with the expected lint code, and every known-good twin comes
//! back clean. A final test pins the *live* workspace to zero violations —
//! the same gate `kmm check` enforces in CI.

use std::path::{Path, PathBuf};

use kcheck::{
    check_files, check_workspace, collect_files, Allowlist, ArmSpec, Config, ExhaustiveSpec, Lint,
};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The fixture corpus gets its own scope map: directory names under
/// `tests/fixtures/` stand in for the workspace paths the live config uses.
fn fixture_config() -> Config {
    let owned = |v: &[&str]| {
        v.iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<String>>()
    };
    Config {
        det_scope: owned(&["det"]),
        det_exempt: vec![],
        exhaustive: vec![
            ExhaustiveSpec {
                file: "payload/bad_messages.rs".into(),
                enum_name: "Payload".into(),
                arms: vec![
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "wire_bits_lw".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "tag_index".into(),
                        allow_wildcard: false,
                    },
                ],
            },
            ExhaustiveSpec {
                file: "payload/good_messages.rs".into(),
                enum_name: "Payload".into(),
                arms: vec![
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "wire_bits_lw".into(),
                        allow_wildcard: false,
                    },
                    ArmSpec {
                        impl_needle: "impl Payload".into(),
                        fn_name: "decode".into(),
                        allow_wildcard: true,
                    },
                ],
            },
        ],
        charge_scope: owned(&["charge"]),
        charge_exempt: vec![],
        unwrap_scope: owned(&["transport"]),
        index_scope: owned(&["transport"]),
        print_scope: owned(&["print"]),
    }
}

fn codes_for<'r>(report: &'r kcheck::Report, file: &str) -> Vec<&'r str> {
    report
        .diags
        .iter()
        .filter(|d| d.file == file)
        .map(|d| d.lint.code())
        .collect()
}

#[test]
fn bad_fixtures_are_flagged_and_good_twins_pass() {
    let files = collect_files(&fixtures_root()).expect("fixture corpus readable");
    assert!(files.len() >= 10, "fixture corpus went missing");
    let report = check_files(&files, &fixture_config(), &Allowlist::default());

    // Known-bad: each seeded violation is caught with its code.
    let kc01 = codes_for(&report, "det/bad_iter.rs");
    assert!(
        kc01.len() >= 5 && kc01.iter().all(|&c| c == "KC01"),
        "det/bad_iter.rs: want >= 5 KC01 (iter, set-collect, bare for, \
         multi-line chain, type alias), got {kc01:?}"
    );
    let kc02 = codes_for(&report, "det/bad_clock.rs");
    assert!(
        kc02.len() >= 3 && kc02.iter().all(|&c| c == "KC02"),
        "det/bad_clock.rs: want >= 3 KC02 (Instant, SystemTime, thread_rng), got {kc02:?}"
    );
    let kc03 = codes_for(&report, "payload/bad_messages.rs");
    assert!(
        kc03.len() >= 2 && kc03.iter().all(|&c| c == "KC03"),
        "payload/bad_messages.rs: want >= 2 KC03 (missing Stop arm, \
         forbidden wildcard), got {kc03:?}"
    );
    let missing_stop = report
        .diags
        .iter()
        .any(|d| d.file == "payload/bad_messages.rs" && d.message.contains("Stop"));
    assert!(missing_stop, "the missing `Stop` arm is called out by name");
    let kc04 = codes_for(&report, "charge/bad_charge.rs");
    assert_eq!(kc04, vec!["KC04"], "charge/bad_charge.rs");
    let kc05 = codes_for(&report, "transport/bad_panic.rs");
    assert!(
        kc05.len() >= 4 && kc05.iter().all(|&c| c == "KC05"),
        "transport/bad_panic.rs: want >= 4 KC05 (two indexings, unwrap, \
         expect), got {kc05:?}"
    );
    let kc06 = codes_for(&report, "print/bad_print.rs");
    assert!(
        kc06.len() >= 5 && kc06.iter().all(|&c| c == "KC06"),
        "print/bad_print.rs: want >= 5 KC06 (println, eprintln, print, \
         eprint, dbg), got {kc06:?}"
    );

    // Known-good twins: not a single diagnostic.
    for good in [
        "det/good_iter.rs",
        "det/good_clock.rs",
        "payload/good_messages.rs",
        "charge/good_charge.rs",
        "transport/good_panic.rs",
        "print/good_print.rs",
    ] {
        let got = codes_for(&report, good);
        assert!(got.is_empty(), "{good}: good twin flagged: {got:?}");
    }
}

#[test]
fn diagnostics_carry_file_line_and_snippet() {
    let files = collect_files(&fixtures_root()).expect("fixture corpus readable");
    let report = check_files(&files, &fixture_config(), &Allowlist::default());
    let d = report
        .diags
        .iter()
        .find(|d| d.file == "charge/bad_charge.rs")
        .expect("KC04 diagnostic present");
    assert_eq!(d.lint, Lint::ChargeSite);
    assert_eq!(d.line, 5);
    assert!(
        d.snippet.contains(".wire_bits(l)"),
        "snippet: {}",
        d.snippet
    );
    let rendered = d.to_string();
    assert!(
        rendered.contains("error[KC04]") && rendered.contains("charge/bad_charge.rs:5"),
        "rustc-style rendering: {rendered}"
    );
}

#[test]
fn allowlist_suppresses_matches_and_reports_stale_entries() {
    let files = collect_files(&fixtures_root()).expect("fixture corpus readable");
    let cfg = fixture_config();
    let baseline = check_files(&files, &cfg, &Allowlist::default()).diags.len();

    let allow = Allowlist::parse(concat!(
        "# fixture allowlist\n",
        "KC04 charge/bad_charge.rs \".wire_bits(l)\" -- fixture: audited raw charge\n",
        "KC01 det/bad_iter.rs \"no.such.needle()\" -- fixture: matches nothing\n",
    ))
    .expect("well-formed allowlist parses");
    let report = check_files(&files, &cfg, &allow);

    assert_eq!(report.suppressed, 1, "exactly the KC04 entry fires");
    assert_eq!(report.diags.len(), baseline - 1);
    assert!(!codes_for(&report, "charge/bad_charge.rs").contains(&"KC04"));
    assert_eq!(report.stale_allow.len(), 1, "the dead needle is stale");
    assert_eq!(report.stale_allow[0].file, "det/bad_iter.rs");
    assert!(!report.clean(), "stale entries keep the run red");
}

#[test]
fn walker_never_lints_fixture_or_test_trees() {
    // Rooted at the crate, the walker must skip `tests/` (and thus the
    // deliberately-bad corpus): a live `kmm check` run can never trip on it.
    let files = collect_files(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("crate readable");
    assert!(
        files
            .iter()
            .all(|f| !f.rel.contains("fixtures/") && !f.rel.starts_with("tests/")),
        "fixture corpus leaked into a live scan"
    );
    assert!(
        files.iter().any(|f| f.rel == "src/lints.rs"),
        "crate sources are scanned"
    );
}

#[test]
fn live_workspace_is_clean_under_its_own_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "workspace root located");
    let report = check_workspace(&root, &Config::workspace(), &root.join("kcheck.allow"))
        .expect("workspace scan succeeds");
    let rendered: Vec<String> = report
        .diags
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    assert!(
        report.clean(),
        "live workspace must check clean (stale allow entries: {}):\n{}",
        report.stale_allow.len(),
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 40,
        "the scan saw the whole workspace"
    );
}
