//! KC04 good twin: charges price label fields at the live contracted
//! width; the zero-argument `WireSize::wire_bits()` form is a different
//! trait and stays legal.

pub fn charge(payload: &Payload, l: u32, lw: u32) -> u64 {
    payload.wire_bits_lw(l, lw)
}

pub fn frame_size(frame: &Frame) -> u64 {
    frame.wire_bits()
}
