//! KC04 fixture: an envelope charged at the raw label width instead of the
//! live contracted width.

pub fn charge(payload: &Payload, l: u32) -> u64 {
    payload.wire_bits(l)
}
