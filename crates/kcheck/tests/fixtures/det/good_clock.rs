//! KC02 good twin: time derives from the superstep counter and randomness
//! from the seeded shared-randomness machinery — no ambient sources.

pub fn stamp(superstep: u64) -> u64 {
    superstep
}

pub fn jitter(seed: u64, round: u64) -> u64 {
    // "Instant::now()" inside a string literal is blanked before linting.
    let _doc = "never call Instant::now() here";
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(round as u32)
}
