//! KC02 fixture: wall-clock reads and ambient RNG on a deterministic path.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_ms() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_millis() as u64).unwrap_or(0)
}

pub fn jitter() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
