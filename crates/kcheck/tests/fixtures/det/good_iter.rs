//! KC01 good twin: the same shapes as `bad_iter.rs`, routed through the
//! sanctioned `kmachine::det` helpers (or inside `#[cfg(test)]`, where
//! iteration order is the test's own business).

use kmachine::det;
use rustc_hash::{FxHashMap, FxHashSet};

pub fn spray(outbox: &mut Vec<(u64, u64)>, loads: &FxHashMap<u64, u64>) {
    for (k, v) in det::sorted_entries(loads) {
        outbox.push((k, *v));
    }
}

pub fn members(set: &FxHashSet<u32>) -> Vec<u32> {
    det::sorted_members(set)
}

pub fn peak(loads: &FxHashMap<u64, u64>) -> u64 {
    det::max_value(loads).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use rustc_hash::FxHashMap;

    #[test]
    fn tests_iterate_freely() {
        let m: FxHashMap<u64, u64> = FxHashMap::default();
        for (_k, _v) in m.iter() {
            // exempt: #[cfg(test)] items are outside the lint's scope
        }
    }
}
