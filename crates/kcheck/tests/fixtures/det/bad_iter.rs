//! KC01 fixture: every iteration below is an unordered hash walk on what
//! the fixture config declares a deterministic path. Never compiled — the
//! linter reads it as text.

use rustc_hash::{FxHashMap, FxHashSet};

type Loads = FxHashMap<u64, u64>;

pub fn spray(outbox: &mut Vec<(u64, u64)>, loads: &FxHashMap<u64, u64>) {
    for (&k, &v) in loads.iter() {
        outbox.push((k, v));
    }
}

pub fn members(set: &FxHashSet<u32>) -> Vec<u32> {
    set.iter().copied().collect()
}

pub fn bare_for(set: &FxHashSet<u32>) -> u64 {
    let mut acc = 0u64;
    for v in set {
        acc += u64::from(*v);
    }
    acc
}

pub fn chained(loads: &FxHashMap<u64, u64>) -> u64 {
    loads
        .values()
        .sum()
}

pub fn via_alias(loads: &Loads) -> Vec<u64> {
    loads.keys().copied().collect()
}
