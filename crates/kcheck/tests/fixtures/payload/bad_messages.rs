//! KC03 fixture: `Stop` has no charge arm, and `tag_index` hides future
//! variants behind a wildcard where none is allowed.

pub enum Payload {
    Ping { x: u64 },
    Pong { y: u64 },
    Stop,
}

impl Payload {
    pub fn wire_bits_lw(&self, _l: u32, _lw: u32) -> u64 {
        match self {
            Payload::Ping { .. } => 1,
            Payload::Pong { .. } => 2,
        }
    }

    pub fn tag_index(&self) -> u8 {
        match self {
            Payload::Ping { .. } => 0,
            _ => 9,
        }
    }
}
