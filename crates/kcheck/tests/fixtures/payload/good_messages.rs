//! KC03 good twin: every variant named in every watched arm; the only
//! wildcard lives in `decode`, where the spec allows it (unknown-tag path).

pub enum Payload {
    Ping { x: u64 },
    Pong { y: u64 },
    Stop,
}

impl Payload {
    pub fn wire_bits_lw(&self, _l: u32, _lw: u32) -> u64 {
        match self {
            Payload::Ping { .. } => 1,
            Payload::Pong { .. } => 2,
            Payload::Stop => 0,
        }
    }

    pub fn decode(tag: u8) -> Option<Payload> {
        match tag {
            0 => Some(Payload::Ping { x: 0 }),
            1 => Some(Payload::Pong { y: 0 }),
            2 => Some(Payload::Stop),
            _ => None,
        }
    }
}
