//! KC05 good twin: the same operations, written to degrade into protocol
//! errors instead of panics.

pub fn parse(body: &[u8]) -> Option<(u8, Vec<u8>)> {
    body.split_first().map(|(&kind, rest)| (kind, rest.to_vec()))
}

pub fn take(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn need(v: Option<u32>) -> Option<u32> {
    v
}

pub fn nth(body: &[u8], i: usize) -> Option<u8> {
    body.get(i).copied()
}
