//! KC05 fixture: panicking unwraps and slice indexing on a frame-handling
//! path.

pub fn parse(body: &[u8]) -> (u8, Vec<u8>) {
    (body[0], body[1..].to_vec())
}

pub fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn need(v: Option<u32>) -> u32 {
    v.expect("present")
}
