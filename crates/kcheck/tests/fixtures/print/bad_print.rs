//! KC06 fixture: ad-hoc print-family macros in library code.

pub fn solve(rounds: u64) -> u64 {
    println!("starting with {rounds} rounds");
    let doubled = rounds * 2;
    eprintln!("debug: doubled = {doubled}");
    print!("progress.");
    eprint!("warn.");
    let peeked = dbg!(doubled + 1);
    peeked
}
