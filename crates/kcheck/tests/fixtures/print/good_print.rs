//! KC06 good twin: diagnostics routed through the trace layer or an
//! explicit writer handed in by the caller; prints confined to tests.

use std::io::Write;

pub fn solve<W: Write>(rounds: u64, log: &mut W) -> u64 {
    let doubled = rounds * 2;
    let _ = writeln!(log, "doubled = {doubled}");
    // Identifier suffixes must not trip the needle scan.
    let reprint = doubled + 1;
    let pretty_println = reprint;
    pretty_println
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("test scaffolding may print");
        assert_eq!(super::solve(2, &mut Vec::new()), 5);
    }
}
