//! E13 bench: the §4 two-party SCS simulation on the Figure-1 gadget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kconn::lowerbound::{simulate_scs_two_party, DisjointnessInstance};
use kconn::ConnectivityConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_two_party_scs(c: &mut Criterion) {
    let cfg = ConnectivityConfig::default();
    let mut group = c.benchmark_group("two_party_scs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3));
    for b_len in [128usize, 512] {
        let inst = DisjointnessInstance::random(b_len, 300, b_len as u64, Some(true));
        group.bench_with_input(BenchmarkId::from_parameter(b_len), &b_len, |b, _| {
            b.iter(|| {
                let r = simulate_scs_two_party(black_box(&inst), 8, 41, &cfg);
                assert!(r.verdict);
                r.cut_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_party_scs);
criterion_main!(benches);
