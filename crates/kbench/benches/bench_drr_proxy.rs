//! E4/E5 bench: proxy routing and DRR merging on the adversarial path
//! workload (where chain formation would hurt without DRR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kconn::{connected_components, ConnectivityConfig};
use kgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_path_merging(c: &mut Criterion) {
    let cfg = ConnectivityConfig::default();
    let mut group = c.benchmark_group("drr_on_paths");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3));
    for n in [1024usize, 4096] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = connected_components(black_box(&g), 8, 51, &cfg);
                assert_eq!(out.component_count(), 1);
                // The quantity Lemma 6 bounds:
                out.drr_depths.iter().copied().max().unwrap_or(0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_merging);
criterion_main!(benches);
