//! E11 bench: Theorem-4 verification problems.

use criterion::{criterion_group, criterion_main, Criterion};
use kconn::{verify, ConnectivityConfig};
use kgraph::generators;
use rustc_hash::FxHashSet;
use std::hint::black_box;
use std::time::Duration;

fn bench_verification(c: &mut Criterion) {
    let n = 1024;
    let g = generators::random_connected(n, n / 2, 31);
    let cfg = ConnectivityConfig::default();
    let all: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let e0 = g.edges()[0];
    let mut group = c.benchmark_group("verification");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("spanning_connected_subgraph", |b| {
        b.iter(|| verify::spanning_connected_subgraph(black_box(&g), &all, 8, 32, &cfg).holds);
    });
    group.bench_function("st_connectivity", |b| {
        b.iter(|| verify::st_connectivity(black_box(&g), 0, (n - 1) as u32, 8, 33, &cfg).holds);
    });
    group.bench_function("cut_verification", |b| {
        let mut cut = FxHashSet::default();
        cut.insert((e0.u, e0.v));
        b.iter(|| verify::cut_verification(black_box(&g), &cut, 8, 34, &cfg).holds);
    });
    group.bench_function("bipartiteness", |b| {
        b.iter(|| verify::bipartiteness(black_box(&g), 8, 35, &cfg).holds);
    });
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
