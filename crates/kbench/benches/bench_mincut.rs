//! E10 bench: the Theorem-3 min-cut approximation (geometric sampling +
//! connectivity probes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kconn::{approx_min_cut, MinCutConfig};
use kgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincut_approx");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(4));
    for bridges in [1usize, 4, 16] {
        let g = generators::barbell(64, bridges, 1, 7);
        group.bench_with_input(BenchmarkId::from_parameter(bridges), &bridges, |b, _| {
            b.iter(|| approx_min_cut(black_box(&g), 8, 9, &MinCutConfig::default()).estimate);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mincut);
criterion_main!(benches);
