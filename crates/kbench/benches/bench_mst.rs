//! E7/E8 bench: sketch-based MST (Theorem 2) under both output criteria.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kconn::{minimum_spanning_tree, MstConfig, OutputCriterion};
use kgraph::{generators, refalgo};
use std::hint::black_box;
use std::time::Duration;

fn bench_mst_vs_k(c: &mut Criterion) {
    let n = 1024;
    let g = generators::randomize_weights(&generators::gnm(n, 4 * n, 71), 1_000_000, 72);
    let expect = refalgo::forest_weight(&refalgo::kruskal(&g));
    let cfg = MstConfig::default();
    let mut group = c.benchmark_group("mst_vs_k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let out = minimum_spanning_tree(black_box(&g), k, 73, &cfg);
                assert_eq!(out.total_weight, expect);
                out.stats.rounds
            });
        });
    }
    group.finish();
}

fn bench_mst_output_criteria(c: &mut Criterion) {
    let n = 1024;
    let g = generators::randomize_weights(&generators::star(n), 1000, 81);
    let mut group = c.benchmark_group("mst_output_criterion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (name, criterion) in [
        ("any_machine", OutputCriterion::AnyMachine),
        ("both_endpoints", OutputCriterion::BothEndpoints),
    ] {
        let cfg = MstConfig {
            criterion,
            ..MstConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                minimum_spanning_tree(black_box(&g), 8, 82, &cfg)
                    .stats
                    .rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst_vs_k, bench_mst_output_criteria);
criterion_main!(benches);
