//! E2/E3/E9 bench: the baselines against the sketch algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use kconn::baselines::edge_boruvka::{edge_boruvka_mst_mode, CheckMode};
use kconn::baselines::flooding::flooding_connectivity;
use kconn::baselines::referee::referee_connectivity;
use kconn::baselines::rep_mst::rep_mst;
use kconn::{connected_components, ConnectivityConfig, MstConfig};
use kgraph::generators;
use kmachine::bandwidth::Bandwidth;
use std::hint::black_box;
use std::time::Duration;

fn bench_connectivity_baselines(c: &mut Criterion) {
    let n = 2048;
    let g = generators::gnm(n, 3 * n, 21);
    let mut group = c.benchmark_group("connectivity_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sketch", |b| {
        b.iter(|| {
            connected_components(black_box(&g), 8, 5, &ConnectivityConfig::default())
                .stats
                .rounds
        });
    });
    group.bench_function("flooding", |b| {
        b.iter(|| {
            flooding_connectivity(black_box(&g), 8, 5, Bandwidth::default())
                .stats
                .rounds
        });
    });
    group.bench_function("referee", |b| {
        b.iter(|| {
            referee_connectivity(black_box(&g), 8, 5, Bandwidth::default())
                .stats
                .rounds
        });
    });
    group.finish();
}

fn bench_mst_baselines(c: &mut Criterion) {
    let n = 512;
    let g = generators::randomize_weights(&generators::gnm(n, 8 * n, 23), 100_000, 24);
    let mut group = c.benchmark_group("mst_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sketch", |b| {
        b.iter(|| {
            kconn::minimum_spanning_tree(black_box(&g), 8, 5, &MstConfig::default())
                .stats
                .rounds
        });
    });
    group.bench_function("ghs_batched", |b| {
        b.iter(|| {
            edge_boruvka_mst_mode(
                black_box(&g),
                8,
                5,
                Bandwidth::default(),
                CheckMode::BatchedPush,
            )
            .stats
            .rounds
        });
    });
    group.bench_function("ghs_per_edge", |b| {
        b.iter(|| {
            edge_boruvka_mst_mode(
                black_box(&g),
                8,
                5,
                Bandwidth::default(),
                CheckMode::PerEdgeTest,
            )
            .stats
            .rounds
        });
    });
    group.bench_function("rep_filtering", |b| {
        b.iter(|| {
            rep_mst(black_box(&g), 8, 5, &MstConfig::default())
                .mst
                .stats
                .rounds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_connectivity_baselines, bench_mst_baselines);
criterion_main!(benches);
