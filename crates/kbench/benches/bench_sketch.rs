//! Microbenches of the linear-sketch substrate (§2.3): building vertex
//! sketches, merging part sketches, and ℓ₀-sampling queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krand::shared::SharedRandomness;
use ksketch::{L0Sketch, SketchFns, SketchParams};
use std::hint::black_box;
use std::time::Duration;

fn setup(n: usize, reps: u32) -> (SketchParams, SketchFns) {
    let params = SketchParams::for_graph(n, reps);
    let fns = SketchFns::new(&SharedRandomness::new(7), 1, params);
    (params, fns)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_build_per_degree");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let n = 1 << 16;
    let (params, fns) = setup(n, 5);
    for deg in [8usize, 64, 512] {
        let neighbors: Vec<u32> = (0..deg as u32).map(|i| 1000 + i).collect();
        group.bench_with_input(BenchmarkId::from_parameter(deg), &deg, |b, _| {
            b.iter(|| {
                let mut s = L0Sketch::new(params);
                for &nb in &neighbors {
                    s.add_incident_edge(&fns, black_box(5), nb);
                }
                s
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let n = 1 << 16;
    let (params, fns) = setup(n, 5);
    let mut parts = Vec::new();
    for p in 0..64u32 {
        let mut s = L0Sketch::new(params);
        for i in 0..16u32 {
            s.add_incident_edge(&fns, p * 16 + i, 60_000 + i);
        }
        parts.push(s);
    }
    c.bench_function("sketch_merge_64_parts", |b| {
        b.iter(|| {
            let mut acc = L0Sketch::new(params);
            for s in &parts {
                acc.merge(black_box(s));
            }
            acc
        });
    });
}

fn bench_query(c: &mut Criterion) {
    let n = 1 << 16;
    let (params, fns) = setup(n, 5);
    let mut group = c.benchmark_group("sketch_query_per_support");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for support in [1usize, 32, 1024] {
        let mut s = L0Sketch::new(params);
        for i in 0..support as u32 {
            s.add_incident_edge(&fns, 3, 10_000 + i);
        }
        group.bench_with_input(BenchmarkId::from_parameter(support), &support, |b, _| {
            b.iter(|| black_box(&s).query(&fns));
        });
    }
    group.finish();
}

fn bench_fns_derivation(c: &mut Criterion) {
    // Per-phase hash-function setup (includes the fingerprint tables).
    c.bench_function("sketch_fns_setup_n65536", |b| {
        let params = SketchParams::for_graph(1 << 16, 5);
        let shared = SharedRandomness::new(9);
        let mut phase = 0u32;
        b.iter(|| {
            phase = phase.wrapping_add(1);
            SketchFns::new(black_box(&shared), phase, params)
        });
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_merge,
    bench_query,
    bench_fns_derivation
);
criterion_main!(benches);
