//! E1 bench: the O~(n/k²) connectivity algorithm across machine counts.
//!
//! Criterion measures wall-clock simulation time; the model-round data for
//! EXPERIMENTS.md comes from the `tables` binary. Each iteration runs the
//! full distributed algorithm and asserts correctness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kconn::{connected_components, ConnectivityConfig};
use kgraph::{generators, refalgo};
use std::hint::black_box;
use std::time::Duration;

fn bench_connectivity_vs_k(c: &mut Criterion) {
    let n = 2048;
    let g = generators::gnm(n, 4 * n, 11);
    let truth = refalgo::component_count(&g);
    let cfg = ConnectivityConfig::default();
    let mut group = c.benchmark_group("connectivity_vs_k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let out = connected_components(black_box(&g), k, 7, &cfg);
                assert_eq!(out.component_count(), truth);
                out.stats.rounds
            });
        });
    }
    group.finish();
}

fn bench_connectivity_vs_n(c: &mut Criterion) {
    let k = 8;
    let cfg = ConnectivityConfig::default();
    let mut group = c.benchmark_group("connectivity_vs_n");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for n in [512usize, 2048, 8192] {
        let g = generators::gnm(n, 4 * n, 13);
        let truth = refalgo::component_count(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = connected_components(black_box(&g), k, 7, &cfg);
                assert_eq!(out.component_count(), truth);
                out.stats.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity_vs_k, bench_connectivity_vs_n);
criterion_main!(benches);
