//! CI pin for the contraction/encoding ablation family (DESIGN.md §4,
//! E23): on the E20 streamed scenario ladder, every grid cell must return
//! the baseline answer bit-for-bit, every varint cell must carry the
//! matching naive cell's charge as its oracle, and the headline envelope
//! must hold — contracted + varint total bits ≤ 0.5× the uncontracted
//! naive baseline. The contracted path must also compose with the PR 5
//! chaos plans (checkpoints snapshot the supergraph, so faulted contracted
//! runs replay exactly). All measurements land in `results/BENCH_PR6.json`
//! so the bits trajectory of the PR is captured as an artifact.

use kbench::chaos::plans;
use kbench::contraction::measure;
use kbench::experiments::{records_to_json, ExperimentRecord};
use kbench::large::family;
use kconn::session::{Connectivity, Problem};
use kconn::ConnectivityConfig;
use kmachine::message::Encoding;

#[test]
fn contraction_ablations_hold_the_bits_envelope_and_compose_with_chaos() {
    let mut records: Vec<ExperimentRecord> = Vec::new();

    // ---- The E20 rung: the 2×2 ablation grid on the streamed family. ----
    let s = &family(true)[0]; // n = 50_000, k = 16
    let ms = measure(&s.cluster());
    let baseline = &ms[0];
    for m in &ms {
        assert!(
            m.identical,
            "{}/{}: answers diverged from the baseline cell",
            s.id, m.cell
        );
        records.push(m.record("BENCH_PR6", s));
    }
    // The naive cells charge exactly their oracle, and each varint cell
    // carries the matching naive cell's charge (same trajectory, same
    // per-message sum — encoding is accounting-only).
    assert_eq!(ms[0].total_bits, ms[0].naive_bits, "baseline oracle");
    assert_eq!(ms[1].total_bits, ms[1].naive_bits, "contract-cell oracle");
    assert_eq!(ms[2].naive_bits, ms[0].total_bits, "varint vs baseline");
    assert_eq!(
        ms[3].naive_bits, ms[1].total_bits,
        "contract+varint vs contract"
    );
    // The headline envelope: contraction + varint at least halves the bits.
    let both = ms
        .iter()
        .find(|m| m.cell == "contract+varint")
        .expect("grid cell");
    assert!(
        both.bits_ratio(baseline) <= 0.5,
        "{}: contract+varint bits {} exceed 0.5× the naive baseline {}",
        s.id,
        both.total_bits,
        baseline.total_bits
    );
    // Each knob alone must already win (the grid is monotone on E20).
    for cell in ["contract", "varint"] {
        let m = ms.iter().find(|m| m.cell == cell).expect("grid cell");
        assert!(
            m.total_bits < baseline.total_bits,
            "{}/{cell}: {} bits vs baseline {}",
            s.id,
            m.total_bits,
            baseline.total_bits
        );
    }

    // ---- Chaos composition: contract+varint under every PR 5 plan. ----
    let (n, k, seed) = (1200usize, 8usize, 1207u64);
    let g = kgraph::generators::planted_components(n, 4, 3, seed ^ 0xCAB0);
    let cluster = kconn::session::Cluster::builder(k)
        .seed(seed)
        .ingest_graph(&g);
    let cfg = ConnectivityConfig {
        contract: true,
        encoding: Encoding::Varint,
        ..ConnectivityConfig::default()
    };
    let clean = cluster.run(Connectivity::with(cfg.clone()));
    for (plan_name, plan) in plans(k, seed) {
        let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
            faults: Some(plan),
            ..cfg.clone()
        }));
        assert_eq!(
            faulted.output.labels, clean.output.labels,
            "chaos/{plan_name}: contracted labels must replay exactly"
        );
        assert!(
            faulted.report.faults_injected > 0,
            "chaos/{plan_name}: plan never fired"
        );
        assert_eq!(
            faulted.report.stats.total_bits - faulted.report.stats.retransmit_bits,
            clean.report.stats.total_bits,
            "chaos/{plan_name}: recovery bits must separate exactly"
        );
        records.push(ExperimentRecord {
            experiment: "BENCH_PR6".into(),
            label: format!("chaos/{plan_name}/n{n}/k{k}/contract+varint"),
            params: [("n".to_string(), n as f64), ("k".to_string(), k as f64)]
                .into_iter()
                .collect(),
            metrics: [
                (
                    "clean_bits".to_string(),
                    clean.report.stats.total_bits as f64,
                ),
                (
                    "faulted_bits".to_string(),
                    faulted.report.stats.total_bits as f64,
                ),
                (
                    "retransmit_bits".to_string(),
                    faulted.report.stats.retransmit_bits as f64,
                ),
                (
                    "recovery_rounds".to_string(),
                    faulted.report.stats.recovery_rounds as f64,
                ),
                (
                    "faults_injected".to_string(),
                    faulted.report.faults_injected as f64,
                ),
            ]
            .into_iter()
            .collect(),
        });
    }

    // The snapshot lands in the repo-root results/ directory (gitignored;
    // created on a fresh checkout), alongside the earlier PR snapshots.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let out = dir.join("BENCH_PR6.json");
    std::fs::write(&out, records_to_json(&records))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
}
