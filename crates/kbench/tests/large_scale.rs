//! CI pin for the large-scale streamed scenario family (DESIGN.md §4,
//! E20): the 10^6-edge scenario must ingest through the streaming path,
//! balance its shards within the `O(m/k + Δ)` bound, and drive a real
//! distributed algorithm end to end — all inside the normal test budget.

use kbench::large::{ci_scenario, family};
use kconn::session::{Connectivity, Flooding, Problem};
use kmachine::bandwidth::Bandwidth;

/// The streamed 10^6-edge scenario: ingest into one session cluster,
/// balance, and a full distributed connectivity answer (flooding — exact
/// and cheap at this scale) with no materialized `Graph` anywhere in the
/// pipeline.
#[test]
fn million_edge_scenario_streams_end_to_end() {
    let s = ci_scenario();
    assert!(s.m() >= 1_000_000, "scenario must carry ≥ 10^6 edges");
    assert_eq!(s.k, 64);
    let cluster = s.cluster();
    let sg = cluster.sharded();
    assert_eq!(sg.n(), s.n);
    assert_eq!(sg.m(), s.m());
    // Conservation: every edge stored at exactly its two endpoint homes.
    assert_eq!(sg.total_half_edges(), 2 * s.m());
    // Balance: no shard holds more than a small constant times the fair
    // share 2m/k plus the max degree (the O(m/k + Δ) storage bound).
    let fair = 2 * s.m() / s.k;
    let delta = sg.max_degree();
    for (i, load) in sg.shard_loads().into_iter().enumerate() {
        assert!(
            load <= 3 * fair + 2 * delta,
            "shard {i} holds {load} half-edges vs fair share {fair} (Δ = {delta})"
        );
    }
    // End to end: the input is connected by construction; a distributed
    // algorithm over the shards must agree.
    let run = cluster.run(Flooding::with(Bandwidth::default()));
    assert_eq!(run.output.component_count(), 1);
    assert!(run.report.stats.rounds > 0);
}

/// The sketch-based headliner runs on a streamed cluster too (mid-size
/// rung so the debug-mode hashing work stays in budget).
#[test]
fn streamed_cluster_drives_sketch_connectivity() {
    let s = &family(true)[0]; // n = 50_000, k = 16
    let run = s.cluster().run(Connectivity::default());
    assert_eq!(run.output.component_count(), 1, "{}: connected input", s.id);
    assert!(run.report.stats.rounds > 0);
    assert!(
        run.report.sketch_cache_hits > 0,
        "large multi-phase runs must hit the part-sketch cache"
    );
}
