//! CI pin for the large-scale streamed scenario family (DESIGN.md §4,
//! E20): the 10^6-edge scenario must ingest through the streaming path,
//! balance its shards within the `O(m/k + Δ)` bound, and drive a real
//! distributed algorithm end to end — all inside the normal test budget.

use kbench::large::{ci_scenario, family};
use kconn::baselines::flooding::flooding_sharded;
use kconn::connectivity::{connected_components_sharded, ConnectivityConfig};
use kmachine::bandwidth::Bandwidth;

/// The streamed 10^6-edge scenario: ingest, balance, and a full distributed
/// connectivity answer (flooding — exact and cheap at this scale) with no
/// materialized `Graph` anywhere in the pipeline.
#[test]
fn million_edge_scenario_streams_end_to_end() {
    let s = ci_scenario();
    assert!(s.m() >= 1_000_000, "scenario must carry ≥ 10^6 edges");
    assert_eq!(s.k, 64);
    let sg = s.shard();
    assert_eq!(sg.n(), s.n);
    assert_eq!(sg.m(), s.m());
    // Conservation: every edge stored at exactly its two endpoint homes.
    assert_eq!(sg.total_half_edges(), 2 * s.m());
    // Balance: no shard holds more than a small constant times the fair
    // share 2m/k plus the max degree (the O(m/k + Δ) storage bound).
    let fair = 2 * s.m() / s.k;
    let delta = sg.max_degree();
    for (i, load) in sg.shard_loads().into_iter().enumerate() {
        assert!(
            load <= 3 * fair + 2 * delta,
            "shard {i} holds {load} half-edges vs fair share {fair} (Δ = {delta})"
        );
    }
    // End to end: the input is connected by construction; a distributed
    // algorithm over the shards must agree.
    let out = flooding_sharded(&sg, Bandwidth::default());
    assert_eq!(out.component_count(), 1);
    assert!(out.stats.rounds > 0);
}

/// The sketch-based headliner runs on a streamed shard too (mid-size rung
/// so the debug-mode hashing work stays in budget).
#[test]
fn streamed_shard_drives_sketch_connectivity() {
    let s = &family(true)[0]; // n = 50_000, k = 16
    let sg = s.shard();
    let out = connected_components_sharded(&sg, s.seed, &ConnectivityConfig::default());
    assert_eq!(out.component_count(), 1, "{}: connected input", s.id);
    assert!(out.stats.rounds > 0);
    assert!(
        out.sketch_cache_hits > 0,
        "large multi-phase runs must hit the part-sketch cache"
    );
}
