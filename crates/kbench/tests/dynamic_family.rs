//! CI pin for the dynamic scenario family (DESIGN.md §4, E21): every
//! update batch's incremental path — connectivity AND MST — must move
//! measurably fewer bits than a full re-ingest + re-solve of the mutated
//! edge set, and the measurements are written to `results/BENCH_PR4.json`
//! (connectivity) and `results/BENCH_PR10.json` (MST) so the bench
//! trajectory of each PR is captured as an artifact.

use kbench::dynamic::{family, measure, measure_mst};
use kbench::experiments::records_to_json;
use kconn::dynamic::RefreshKind;
use std::path::PathBuf;

/// Writes a perf snapshot into the repo-root results/ directory (the same
/// place the tables binary writes experiments.json). results/ is
/// gitignored, so it must be created on a fresh checkout.
fn write_snapshot(name: &str, records: &[kbench::ExperimentRecord]) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let out = dir.join(name);
    std::fs::write(&out, records_to_json(records))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
}

/// The headline claim of the dynamic subsystem, asserted per batch, plus
/// the perf snapshot the CI workflow uploads.
#[test]
fn incremental_updates_undercut_full_reingest_and_resolve() {
    let mut records = Vec::new();
    for s in family(true) {
        let measurements = measure(&s);
        assert!(!measurements.is_empty(), "{}: no batches measured", s.id);
        for m in &measurements {
            // The acceptance pin: a small batch's total communicated bits
            // (update routing + incremental re-solve + certification) must
            // sit strictly below re-shipping the graph and solving fresh.
            assert!(
                m.undercuts_full(),
                "{} batch {}: incremental {} bits !< full {} bits",
                s.id,
                m.batch,
                m.incremental_bits,
                m.full_bits
            );
            // The incremental path must actually *be* incremental: after
            // the warm base solve, batches take the restricted path (or
            // the free cached path), never a cold full re-solve.
            assert!(
                !matches!(m.refresh, RefreshKind::Full),
                "{} batch {}: fell back to a full refresh",
                s.id,
                m.batch
            );
            records.push(m.record("BENCH_PR4", &s));
        }
    }
    write_snapshot("BENCH_PR4.json", &records);
}

/// The MST twin of the pin above: the maintained-forest path (cycle
/// replacement / sketch replacement-search / restricted re-run +
/// certification) must undercut a full re-ingest + fresh static MST on
/// every batch of every profile — the same <1× ratio the connectivity
/// path achieves — and the snapshot lands in `results/BENCH_PR10.json`.
#[test]
fn incremental_mst_undercuts_full_reingest_and_resolve() {
    let mut records = Vec::new();
    for s in family(true) {
        let measurements = measure_mst(&s);
        assert!(!measurements.is_empty(), "{}: no batches measured", s.id);
        for m in &measurements {
            assert!(
                m.undercuts_full(),
                "{} batch {}: incremental MST {} bits !< full {} bits",
                s.id,
                m.batch,
                m.incremental_bits,
                m.full_bits
            );
            assert!(
                !matches!(m.refresh, RefreshKind::Full),
                "{} batch {}: MST fell back to a full refresh",
                s.id,
                m.batch
            );
            records.push(m.record("BENCH_PR10", &s));
        }
    }
    write_snapshot("BENCH_PR10.json", &records);
}
