//! CI pin for the chaos scenario family (DESIGN.md §4, E22): under every
//! seeded fault plan the headliner answers must be bit-identical to their
//! fault-free twins, the plans must demonstrably fire, and the recovery
//! overhead must stay inside a pinned bits/rounds envelope. The
//! measurements are written to `results/BENCH_PR5.json` so the recovery
//! cost trajectory of this PR is captured as an artifact.

use kbench::chaos::{family, measure};
use kbench::experiments::records_to_json;
use std::path::PathBuf;

#[test]
fn chaos_plans_are_masked_exactly_and_within_the_overhead_envelope() {
    let mut records = Vec::new();
    for s in family(true) {
        let measurements = measure(&s);
        assert!(!measurements.is_empty(), "{}: nothing measured", s.id);
        for m in &measurements {
            // The headline guarantee: recovery masks every fault exactly.
            assert!(
                m.identical,
                "{}/{}: faulted answers diverged from the fault-free run",
                s.id, m.algo
            );
            // The plan must actually fire, and its masking must be
            // reported — an accidentally inert plan would pin nothing.
            assert!(
                m.faults_injected > 0,
                "{}/{}: plan never fired",
                s.id,
                m.algo
            );
            assert!(
                m.recovery_rounds > 0 || m.retransmit_bits > 0,
                "{}/{}: faults fired but no recovery cost was reported",
                s.id,
                m.algo
            );
            if s.plan_name == "one-crash-per-phase" {
                assert!(
                    m.machine_crashes > 0,
                    "{}/{}: no crash event fired",
                    s.id,
                    m.algo
                );
            }
            // The overhead envelope: with drop ≤ 0.25 the expected
            // retransmission overhead is ≈ p/(1−p) ≤ 1/3 of the base
            // bits, and dup ≤ 0.25 adds ≤ ~1/4; 75% leaves deterministic
            // headroom. Recovery rounds (ack exchanges + retransmission
            // windows + crash rollback) stay below the fault-free round
            // count for these plans.
            assert!(
                m.bits_overhead() <= 0.75,
                "{}/{}: retransmit bits {} exceed 75% of base bits {}",
                s.id,
                m.algo,
                m.retransmit_bits,
                m.base_bits
            );
            assert!(
                m.rounds_overhead() <= 1.0,
                "{}/{}: recovery rounds {} exceed base rounds {}",
                s.id,
                m.algo,
                m.recovery_rounds,
                m.base_rounds
            );
            records.push(m.record("BENCH_PR5", &s));
        }
    }
    // The snapshot lands in the repo-root results/ directory (the same
    // place the tables binary writes experiments.json). results/ is
    // gitignored, so it must be created on a fresh checkout.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let out = dir.join("BENCH_PR5.json");
    std::fs::write(&out, records_to_json(&records))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
}
