//! The transport backend comparison family (DESIGN.md §4, E24).
//!
//! Two measurement layers:
//!
//! * [`measure`] — the connectivity headliner on one shared ingested
//!   cluster, once per [`TransportSel`] backend. The logical answer and
//!   every logical [`kmachine::metrics::CommStats`] field must be
//!   bit-identical (the simulator is the accounting oracle; the process
//!   backend merely carries the same windows over real sockets), so the
//!   only honest differences are wall-clock.
//! * [`measure_wire`] — a seeded superstep workload driven straight
//!   through a [`ProcTransport`] mesh, recording the *physical* side the
//!   session API hides: frames, attempts, payload bytes on the wire —
//!   against the logical bits the model charged for the same traffic.
//!
//! `tests/bench_transport.rs` (repo root, where the worker binary is
//! reachable via `CARGO_BIN_EXE_kmm`) runs both on the E20 rung and writes
//! `results/BENCH_PR7.json`.

use crate::experiments::ExperimentRecord;
use crate::large::LargeScenario;
use kconn::session::{Cluster, Connectivity, Problem};
use kconn::ConnectivityConfig;
use kmachine::bandwidth::Bandwidth;
use kmachine::bsp::Bsp;
use kmachine::message::{Encoding, Envelope};
use kmachine::network::NetworkConfig;
use kmachine::transport::{ProcTransport, TransportSel};

/// One backend's run of the shared workload.
#[derive(Clone, Debug)]
pub struct BackendMeasurement {
    /// `"sim"` or `"proc"`.
    pub backend: &'static str,
    /// Whether labels and §2.6 count matched the sim baseline bit-for-bit.
    pub identical: bool,
    /// Rounds charged (must not depend on the backend).
    pub rounds: u64,
    /// Total bits charged under the engine's encoding.
    pub total_bits: u64,
    /// The per-message naive oracle accumulated alongside.
    pub naive_bits: u64,
    /// Borůvka-style phases executed.
    pub phases: u32,
    /// Wall-clock milliseconds — the only field allowed to differ.
    pub wall_ms: f64,
}

impl BackendMeasurement {
    /// Serializable record for `results/` snapshots.
    pub fn record(&self, experiment: &str, s: &LargeScenario) -> ExperimentRecord {
        ExperimentRecord {
            experiment: experiment.into(),
            label: format!("{}/{}", s.id, self.backend),
            params: [("n".to_string(), s.n as f64), ("k".to_string(), s.k as f64)]
                .into_iter()
                .collect(),
            metrics: [
                ("identical".to_string(), f64::from(u8::from(self.identical))),
                ("rounds".to_string(), self.rounds as f64),
                ("total_bits".to_string(), self.total_bits as f64),
                ("naive_bits".to_string(), self.naive_bits as f64),
                ("phases".to_string(), f64::from(self.phases)),
                ("wall_ms".to_string(), self.wall_ms),
            ]
            .into_iter()
            .collect(),
        }
    }
}

/// Runs the connectivity headliner once per backend on one shared
/// ingested cluster; `out[0]` is the sim baseline. The caller must have
/// made the worker executable resolvable (`set_worker_exe` /
/// `KMM_WORKER_EXE`) before asking for the proc cell.
pub fn measure(cluster: &Cluster) -> Vec<BackendMeasurement> {
    let mut out = Vec::new();
    let mut baseline = None;
    for sel in [TransportSel::Sim, TransportSel::Proc] {
        let cfg = ConnectivityConfig {
            transport: sel,
            ..ConnectivityConfig::default()
        };
        let t0 = std::time::Instant::now();
        let run = cluster.run(Connectivity::with(cfg));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let key = (run.output.labels.clone(), run.output.counted_components);
        let identical = match &baseline {
            None => {
                baseline = Some(key);
                true
            }
            Some(base) => *base == key,
        };
        out.push(BackendMeasurement {
            backend: sel.name(),
            identical,
            rounds: run.report.stats.rounds,
            total_bits: run.report.stats.total_bits,
            naive_bits: run.report.stats.naive_bits,
            phases: run.output.phases,
            wall_ms,
        });
    }
    out
}

/// Physical wire accounting of one seeded superstep workload pushed
/// through a [`ProcTransport`] mesh under the varint encoding.
#[derive(Clone, Debug)]
pub struct WireMeasurement {
    /// Bits the model charged for the workload (varint batch pricing).
    pub logical_bits: u64,
    /// The per-message naive oracle for the same trajectory.
    pub naive_bits: u64,
    /// Payload bytes that actually crossed the sockets.
    pub payload_bytes: u64,
    /// Frames handed to workers for delivery.
    pub frames_sent: u64,
    /// Delivery windows driven (one per superstep wave with traffic).
    pub windows: u64,
    /// Window attempts (> windows only when workers died mid-window).
    pub attempts: u64,
    /// Wall-clock milliseconds for the workload.
    pub wall_ms: f64,
}

impl WireMeasurement {
    /// Physical payload bytes per logical *charged* byte: how close the
    /// wire format tracks the model's own accounting (framing overhead
    /// keeps it above 1.0; batching keeps it bounded).
    pub fn bytes_per_charged_byte(&self) -> f64 {
        self.payload_bytes as f64 / (self.logical_bits as f64 / 8.0).max(1.0)
    }

    /// Serializable record for `results/` snapshots.
    pub fn record(&self, experiment: &str, label: &str, k: usize) -> ExperimentRecord {
        ExperimentRecord {
            experiment: experiment.into(),
            label: label.into(),
            params: [("k".to_string(), k as f64)].into_iter().collect(),
            metrics: [
                ("logical_bits".to_string(), self.logical_bits as f64),
                ("naive_bits".to_string(), self.naive_bits as f64),
                ("payload_bytes".to_string(), self.payload_bytes as f64),
                ("frames_sent".to_string(), self.frames_sent as f64),
                ("windows".to_string(), self.windows as f64),
                ("attempts".to_string(), self.attempts as f64),
                (
                    "bytes_per_charged_byte".to_string(),
                    self.bytes_per_charged_byte(),
                ),
                ("wall_ms".to_string(), self.wall_ms),
            ]
            .into_iter()
            .collect(),
        }
    }
}

/// Drives `supersteps` seeded batches of `u64` payloads through a
/// [`ProcTransport`] mesh and reads back both sides of the ledger. With
/// `processes` false the mesh runs thread-mode workers over the same
/// sockets and protocol — usable without a worker binary.
pub fn measure_wire(
    seed: u64,
    k: usize,
    supersteps: u64,
    batch_len: u64,
    processes: bool,
) -> WireMeasurement {
    let transport = if processes {
        ProcTransport::processes(k).expect("spawn worker processes")
    } else {
        ProcTransport::threads(k).expect("spawn thread mesh")
    };
    let mut cfg = NetworkConfig::new(k, Bandwidth::Bits(64), 256);
    cfg.encoding = Encoding::Varint;
    let mut bsp: Bsp<u64> = Bsp::new(cfg);
    bsp.set_transport(Box::new(transport));
    let prf = krand::prf::Prf::new(seed);
    let t0 = std::time::Instant::now();
    for step in 0..supersteps {
        let batch: Vec<Envelope<u64>> = (0..batch_len)
            .map(|i| {
                let src = prf.eval_mod(10, step * 10_000 + i, k as u64) as usize;
                let dst = prf.eval_mod(11, step * 10_000 + i, k as u64) as usize;
                Envelope::new(src, dst, prf.eval(12, step * 10_000 + i))
            })
            .collect();
        bsp.superstep(batch);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let phys = bsp.phys_stats().expect("transport installed").clone();
    let stats = bsp.into_stats();
    WireMeasurement {
        logical_bits: stats.total_bits,
        naive_bits: stats.naive_bits,
        payload_bytes: phys.payload_bytes,
        frames_sent: phys.frames_sent,
        windows: phys.windows,
        attempts: phys.attempts,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_probe_accounts_both_ledgers_on_a_thread_mesh() {
        let m = measure_wire(17, 4, 8, 40, false);
        assert!(m.logical_bits > 0, "workload must charge bits");
        assert!(
            m.naive_bits >= m.logical_bits,
            "varint charge must not exceed the naive oracle"
        );
        assert!(m.payload_bytes > 0, "bytes must actually cross the wire");
        assert!(m.frames_sent > 0);
        assert_eq!(
            m.windows, m.attempts,
            "a healthy mesh needs exactly one attempt per window"
        );
        // The wire format is the varint batch encoding plus fixed framing;
        // it must stay within an order of magnitude of the charged bits.
        assert!(
            m.bytes_per_charged_byte() < 10.0,
            "physical/logical ratio {} is implausible",
            m.bytes_per_charged_byte()
        );
    }

    #[test]
    fn wire_probe_is_deterministic_in_the_seed() {
        let a = measure_wire(23, 3, 6, 25, false);
        let b = measure_wire(23, 3, 6, 25, false);
        assert_eq!(a.logical_bits, b.logical_bits);
        assert_eq!(a.naive_bits, b.naive_bits);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        assert_eq!(a.frames_sent, b.frames_sent);
    }
}
