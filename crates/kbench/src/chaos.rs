//! The chaos scenario family (DESIGN.md §4, E22): seeded fault plans
//! replayed against the connectivity and spanning-forest headliners, with
//! every run compared bit-for-bit against its fault-free twin.
//!
//! The headline guarantee of the fault subsystem is *exactness*: under any
//! seeded [`FaultPlan`] the recovery machinery (per-superstep
//! ack/retransmit + phase checkpoints) masks every injected fault, so the
//! answers are identical to the fault-free run and the only difference is
//! the costed overhead (`retransmit_bits`, `recovery_rounds`). The
//! `tables` binary renders E22 from these measurements and
//! `tests/chaos_family.rs` pins the guarantee plus an overhead envelope,
//! writing the `BENCH_PR5.json` perf snapshot.

use crate::experiments::ExperimentRecord;
use kconn::session::{Cluster, Connectivity, Problem, SpanningForest};
use kconn::{ConnectivityConfig, MstConfig};
use kgraph::{generators, Graph};
use kmachine::fault::FaultPlan;

/// The adversarial plans of the chaos matrix, parameterized by the machine
/// count so crash events always name real machines. Names match the chaos
/// conformance suite (`tests/chaos.rs`).
pub fn plans(k: usize, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let mut crash = FaultPlan::new(seed ^ 0xC4A5).with_drop(0.02);
    // Roughly one crash per Borůvka phase: an engine phase spans at least
    // ~8 supersteps (sketch shipping, two probe exchanges, convergence
    // flags, pointer jumps, relabels), so events 8 supersteps apart land
    // in distinct phases.
    for j in 0..6u64 {
        crash = crash.with_crash((j as usize + 1) % k, 3 + 8 * j);
    }
    vec![
        ("drop-heavy", FaultPlan::new(seed ^ 0xD209).with_drop(0.25)),
        (
            "dup-reorder",
            FaultPlan::new(seed ^ 0xD0B0)
                .with_dup(0.25)
                .with_reorder(0.5)
                .with_delay(0.05),
        ),
        ("one-crash-per-phase", crash),
    ]
}

/// One chaos cell: a base workload plus one seeded fault plan.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// Human-readable id.
    pub id: String,
    /// Vertex count.
    pub n: usize,
    /// Machine count.
    pub k: usize,
    /// Master seed (partition + algorithm randomness).
    pub seed: u64,
    /// The plan's name in tables and ids.
    pub plan_name: &'static str,
    /// The injected plan.
    pub plan: FaultPlan,
}

impl ChaosScenario {
    /// The base graph: multi-component so both merge-heavy and settled
    /// phases occur (settled components exercise the sketch cache under
    /// rollback).
    pub fn base(&self) -> Graph {
        generators::planted_components(self.n, 4, 3, self.seed ^ 0xCAB0)
    }

    /// The base graph ingested once; fault-free and faulted runs share it.
    pub fn cluster(&self) -> Cluster {
        Cluster::builder(self.k)
            .seed(self.seed)
            .ingest_graph(&self.base())
    }
}

/// The chaos family: every plan × a couple of `(n, k)` shapes.
pub fn family(quick: bool) -> Vec<ChaosScenario> {
    let shapes: &[(usize, usize)] = if quick {
        &[(1200, 8)]
    } else {
        &[(1200, 8), (6000, 16)]
    };
    let mut out = Vec::new();
    for &(n, k) in shapes {
        let seed = 7 + n as u64;
        for (plan_name, plan) in plans(k, seed) {
            out.push(ChaosScenario {
                id: format!("chaos/{plan_name}/n{n}/k{k}"),
                n,
                k,
                seed,
                plan_name,
                plan,
            });
        }
    }
    out
}

/// One algorithm's fault-free vs faulted comparison on a chaos cell.
#[derive(Clone, Debug)]
pub struct ChaosMeasurement {
    /// The algorithm measured (`conn` or `st`).
    pub algo: &'static str,
    /// Whether the faulted outputs were bit-identical to the fault-free
    /// ones (labels + §2.6 count for `conn`; the forest edge list for
    /// `st`).
    pub identical: bool,
    /// Fault-free rounds.
    pub base_rounds: u64,
    /// Fault-free total bits.
    pub base_bits: u64,
    /// Rounds under the plan.
    pub faulted_rounds: u64,
    /// Total bits under the plan.
    pub faulted_bits: u64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Bits spent masking them.
    pub retransmit_bits: u64,
    /// Rounds spent masking them.
    pub recovery_rounds: u64,
    /// Crash events that fired.
    pub machine_crashes: u64,
}

impl ChaosMeasurement {
    /// Recovery bits overhead relative to the fault-free run.
    pub fn bits_overhead(&self) -> f64 {
        self.retransmit_bits as f64 / self.base_bits.max(1) as f64
    }

    /// Recovery rounds overhead relative to the fault-free run.
    pub fn rounds_overhead(&self) -> f64 {
        self.recovery_rounds as f64 / self.base_rounds.max(1) as f64
    }

    /// Serializable record for `results/` snapshots.
    pub fn record(&self, experiment: &str, s: &ChaosScenario) -> ExperimentRecord {
        ExperimentRecord {
            experiment: experiment.into(),
            label: format!("{}/{}", s.id, self.algo),
            params: [("n".to_string(), s.n as f64), ("k".to_string(), s.k as f64)]
                .into_iter()
                .collect(),
            metrics: [
                ("identical".to_string(), f64::from(u8::from(self.identical))),
                ("base_rounds".to_string(), self.base_rounds as f64),
                ("base_bits".to_string(), self.base_bits as f64),
                ("faulted_rounds".to_string(), self.faulted_rounds as f64),
                ("faulted_bits".to_string(), self.faulted_bits as f64),
                ("faults_injected".to_string(), self.faults_injected as f64),
                ("retransmit_bits".to_string(), self.retransmit_bits as f64),
                ("recovery_rounds".to_string(), self.recovery_rounds as f64),
                ("machine_crashes".to_string(), self.machine_crashes as f64),
            ]
            .into_iter()
            .collect(),
        }
    }
}

/// Runs connectivity and spanning forest on the cell, fault-free and under
/// the plan, on one shared ingested cluster.
pub fn measure(s: &ChaosScenario) -> Vec<ChaosMeasurement> {
    let cluster = s.cluster();
    let mut out = Vec::new();

    let clean_conn = cluster.run(Connectivity::with(ConnectivityConfig::default()));
    let fault_conn = cluster.run(Connectivity::with(ConnectivityConfig {
        faults: Some(s.plan.clone()),
        ..ConnectivityConfig::default()
    }));
    out.push(ChaosMeasurement {
        algo: "conn",
        identical: clean_conn.output.labels == fault_conn.output.labels
            && clean_conn.output.counted_components == fault_conn.output.counted_components,
        base_rounds: clean_conn.report.stats.rounds,
        base_bits: clean_conn.report.stats.total_bits,
        faulted_rounds: fault_conn.report.stats.rounds,
        faulted_bits: fault_conn.report.stats.total_bits,
        faults_injected: fault_conn.report.faults_injected,
        retransmit_bits: fault_conn.report.retransmit_bits,
        recovery_rounds: fault_conn.report.recovery_rounds,
        machine_crashes: fault_conn.report.stats.machine_crashes,
    });

    let clean_st = cluster.run(SpanningForest::with(MstConfig::default()));
    let fault_st = cluster.run(SpanningForest::with(MstConfig {
        faults: Some(s.plan.clone()),
        ..MstConfig::default()
    }));
    out.push(ChaosMeasurement {
        algo: "st",
        identical: clean_st.output.edges == fault_st.output.edges,
        base_rounds: clean_st.report.stats.rounds,
        base_bits: clean_st.report.stats.total_bits,
        faulted_rounds: fault_st.report.stats.rounds,
        faulted_bits: fault_st.report.stats.total_bits,
        faults_injected: fault_st.report.faults_injected,
        retransmit_bits: fault_st.report.retransmit_bits,
        recovery_rounds: fault_st.report.recovery_rounds,
        machine_crashes: fault_st.report.stats.machine_crashes,
    });
    out
}
