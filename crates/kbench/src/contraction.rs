//! The contraction/encoding ablation family (DESIGN.md §4, E23).
//!
//! Every cell runs the sketch-based connectivity headliner on one shared
//! ingested cluster under the four ablations of DESIGN.md §3.11 —
//! `{contract, no-contract} × {Encoding::Naive, Encoding::Varint}` — and
//! compares answers bit-for-bit against the uncontracted/naive baseline.
//! The headline guarantee is that both knobs are *observationally pure*:
//! contraction changes the communication pattern but not the answer, and
//! the encoding changes only the charged bits (every varint run carries
//! the per-message naive sum in [`kmachine::metrics::CommStats::naive_bits`]
//! as the oracle).
//! `tests/contraction_family.rs` pins the E20 bits envelope (contracted +
//! varint ≤ 0.5× the naive baseline) and writes `BENCH_PR6.json`.

use crate::experiments::ExperimentRecord;
use crate::large::LargeScenario;
use kconn::session::{Cluster, Connectivity, Problem};
use kconn::ConnectivityConfig;
use kmachine::message::Encoding;

/// One knob setting of the 2×2 ablation grid.
#[derive(Clone, Copy, Debug)]
pub struct AblationCell {
    /// Name used in ids, tables and records.
    pub name: &'static str,
    /// Phase-boundary supergraph contraction on/off.
    pub contract: bool,
    /// The wire encoding the superstep layer charges under.
    pub encoding: Encoding,
}

/// The full grid, baseline first (uncontracted, per-message naive charge —
/// bit-identical to the pre-§3.11 engine).
pub fn ablations() -> [AblationCell; 4] {
    [
        AblationCell {
            name: "baseline",
            contract: false,
            encoding: Encoding::Naive,
        },
        AblationCell {
            name: "contract",
            contract: true,
            encoding: Encoding::Naive,
        },
        AblationCell {
            name: "varint",
            contract: false,
            encoding: Encoding::Varint,
        },
        AblationCell {
            name: "contract+varint",
            contract: true,
            encoding: Encoding::Varint,
        },
    ]
}

impl AblationCell {
    /// The cell's connectivity config on top of the defaults.
    pub fn conn_cfg(&self) -> ConnectivityConfig {
        ConnectivityConfig {
            contract: self.contract,
            encoding: self.encoding,
            ..ConnectivityConfig::default()
        }
    }
}

/// One ablation cell's measurement against the shared baseline.
#[derive(Clone, Debug)]
pub struct ContractionMeasurement {
    /// The grid cell measured.
    pub cell: &'static str,
    /// Whether the outputs (labels + §2.6 count) were bit-identical to the
    /// baseline cell's.
    pub identical: bool,
    /// Rounds charged under this cell.
    pub rounds: u64,
    /// Total bits charged under this cell's encoding.
    pub total_bits: u64,
    /// The per-message naive oracle accumulated alongside.
    pub naive_bits: u64,
    /// The busiest link's bits.
    pub max_link_bits: u64,
    /// Borůvka-style phases executed.
    pub phases: u32,
    /// Wall-clock milliseconds for the run (simulator time, debug or
    /// release — comparable only within one process).
    pub wall_ms: f64,
}

impl ContractionMeasurement {
    /// This cell's charged bits relative to the baseline cell's.
    pub fn bits_ratio(&self, baseline: &ContractionMeasurement) -> f64 {
        self.total_bits as f64 / baseline.total_bits.max(1) as f64
    }

    /// Serializable record for `results/` snapshots.
    pub fn record(&self, experiment: &str, s: &LargeScenario) -> ExperimentRecord {
        ExperimentRecord {
            experiment: experiment.into(),
            label: format!("{}/{}", s.id, self.cell),
            params: [("n".to_string(), s.n as f64), ("k".to_string(), s.k as f64)]
                .into_iter()
                .collect(),
            metrics: [
                ("identical".to_string(), f64::from(u8::from(self.identical))),
                ("rounds".to_string(), self.rounds as f64),
                ("total_bits".to_string(), self.total_bits as f64),
                ("naive_bits".to_string(), self.naive_bits as f64),
                ("max_link_bits".to_string(), self.max_link_bits as f64),
                ("phases".to_string(), f64::from(self.phases)),
                ("wall_ms".to_string(), self.wall_ms),
            ]
            .into_iter()
            .collect(),
        }
    }
}

/// Runs the connectivity headliner under every grid cell on one shared
/// ingested cluster; `out[0]` is the baseline every other cell is compared
/// against.
pub fn measure(cluster: &Cluster) -> Vec<ContractionMeasurement> {
    let mut out: Vec<ContractionMeasurement> = Vec::new();
    let mut baseline = None;
    for cell in ablations() {
        let t0 = std::time::Instant::now();
        let run = cluster.run(Connectivity::with(cell.conn_cfg()));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let key = (run.output.labels.clone(), run.output.counted_components);
        let identical = match &baseline {
            None => {
                baseline = Some(key);
                true
            }
            Some(base) => *base == key,
        };
        out.push(ContractionMeasurement {
            cell: cell.name,
            identical,
            rounds: run.report.stats.rounds,
            total_bits: run.report.stats.total_bits,
            naive_bits: run.report.stats.naive_bits,
            max_link_bits: run.report.stats.max_link_bits,
            phases: run.output.phases,
            wall_ms,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_four_cells_baseline_first() {
        let grid = ablations();
        assert_eq!(grid[0].name, "baseline");
        assert!(!grid[0].contract);
        assert!(matches!(grid[0].encoding, Encoding::Naive));
        let mut seen: Vec<(bool, bool)> = grid
            .iter()
            .map(|c| (c.contract, matches!(c.encoding, Encoding::Varint)))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "the 2×2 grid must be exhaustive");
    }

    #[test]
    fn measure_reports_identical_answers_on_a_small_cell() {
        let s = LargeScenario {
            id: "test/contraction".into(),
            n: 600,
            extra: 900,
            k: 4,
            seed: 9,
        };
        let ms = measure(&s.cluster());
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.identical));
        // The naive oracle is encoding-independent on a fixed trajectory
        // pair: varint cells carry the matching naive cell's charge.
        assert_eq!(ms[0].total_bits, ms[0].naive_bits);
        assert_eq!(ms[2].naive_bits, ms[0].total_bits);
        assert_eq!(ms[3].naive_bits, ms[1].total_bits);
    }
}
