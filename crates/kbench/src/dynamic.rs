//! The dynamic-update scenario family (DESIGN.md §4, E21): insert-heavy,
//! delete-heavy, churn and reweight update streams replayed on a live
//! [`DynamicCluster`], with every batch measured twice — the incremental
//! path (update routing + restricted re-solve + certification) against the
//! static baseline (full re-ingestion + full re-solve of the mutated edge
//! set) — for both connectivity ([`measure`]) and MST maintenance
//! ([`measure_mst`]). The `tables` binary renders E21 from these
//! measurements and `tests/dynamic_family.rs` pins the headline claim
//! (incremental ≪ full) and writes the `BENCH_PR4.json` /
//! `BENCH_PR10.json` perf snapshots.

use kconn::dynamic::{DynConfig, DynamicCluster, RefreshKind, UpdateBatch, UpdateOp};
use kconn::session::{Cluster, Connectivity, Mst, Problem};
use kconn::{ConnectivityConfig, MstConfig};
use kgraph::{generators, Graph};
use krand::prf::Prf;
use rustc_hash::FxHashSet;

/// The update mix of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// ~7/8 insertions: components coalesce.
    InsertHeavy,
    /// ~7/8 deletions: components fragment.
    DeleteHeavy,
    /// Even mix.
    Churn,
    /// Every op deletes a live edge and re-inserts it at a fresh weight
    /// inside the same batch: connectivity is untouched, MST churns.
    Reweight,
}

impl Profile {
    /// Short name for ids and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::InsertHeavy => "insert-heavy",
            Profile::DeleteHeavy => "delete-heavy",
            Profile::Churn => "churn",
            Profile::Reweight => "reweight",
        }
    }

    /// Insertions out of 8 ops, in expectation.
    fn insert_octile(&self) -> u64 {
        match self {
            Profile::InsertHeavy => 7,
            Profile::DeleteHeavy => 1,
            Profile::Churn => 4,
            Profile::Reweight => 0, // unused: reweight ops are paired directly
        }
    }
}

/// One dynamic scenario: a planted multi-component base graph (so touched
/// regions are genuinely smaller than the graph) plus a deterministic
/// update stream.
#[derive(Clone, Debug)]
pub struct DynScenario {
    /// Human-readable id.
    pub id: String,
    /// Vertex count.
    pub n: usize,
    /// Planted components in the base graph.
    pub parts: usize,
    /// Machine count.
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// The update mix.
    pub profile: Profile,
    /// Batches in the stream.
    pub batches: usize,
    /// Ops per batch.
    pub batch_ops: usize,
}

impl DynScenario {
    fn new(profile: Profile, n: usize, k: usize, seed: u64, batches: usize, ops: usize) -> Self {
        DynScenario {
            id: format!("dyn/{}/n{n}/k{k}/seed{seed}", profile.name()),
            n,
            parts: 8,
            k,
            seed,
            profile,
            batches,
            batch_ops: ops,
        }
    }

    /// The base graph (before any update).
    pub fn base(&self) -> Graph {
        generators::planted_components(self.n, self.parts, 3, self.seed ^ 0xD15C)
    }

    /// The base graph wrapped into a live cluster.
    pub fn dynamic(&self) -> DynamicCluster {
        let cluster = Cluster::builder(self.k)
            .seed(self.seed)
            .ingest_graph(&self.base());
        DynamicCluster::wrap(cluster, DynConfig::default())
    }

    /// The deterministic update stream: every batch is valid when applied
    /// in sequence (the generator mirrors the evolving edge set), and ops
    /// are *localized* — each batch focuses on one component (with a dash
    /// of cross-component edges), the realistic churn shape that lets the
    /// incremental path re-solve a small region instead of the graph.
    pub fn trace(&self) -> Vec<UpdateBatch> {
        use kgraph::refalgo;
        let prf = Prf::new(self.seed ^ 0x0DDBA11);
        let g = self.base();
        let n = self.n as u64;
        let mut present: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let mut alive: Vec<(u32, u32)> = present.iter().copied().collect();
        alive.sort_unstable();
        let mut ctr = 0u64;
        let mut step = |m: u64| {
            ctr += 1;
            prf.eval_mod(0, ctr, m)
        };
        let mut out = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            // Label the evolving graph and pick this batch's focus
            // component (prefer one with enough room to churn in).
            let cur = kgraph::Graph::unweighted(self.n, alive.iter().copied());
            let comps = refalgo::connected_components(&cur);
            let mut focus = comps[step(n) as usize];
            for _ in 0..8 {
                if comps.iter().filter(|&&c| c == focus).count() >= 8 {
                    break;
                }
                focus = comps[step(n) as usize];
            }
            let members: Vec<u32> = (0..self.n as u32)
                .filter(|&v| comps[v as usize] == focus)
                .collect();
            let mut batch = UpdateBatch::new();
            for _ in 0..self.batch_ops {
                if self.profile == Profile::Reweight {
                    // Delete + re-insert a live edge (focus-preferred) at a
                    // fresh weight, inside the same batch.
                    if alive.is_empty() {
                        continue;
                    }
                    let in_focus: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|(_, &(u, _))| comps[u as usize] == focus)
                        .map(|(i, _)| i)
                        .collect();
                    let i = if in_focus.is_empty() {
                        step(alive.len() as u64) as usize
                    } else {
                        in_focus[step(in_focus.len() as u64) as usize]
                    };
                    let key = alive[i];
                    batch.push(UpdateOp::Delete { u: key.0, v: key.1 });
                    batch.push(UpdateOp::Insert {
                        u: key.0,
                        v: key.1,
                        w: 1 + step(1000),
                    });
                    continue;
                }
                let want_insert = step(8) < self.profile.insert_octile() || alive.is_empty();
                if want_insert {
                    // 3/4 of insertions stay inside the focus component;
                    // the rest bridge arbitrary pairs. Rejection-sample a
                    // non-edge with bounded tries (failure at these
                    // densities needs a near-clique focus).
                    let intra = step(4) < 3 && members.len() >= 2;
                    for _ in 0..64 {
                        let (u, v) = if intra {
                            (
                                members[step(members.len() as u64) as usize],
                                members[step(members.len() as u64) as usize],
                            )
                        } else {
                            (step(n) as u32, step(n) as u32)
                        };
                        if u == v {
                            continue;
                        }
                        let key = (u.min(v), u.max(v));
                        if present.insert(key) {
                            alive.push(key);
                            batch.push(UpdateOp::Insert {
                                u: key.0,
                                v: key.1,
                                w: 1 + step(1000),
                            });
                            break;
                        }
                    }
                } else {
                    // Prefer deleting inside the focus component.
                    let in_focus: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|(_, &(u, _))| comps[u as usize] == focus)
                        .map(|(i, _)| i)
                        .collect();
                    let i = if in_focus.is_empty() {
                        step(alive.len() as u64) as usize
                    } else {
                        in_focus[step(in_focus.len() as u64) as usize]
                    };
                    let key = alive.swap_remove(i);
                    present.remove(&key);
                    batch.push(UpdateOp::Delete { u: key.0, v: key.1 });
                }
            }
            out.push(batch);
        }
        out
    }
}

/// The scenario family: one scenario per profile. `quick` keeps the sizes
/// inside the debug-build test budget; the full family is what the
/// `tables` binary measures for E21.
pub fn family(quick: bool) -> Vec<DynScenario> {
    let (n, k, batches, ops) = if quick {
        (1200, 8, 3, 12)
    } else {
        (6000, 16, 4, 25)
    };
    vec![
        DynScenario::new(Profile::InsertHeavy, n, k, 3, batches, ops),
        DynScenario::new(Profile::DeleteHeavy, n, k, 5, batches, ops),
        DynScenario::new(Profile::Churn, n, k, 7, batches, ops),
        DynScenario::new(Profile::Reweight, n, k, 9, batches, ops),
    ]
}

/// One batch's cost comparison: the incremental path versus the full
/// re-ingest + re-solve baseline, on identical mutated edge sets.
#[derive(Clone, Debug)]
pub struct DynMeasurement {
    /// 1-based batch index.
    pub batch: usize,
    /// Ops the batch carried.
    pub ops: usize,
    /// Which path the incremental solve took.
    pub refresh: RefreshKind,
    /// Total bits of the incremental path: update routing + restricted
    /// re-solve + certification.
    pub incremental_bits: u64,
    /// Rounds of the incremental path.
    pub incremental_rounds: u64,
    /// Total bits of the baseline: re-shipping every edge to its homes
    /// plus a full static re-solve.
    pub full_bits: u64,
    /// Rounds of the baseline.
    pub full_rounds: u64,
    /// Post-batch component count (sanity anchor).
    pub components: usize,
}

impl DynMeasurement {
    /// The headline claim of the dynamic subsystem: the incremental path
    /// strictly undercuts full re-ingest + re-solve on communicated bits.
    pub fn undercuts_full(&self) -> bool {
        self.incremental_bits < self.full_bits
    }

    /// Full-over-incremental bit ratio (> 1 means the incremental path
    /// wins).
    pub fn ratio(&self) -> f64 {
        self.full_bits as f64 / self.incremental_bits.max(1) as f64
    }

    /// Short refresh-path name for tables.
    pub fn refresh_name(&self) -> String {
        match self.refresh {
            RefreshKind::Cached => "cached".into(),
            RefreshKind::Incremental { active_vertices } => format!("incr({active_vertices})"),
            RefreshKind::Full => "full".into(),
        }
    }

    /// The standard machine-readable record for this batch, shared by the
    /// E21 report and the `BENCH_PR4.json` snapshot so the two never
    /// drift.
    pub fn record(&self, experiment: &str, s: &DynScenario) -> crate::ExperimentRecord {
        let to_map = |kv: &[(&str, f64)]| {
            kv.iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<std::collections::BTreeMap<_, _>>()
        };
        crate::ExperimentRecord {
            experiment: experiment.into(),
            label: format!("{}/batch{}", s.id, self.batch),
            params: to_map(&[
                ("n", s.n as f64),
                ("k", s.k as f64),
                ("batch_ops", self.ops as f64),
            ]),
            metrics: to_map(&[
                ("incremental_bits", self.incremental_bits as f64),
                ("incremental_rounds", self.incremental_rounds as f64),
                ("full_bits", self.full_bits as f64),
                ("full_rounds", self.full_rounds as f64),
                ("ratio", self.ratio()),
                ("components", self.components as f64),
            ]),
        }
    }
}

/// Replays a scenario and measures every batch both ways. The incremental
/// and the baseline answers are bit-identical by the dynamic layer's
/// contract (pinned in `tests/dynamic.rs`); here only costs differ. Both
/// sides are charged the same workload: the baseline solve skips the §2.6
/// output protocol exactly like the incremental path does (which derives
/// the count from its maintained labels).
pub fn measure(s: &DynScenario) -> Vec<DynMeasurement> {
    let cfg = ConnectivityConfig {
        run_output_protocol: false,
        ..ConnectivityConfig::default()
    };
    let mut dc = s.dynamic();
    dc.connectivity(&cfg); // base solve: both paths start warm
    let mut out = Vec::new();
    for (i, batch) in s.trace().iter().enumerate() {
        let ops = batch.len();
        dc.apply(batch).expect("generated batches are valid");
        let run = dc.connectivity(&cfg);
        let refresh = dc.last_refresh();
        // Baseline on the *same* mutated shards: re-ingestion routing plus
        // a fresh static solve (bit-identical to ingesting the mutated
        // edge list into a new cluster, so the costs are comparable).
        let reingest = dc.full_reingest_stats();
        let fresh = dc.cluster().run(Connectivity::with(cfg.clone()));
        out.push(DynMeasurement {
            batch: i + 1,
            ops,
            refresh,
            incremental_bits: run.report.update_bits + run.report.stats.total_bits,
            incremental_rounds: run.report.update_rounds + run.report.stats.rounds,
            full_bits: reingest.total_bits + fresh.report.stats.total_bits,
            full_rounds: reingest.rounds + fresh.report.stats.rounds,
            components: run.output.component_count(),
        });
    }
    out
}

/// The MST column of E21: replays the same trace on its own cluster (so
/// update-routing bits are attributed once, not split with the
/// connectivity column) and costs every batch's incremental MST
/// maintenance (cycle replacement / sketch replacement-search / restricted
/// re-run + certification) against re-ingesting and solving MST fresh.
pub fn measure_mst(s: &DynScenario) -> Vec<DynMeasurement> {
    let cfg = MstConfig::default();
    let mut dc = s.dynamic();
    dc.mst(&cfg); // base solve: both paths start warm
    let mut out = Vec::new();
    for (i, batch) in s.trace().iter().enumerate() {
        let ops = batch.len();
        dc.apply(batch).expect("generated batches are valid");
        let run = dc.mst(&cfg);
        let refresh = dc.last_refresh();
        let reingest = dc.full_reingest_stats();
        let fresh = dc.cluster().run(Mst::with(cfg.clone()));
        debug_assert_eq!(run.output.edges, fresh.output.edges);
        out.push(DynMeasurement {
            batch: i + 1,
            ops,
            refresh,
            incremental_bits: run.report.update_bits + run.report.stats.total_bits,
            incremental_rounds: run.report.update_rounds + run.report.stats.rounds,
            full_bits: reingest.total_bits + fresh.report.stats.total_bits,
            full_rounds: reingest.rounds + fresh.report.stats.rounds,
            // A forest with |E| edges on n vertices spans n − |E| components.
            components: s.n - run.output.edges.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_profiled() {
        let s = &family(true)[0];
        let a = s.trace();
        let b = s.trace();
        assert_eq!(a.len(), s.batches);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops(), y.ops(), "trace must be deterministic");
        }
        let inserts: usize = a
            .iter()
            .flat_map(kconn::UpdateBatch::ops)
            .filter(|op| matches!(op, UpdateOp::Insert { .. }))
            .count();
        let total: usize = a.iter().map(kconn::UpdateBatch::len).sum();
        assert!(
            inserts * 8 >= total * 5,
            "insert-heavy profile must be mostly insertions ({inserts}/{total})"
        );
    }

    #[test]
    fn generated_batches_apply_cleanly() {
        for s in family(true) {
            let g = s.base();
            let mut edges = g.edges().to_vec();
            for batch in s.trace() {
                batch
                    .apply_to_edge_list(g.n(), &mut edges)
                    .unwrap_or_else(|e| panic!("{}: {e}", s.id));
            }
        }
    }
}
