//! The large-scale streamed scenario family (DESIGN.md §4, E20).
//!
//! Scenarios up to `n = 10^6` vertices and `k = 64` machines, ingested
//! end-to-end through the streaming path: a lazy
//! [`kgraph::stream::EdgeStream`] feeds [`kgraph::ShardedGraph`] directly,
//! so no `Vec<Edge>` of the whole graph ever exists — the regime the
//! central-storage design could not reach. The `tables` binary runs the
//! full family (E20); `tests/large_scale.rs` pins the 10^6-edge scenario
//! in CI.

use kconn::session::Cluster;
use kgraph::stream::DynEdgeStream;
use kgraph::{generators, ShardedGraph};

/// One large-scale streamed scenario.
#[derive(Clone, Debug)]
pub struct LargeScenario {
    /// Human-readable id.
    pub id: String,
    /// Vertex count.
    pub n: usize,
    /// Extra non-tree edges fed to `random_connected_stream` (so
    /// `m = n - 1 + extra`).
    pub extra: usize,
    /// Machine count.
    pub k: usize,
    /// Master seed.
    pub seed: u64,
}

impl LargeScenario {
    fn new(n: usize, extra: usize, k: usize, seed: u64) -> Self {
        LargeScenario {
            id: format!("stream/n{n}/m{}/k{k}/seed{seed}", n - 1 + extra),
            n,
            extra,
            k,
            seed,
        }
    }

    /// Total edges of the scenario graph.
    pub fn m(&self) -> usize {
        self.n - 1 + self.extra
    }

    /// The lazy edge stream (connected graph: tree + extras).
    pub fn stream(&self) -> DynEdgeStream {
        generators::random_connected_stream(self.n, self.extra, self.seed ^ 0x5CA1E)
    }

    /// Ingests the stream into sharded storage.
    pub fn shard(&self) -> ShardedGraph {
        ShardedGraph::from_stream(self.stream(), self.k, self.seed)
    }

    /// Ingests the stream into a reusable session [`Cluster`]: the shards
    /// are built once and any number of algorithms run against them
    /// (bit-identical to [`LargeScenario::shard`] + the `*_sharded` entry
    /// points, since builder and scenario share `(k, seed)`).
    pub fn cluster(&self) -> Cluster {
        Cluster::builder(self.k)
            .seed(self.seed)
            .ingest_stream(self.stream())
    }
}

/// The scenario family. `quick` keeps the ladder short of the top rung;
/// the full family climbs to `n = 10^6` vertices on `k = 64` machines.
pub fn family(quick: bool) -> Vec<LargeScenario> {
    let mut out = vec![
        LargeScenario::new(50_000, 75_000, 16, 3),
        LargeScenario::new(200_000, 300_000, 32, 5),
    ];
    if !quick {
        out.push(LargeScenario::new(1_000_000, 1_000_000, 64, 7));
    }
    out
}

/// The 10^6-edge scenario pinned by CI (`tests/large_scale.rs`): ~half a
/// million vertices, a million edges, 64 shards.
pub fn ci_scenario() -> LargeScenario {
    LargeScenario::new(500_000, 500_001, 64, 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_reaches_the_million_scale() {
        let full = family(false);
        assert!(full.iter().any(|s| s.n >= 1_000_000 && s.k >= 64));
        assert!(family(true).iter().all(|s| s.n < 1_000_000));
        assert!(ci_scenario().m() >= 1_000_000);
    }

    #[test]
    fn scenario_stream_matches_declared_size() {
        let s = &family(true)[0];
        let sg = s.shard();
        assert_eq!(sg.n(), s.n);
        assert_eq!(sg.m(), s.m());
        assert_eq!(sg.k(), s.k);
        assert_eq!(sg.total_half_edges(), 2 * s.m());
    }
}
