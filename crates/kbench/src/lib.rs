#![warn(missing_docs)]
//! Experiment harness: workload definitions and result records shared by
//! the `tables` binary (which regenerates every table/figure series of
//! DESIGN.md §4) and the Criterion benches.

pub mod chaos;
pub mod contraction;
pub mod dynamic;
pub mod experiments;
pub mod large;
pub mod table;
pub mod trace;
pub mod transport;

pub use chaos::ChaosScenario;
pub use dynamic::DynScenario;
pub use experiments::{run_all, run_experiment, ExperimentRecord};
pub use large::LargeScenario;
pub use table::Table;
