//! Regenerates every experiment table/figure series of the reproduction.
//!
//! Usage:
//!   tables [--quick] [E1 E7 ...]
//!
//! Prints markdown sections to stdout and writes raw data points to
//! `results/experiments.json`. EXPERIMENTS.md records the output of a full
//! (non-quick) run against the paper's predictions.

use kbench::experiments::{run_experiment, ALL_IDS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    println!("# k-machine reproduction — experiment report");
    println!(
        "\nmode: {} | experiments: {}\n",
        if quick { "quick" } else { "full" },
        if ids.is_empty() {
            "all".to_string()
        } else {
            ids.join(", ")
        }
    );

    let started = Instant::now();
    let run_ids: Vec<String> = if ids.is_empty() {
        ALL_IDS
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    } else {
        ids
    };

    let mut all_records = Vec::new();
    for id in &run_ids {
        let t = Instant::now();
        let out = run_experiment(id, quick)
            .unwrap_or_else(|| panic!("unknown experiment id {id:?}; known: {ALL_IDS:?}"));
        println!("{}", out.markdown);
        println!("_({} took {:.1?})_\n", id, t.elapsed());
        all_records.extend(out.records);
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let json = kbench::experiments::records_to_json(&all_records);
    std::fs::write("results/experiments.json", json).expect("write results");
    println!(
        "\nwrote {} records to results/experiments.json in {:.1?}",
        all_records.len(),
        started.elapsed()
    );
}
