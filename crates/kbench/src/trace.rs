//! The tracing overhead family (DESIGN.md §4, E25).
//!
//! The §3.14 trace layer promises to be an *observer*: tracing off must
//! cost nothing (emit sites take closures a disabled tracer never runs),
//! and tracing on must never perturb outputs or the logical ledger — the
//! only honest cost is wall-clock and the byte volume of the stream
//! itself. [`measure`] runs the connectivity headliner on one shared
//! ingested cluster three ways — tracing off, in-memory recording, and a
//! JSONL sink serializing every record — and captures, per mode, the
//! wall-clock, the logical event count and the JSONL byte volume.
//!
//! `tests/bench_trace.rs` (repo root) runs the family on the E20 rung,
//! asserts bit-identical answers and ledgers across modes, pins the wall
//! overhead envelope, and writes `results/BENCH_PR9.json`.

use crate::experiments::ExperimentRecord;
use crate::large::LargeScenario;
use kconn::session::{Cluster, Connectivity, Problem};
use kconn::ConnectivityConfig;
use kmachine::trace::{to_jsonl, JsonlSink, Tracer};

/// One tracing mode's run of the shared workload.
#[derive(Clone, Debug)]
pub struct TraceMeasurement {
    /// `"off"`, `"recording"` or `"jsonl-sink"`.
    pub mode: &'static str,
    /// Whether labels and §2.6 count matched the tracing-off baseline
    /// bit-for-bit.
    pub identical: bool,
    /// Rounds charged (must not depend on the tracer).
    pub rounds: u64,
    /// Total bits charged (must not depend on the tracer).
    pub total_bits: u64,
    /// Logical records the run emitted (`0` with tracing off).
    pub events: u64,
    /// JSONL byte volume of the logical stream (`0` with tracing off).
    pub trace_bytes: u64,
    /// Wall-clock milliseconds — the only cost tracing may add.
    pub wall_ms: f64,
}

impl TraceMeasurement {
    /// Serializable record for `results/` snapshots.
    pub fn record(&self, experiment: &str, s: &LargeScenario) -> ExperimentRecord {
        ExperimentRecord {
            experiment: experiment.into(),
            label: format!("{}/{}", s.id, self.mode),
            params: [("n".to_string(), s.n as f64), ("k".to_string(), s.k as f64)]
                .into_iter()
                .collect(),
            metrics: [
                ("identical".to_string(), f64::from(u8::from(self.identical))),
                ("rounds".to_string(), self.rounds as f64),
                ("total_bits".to_string(), self.total_bits as f64),
                ("events".to_string(), self.events as f64),
                ("trace_bytes".to_string(), self.trace_bytes as f64),
                ("wall_ms".to_string(), self.wall_ms),
            ]
            .into_iter()
            .collect(),
        }
    }
}

/// Runs the connectivity headliner once per tracing mode on one shared
/// ingested cluster; `out[0]` is the tracing-off baseline. The JSONL sink
/// serializes every record but writes to [`std::io::sink`] — the cost
/// measured is event construction + serialization, not the host's disk.
pub fn measure(cluster: &Cluster) -> Vec<TraceMeasurement> {
    type MakeTracer = fn() -> Tracer;
    let modes: [(&'static str, MakeTracer); 3] = [
        ("off", Tracer::off),
        ("recording", Tracer::recording),
        ("jsonl-sink", || {
            Tracer::to_sink(Box::new(JsonlSink::new(std::io::sink())))
        }),
    ];
    let mut out = Vec::new();
    let mut baseline = None;
    for (mode, make) in modes {
        let tracer = make();
        let cfg = ConnectivityConfig {
            trace: tracer.clone(),
            ..ConnectivityConfig::default()
        };
        let t0 = std::time::Instant::now();
        let run = cluster.run(Connectivity::with(cfg));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        tracer.flush();
        let key = (run.output.labels.clone(), run.output.counted_components);
        let identical = match &baseline {
            None => {
                baseline = Some(key);
                true
            }
            Some(base) => *base == key,
        };
        let jsonl = to_jsonl(&tracer.events());
        out.push(TraceMeasurement {
            mode,
            identical,
            rounds: run.report.stats.rounds,
            total_bits: run.report.stats.total_bits,
            events: tracer.logical_len(),
            trace_bytes: jsonl.len() as u64,
            wall_ms,
        });
    }
    out
}
