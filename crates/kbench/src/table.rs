//! Minimal markdown table builder for the experiment reports.

/// A markdown table under construction.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:>w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["k", "rounds"]);
        t.row(vec!["4".into(), "1000".into()]);
        t.row(vec!["16".into(), "62".into()]);
        let s = t.render();
        assert!(s.contains("| rounds |"));
        assert!(s.lines().count() == 4);
        assert!(s.lines().all(|l| l.starts_with('|')));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
