//! The experiment suite: one function per experiment id of DESIGN.md §4.
//!
//! Every experiment returns a human-readable markdown section plus
//! machine-readable records; the `tables` binary prints the former and
//! writes the latter to `results/experiments.json`. EXPERIMENTS.md records
//! paper-expectation vs measured output for each id.

use kconn::baselines::edge_boruvka::CheckMode;
use kconn::lowerbound::{simulate_scs_two_party, DisjointnessInstance};
use kconn::session::{
    Cluster, Connectivity, EdgeBoruvka, EdgeBoruvkaConfig, Flooding, MinCut, Mst, Problem, Referee,
    RepMst, SpanningForest,
};
use kconn::verify;
use kconn::{ConnectivityConfig, MstConfig, OutputCriterion};
use kgraph::{generators, mincut, refalgo, Graph};
use kmachine::bandwidth::Bandwidth;
use rustc_hash::FxHashSet;
use std::collections::BTreeMap;

use crate::table::Table;

/// One ingested session cluster per `(g, k, seed)` triple. Experiments that
/// compare algorithms run all of them against the same shards — ingestion
/// is paid once, and results are bit-identical to the one-shot entry
/// points.
fn cluster(g: &Graph, k: usize, seed: u64) -> Cluster {
    Cluster::builder(k).seed(seed).ingest_graph(g)
}

/// One measured data point, serialized into `results/experiments.json`.
#[derive(Clone, Debug)]
pub struct ExperimentRecord {
    /// Experiment id (E1..E16).
    pub experiment: String,
    /// Row label within the experiment.
    pub label: String,
    /// Input parameters.
    pub params: BTreeMap<String, f64>,
    /// Measured metrics.
    pub metrics: BTreeMap<String, f64>,
}

fn record(
    experiment: &str,
    label: &str,
    params: &[(&str, f64)],
    metrics: &[(&str, f64)],
) -> ExperimentRecord {
    ExperimentRecord {
        experiment: experiment.into(),
        label: label.into(),
        params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    }
}

impl ExperimentRecord {
    /// Serializes the record as a JSON object (hand-rolled: the build
    /// environment has no crates.io access, so no serde).
    pub fn to_json(&self) -> String {
        let map_json = |m: &BTreeMap<String, f64>| {
            let fields: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), json_number(*v)))
                .collect();
            format!("{{{}}}", fields.join(", "))
        };
        format!(
            "{{\"experiment\": {}, \"label\": {}, \"params\": {}, \"metrics\": {}}}",
            json_string(&self.experiment),
            json_string(&self.label),
            map_json(&self.params),
            map_json(&self.metrics)
        )
    }
}

/// Serializes records as a pretty-printed JSON array (one record per line).
pub fn records_to_json(records: &[ExperimentRecord]) -> String {
    let body: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null keeps consumers honest.
        "null".to_string()
    }
}

/// The §2.6 protocol count of a connectivity run, for experiment rows
/// that print it. Experiments enable `run_output_protocol`, so a missing
/// count is a harness bug — fail with the experiment's context instead of
/// a bare `unwrap` line number.
fn protocol_count(experiment: &str, out: &kconn::ConnectivityOutput) -> u64 {
    out.counted_components.unwrap_or_else(|| {
        panic!(
            "{experiment}: run_output_protocol was enabled but the run \
             reported no §2.6 component count"
        )
    })
}

/// Output of one experiment: a markdown section + raw records.
pub struct ExperimentOutput {
    /// Markdown report section.
    pub markdown: String,
    /// Raw data points.
    pub records: Vec<ExperimentRecord>,
}

fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    // Least-squares slope of log(y) against log(x).
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

// ---------------------------------------------------------------------
// E1: Theorem 1 — connectivity rounds vs k
// ---------------------------------------------------------------------
fn e1(quick: bool) -> ExperimentOutput {
    let cfg = ConnectivityConfig::default();
    let ks: &[usize] = if quick { &[4, 8, 16] } else { &[4, 8, 16, 32] };
    let ns: &[usize] = if quick {
        &[4096]
    } else {
        &[4096, 16384, 32768]
    };
    let mut md = String::new();
    let mut records = Vec::new();
    let mut trend = Table::new(&["n", "fitted exponent (rounds ∝ k^x)"]);
    for &n in ns {
        let m = 4 * n;
        let g = generators::gnm(n, m, 161);
        let mut t = Table::new(&["k", "rounds", "total Mbits", "max-link Kbits", "phases"]);
        let mut pts = Vec::new();
        for &k in ks {
            let out = cluster(&g, k, 11)
                .run(Connectivity::with(cfg.clone()))
                .output;
            assert_eq!(out.component_count(), refalgo::component_count(&g));
            t.row(vec![
                k.to_string(),
                out.stats.rounds.to_string(),
                format!("{:.1}", out.stats.total_bits as f64 / 1e6),
                format!("{:.0}", out.stats.max_link_bits as f64 / 1e3),
                out.phases.to_string(),
            ]);
            pts.push((k as f64, out.stats.rounds as f64));
            records.push(record(
                "E1",
                &format!("n={n},k={k}"),
                &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
                &[
                    ("rounds", out.stats.rounds as f64),
                    ("total_bits", out.stats.total_bits as f64),
                    ("phases", out.phases as f64),
                ],
            ));
        }
        let slope = fit_exponent(&pts);
        trend.row(vec![n.to_string(), format!("{slope:.2}")]);
        md.push_str(&format!(
            "### E1 — Theorem 1: connectivity rounds vs k (n = {n}, m = {m})\n\n{}\n",
            t.render()
        ));
    }
    md.push_str(&format!(
        "Fitted exponents by instance size:\n\n{}\n\
         The paper predicts k^-2. At finite n the per-link sketch counts are\n\
         small enough that balls-into-bins slack (the polylog of Lemma 1) and\n\
         per-superstep floors blunt the exponent; it strengthens monotonically\n\
         toward −2 as n grows — the asymptotic superlinear speedup shape.\n",
        trend.render()
    ));
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E2: sketch vs flooding — the diameter crossover
// ---------------------------------------------------------------------
fn e2(quick: bool) -> ExperimentOutput {
    let n = if quick { 2048 } else { 8192 };
    let k = 16;
    let cases: Vec<(&str, Graph, usize)> = vec![
        (
            "planted communities (D≈3)",
            generators::planted_components(n, 8, 200, 21),
            8,
        ),
        ("path (D=n−1)", generators::path(n), 1),
        ("cycle (D=n/2)", generators::cycle(n), 1),
        (
            "grid (D≈2√n)",
            generators::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize),
            1,
        ),
    ];
    let mut t = Table::new(&["workload", "sketch rounds", "flooding rounds", "winner"]);
    let mut records = Vec::new();
    for (name, g, truth) in cases {
        let c = cluster(&g, k, 22);
        let ours = c.run(Connectivity::default()).output;
        assert_eq!(ours.component_count(), truth);
        let flood = c.run(Flooding::default()).output;
        let winner = if ours.stats.rounds < flood.stats.rounds {
            "sketch"
        } else {
            "flooding"
        };
        t.row(vec![
            name.into(),
            ours.stats.rounds.to_string(),
            flood.stats.rounds.to_string(),
            winner.into(),
        ]);
        records.push(record(
            "E2",
            name,
            &[("n", g.n() as f64), ("k", k as f64)],
            &[
                ("sketch_rounds", ours.stats.rounds as f64),
                ("flooding_rounds", flood.stats.rounds as f64),
            ],
        ));
    }
    let md = format!(
        "### E2 — sketch vs flooding crossover (n = {n}, k = {k})\n\n{}\n\
         Flooding costs Θ(n/k + D): it wins only on tiny-diameter inputs.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E3: referee collection costs Θ(m/k)
// ---------------------------------------------------------------------
fn e3(quick: bool) -> ExperimentOutput {
    let n = if quick { 4096 } else { 16384 };
    let k = 16;
    let mut t = Table::new(&["m", "referee rounds", "sketch rounds"]);
    let mut records = Vec::new();
    let mut pts = Vec::new();
    for mult in [2usize, 4, 8, 16] {
        let m = mult * n;
        let g = generators::gnm(n, m, 31);
        let c = cluster(&g, k, 32);
        let referee = c.run(Referee::default()).output;
        let ours = c.run(Connectivity::default()).output;
        t.row(vec![
            m.to_string(),
            referee.stats.rounds.to_string(),
            ours.stats.rounds.to_string(),
        ]);
        pts.push((m as f64, referee.stats.rounds as f64));
        records.push(record(
            "E3",
            &format!("m={m}"),
            &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
            &[
                ("referee_rounds", referee.stats.rounds as f64),
                ("sketch_rounds", ours.stats.rounds as f64),
            ],
        ));
    }
    let slope = fit_exponent(&pts);
    let md = format!(
        "### E3 — referee collection (n = {n}, k = {k})\n\n{}\n\
         Referee rounds ∝ m^{slope:.2} (paper: Ω(m/k) — linear in m); the sketch\n\
         algorithm is insensitive to m beyond sketch-building work.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E4: Lemma 1 — proxy routing load balance
// ---------------------------------------------------------------------
fn e4(quick: bool) -> ExperimentOutput {
    let n = if quick { 4096 } else { 16384 };
    let k = 16;
    let g = generators::planted_components(n, 4, 8, 41);
    let out = cluster(&g, k, 42).run(Connectivity::default()).output;
    let links = (k * (k - 1)) as u64;
    let mut t = Table::new(&["superstep class", "max-link / mean-link"]);
    // Heavy supersteps = sketch aggregation (Lemma 1's regime).
    let heavy = out.stats.link_imbalance(links, 200_000);
    let all = out.stats.link_imbalance(links, 1_000);
    t.row(vec![
        "sketch aggregation (heavy)".into(),
        format!("{heavy:.2}"),
    ]);
    t.row(vec!["all supersteps".into(), format!("{all:.2}")]);
    let md = format!(
        "### E4 — Lemma 1: proxy routing load balance (n = {n}, k = {k})\n\n{}\n\
         A ratio near 1 means the random proxies spread the load evenly over\n\
         all k(k−1) links; Lemma 1 predicts an O(polylog) factor w.h.p.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records: vec![record(
            "E4",
            "imbalance",
            &[("n", n as f64), ("k", k as f64)],
            &[("heavy_imbalance", heavy), ("all_imbalance", all)],
        )],
    }
}

// ---------------------------------------------------------------------
// E5 + E6: Lemma 6 (DRR depth, Figure 2) and Lemma 7 (phases) vs n
// ---------------------------------------------------------------------
fn e5_e6(quick: bool) -> ExperimentOutput {
    let ns: &[usize] = if quick {
        &[1024, 4096, 16384]
    } else {
        &[1024, 4096, 16384, 65536]
    };
    let k = 8;
    let mut t = Table::new(&[
        "n",
        "max DRR depth",
        "6·log2(n) bound",
        "phases",
        "12·log2(n) bound",
    ]);
    let mut records = Vec::new();
    for &n in ns {
        // A path is the adversarial workload for chain formation.
        let g = generators::path(n);
        let out = cluster(&g, k, 51).run(Connectivity::default()).output;
        let depth = out.drr_depths.iter().copied().max().unwrap_or(0);
        let log2n = (n as f64).log2();
        t.row(vec![
            n.to_string(),
            depth.to_string(),
            format!("{:.0}", 6.0 * log2n),
            out.phases.to_string(),
            format!("{:.0}", 12.0 * log2n),
        ]);
        records.push(record(
            "E5/E6",
            &format!("n={n}"),
            &[("n", n as f64), ("k", k as f64)],
            &[
                ("max_drr_depth", depth as f64),
                ("phases", out.phases as f64),
            ],
        ));
    }
    let md = format!(
        "### E5/E6 — Lemma 6 (DRR depth, cf. Figure 2) and Lemma 7 (phases) on paths (k = {k})\n\n{}\n\
         Both quantities stay within their O(log n) bounds with generous slack.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E7: Theorem 2(a) — MST rounds vs k, weight vs Kruskal
// ---------------------------------------------------------------------
fn e7(quick: bool) -> ExperimentOutput {
    let n = if quick { 2048 } else { 8192 };
    let m = 4 * n;
    let g = generators::randomize_weights(&generators::gnm(n, m, 71), 1_000_000, 72);
    let expect = refalgo::forest_weight(&refalgo::kruskal(&g));
    let ks: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let mut t = Table::new(&["k", "rounds", "weight == Kruskal", "phases"]);
    let mut records = Vec::new();
    let mut pts = Vec::new();
    for &k in ks {
        let out = cluster(&g, k, 73).run(Mst::default()).output;
        let exact = out.total_weight == expect;
        t.row(vec![
            k.to_string(),
            out.stats.rounds.to_string(),
            exact.to_string(),
            out.phases.to_string(),
        ]);
        pts.push((k as f64, out.stats.rounds as f64));
        records.push(record(
            "E7",
            &format!("k={k}"),
            &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
            &[
                ("rounds", out.stats.rounds as f64),
                ("exact", exact as u64 as f64),
            ],
        ));
    }
    let slope = fit_exponent(&pts);
    let md = format!(
        "### E7 — Theorem 2(a): MST rounds vs k (n = {n}, m = {m})\n\n{}\n\
         Fitted scaling: rounds ∝ k^{slope:.2} (paper predicts −2); weights match\n\
         Kruskal exactly (the elimination loop finds true MWOEs w.h.p.).\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E8: Theorem 2(b) — the endpoint-routing bottleneck on stars
// ---------------------------------------------------------------------
fn e8(quick: bool) -> ExperimentOutput {
    let n = if quick { 2048 } else { 8192 };
    let k = 16;
    let mut t = Table::new(&[
        "graph",
        "(b) routing max-recv bits",
        "mean-recv bits",
        "concentration",
    ]);
    let mut records = Vec::new();
    for (name, g) in [("star", generators::star(n)), ("path", generators::path(n))] {
        let g = generators::randomize_weights(&g, 1000, 81);
        let out = cluster(&g, k, 82)
            .run(Mst::with(MstConfig {
                criterion: OutputCriterion::BothEndpoints,
                ..MstConfig::default()
            }))
            .output;
        let routing = out.endpoint_routing.expect("criterion (b)");
        let max = routing.max_machine_recv_bits() as f64;
        let mean = routing.recv_bits.iter().sum::<u64>() as f64 / k as f64;
        t.row(vec![
            name.into(),
            format!("{max:.0}"),
            format!("{mean:.0}"),
            format!("{:.1}x", max / mean),
        ]);
        records.push(record(
            "E8",
            name,
            &[("n", n as f64), ("k", k as f64)],
            &[("max_recv", max), ("mean_recv", mean)],
        ));
    }
    let md = format!(
        "### E8 — Theorem 2(b): both-endpoints output (n = {n}, k = {k})\n\n{}\n\
         On a star the hub's home machine receives Θ(n) bits over its k−1\n\
         links — the Ω~(n/k) bottleneck of [22]; balanced inputs stay near 1x.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E9: sketches vs edge-checking Borůvka as density grows
// ---------------------------------------------------------------------
fn e9(quick: bool) -> ExperimentOutput {
    let n = if quick { 1024 } else { 2048 };
    let k = 16;
    let mut t = Table::new(&[
        "m/n",
        "sketch rounds",
        "sketch Mbits",
        "per-edge GHS rounds",
        "per-edge GHS Mbits",
        "batched GHS rounds",
        "all exact",
    ]);
    let mut records = Vec::new();
    let mults: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64, 256] };
    for &mult in mults {
        let m = (mult * n).min(n * (n - 1) / 2);
        let g = generators::randomize_weights(&generators::gnm(n, m, 91), 1_000_000, 92);
        let expect = refalgo::forest_weight(&refalgo::kruskal(&g));
        let c = cluster(&g, k, 93);
        let ours = c.run(Mst::default()).output;
        let per_edge = c
            .run(EdgeBoruvka::with(EdgeBoruvkaConfig {
                bandwidth: Bandwidth::default(),
                mode: CheckMode::PerEdgeTest,
            }))
            .output;
        let batched = c.run(EdgeBoruvka::default()).output;
        t.row(vec![
            mult.to_string(),
            ours.stats.rounds.to_string(),
            format!("{:.1}", ours.stats.total_bits as f64 / 1e6),
            per_edge.stats.rounds.to_string(),
            format!("{:.1}", per_edge.stats.total_bits as f64 / 1e6),
            batched.stats.rounds.to_string(),
            (ours.total_weight == expect
                && per_edge.total_weight == expect
                && batched.total_weight == expect)
                .to_string(),
        ]);
        records.push(record(
            "E9",
            &format!("m/n={mult}"),
            &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
            &[
                ("sketch_rounds", ours.stats.rounds as f64),
                ("sketch_bits", ours.stats.total_bits as f64),
                ("per_edge_rounds", per_edge.stats.rounds as f64),
                ("per_edge_bits", per_edge.stats.total_bits as f64),
                ("batched_rounds", batched.stats.rounds as f64),
            ],
        ));
    }
    let md = format!(
        "### E9 — MST: sketches vs edge-checking Borůvka (n = {n}, k = {k})\n\n{}\n\
         Per-edge checking (classical GHS behaviour, §1.2) moves Θ(m) bits\n\
         per phase: its cost grows linearly with density and overtakes the\n\
         density-independent sketch algorithm as m/n grows. The batched\n\
         variant is the strongest edge-checking baseline the k-machine\n\
         locality allows (O~(n·k) bits/phase); at laptop-scale n its small\n\
         messages beat the polylog-heavy sketches on rounds — the paper's\n\
         advantage over it is asymptotic in n and k (see EXPERIMENTS.md).\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E10: Theorem 3 — min-cut approximation quality and cost
// ---------------------------------------------------------------------
fn e10(quick: bool) -> ExperimentOutput {
    let block = if quick { 32 } else { 64 };
    let k = 8;
    let mut t = Table::new(&["λ (exact)", "estimate", "ratio", "probes", "rounds"]);
    let mut records = Vec::new();
    for (bridges, w, seed) in [
        (1usize, 1u64, 101u64),
        (2, 4, 102),
        (8, 2, 103),
        (16, 1, 104),
    ] {
        let g = generators::barbell(block, bridges, w, seed);
        let exact = mincut::stoer_wagner(&g).expect("connected");
        let out = cluster(&g, k, seed + 10).run(MinCut::default()).output;
        let est = out.estimate.max(1);
        let ratio = (est as f64 / exact as f64).max(exact as f64 / est as f64);
        t.row(vec![
            exact.to_string(),
            out.estimate.to_string(),
            format!("{ratio:.1}"),
            out.probes.to_string(),
            out.stats.rounds.to_string(),
        ]);
        records.push(record(
            "E10",
            &format!("lambda={exact}"),
            &[
                ("n", (2 * block) as f64),
                ("k", k as f64),
                ("lambda", exact as f64),
            ],
            &[
                ("estimate", out.estimate as f64),
                ("ratio", ratio),
                ("rounds", out.stats.rounds as f64),
            ],
        ));
    }
    let md = format!(
        "### E10 — Theorem 3: O(log n)-approximate min cut (barbells, k = {k})\n\n{}\n\
         Every ratio is well inside the O(log n) ≈ {:.0} guarantee; the cost is\n\
         a handful of connectivity probes (O~(n/k²·log) total).\n",
        t.render(),
        (2.0 * block as f64).log2()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E11: Theorem 4 — the eight verification problems
// ---------------------------------------------------------------------
fn e11(quick: bool) -> ExperimentOutput {
    let n = if quick { 512 } else { 2048 };
    let k = 8;
    let cfg = ConnectivityConfig::default();
    let g = generators::random_connected(n, n / 2, 111);
    let conn_rounds = cluster(&g, k, 112)
        .run(Connectivity::with(cfg.clone()))
        .output
        .stats
        .rounds;
    let all: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let some_edge = *g.edges().first().expect("nonempty");
    let mut t = Table::new(&["problem", "verdict", "rounds", "rounds / connectivity"]);
    let mut records = Vec::new();
    let mut push = |name: &str, holds: bool, rounds: u64, records: &mut Vec<ExperimentRecord>| {
        t.row(vec![
            name.into(),
            holds.to_string(),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / conn_rounds as f64),
        ]);
        records.push(record(
            "E11",
            name,
            &[("n", n as f64), ("k", k as f64)],
            &[("rounds", rounds as f64), ("holds", holds as u64 as f64)],
        ));
    };
    let v = verify::spanning_connected_subgraph(&g, &all, k, 113, &cfg);
    push(
        "spanning connected subgraph",
        v.holds,
        v.stats.rounds,
        &mut records,
    );
    let v = verify::cycle_containment(&g, &all, k, 114, &cfg);
    push("cycle containment", v.holds, v.stats.rounds, &mut records);
    let v = verify::e_cycle_containment(&g, &all, (some_edge.u, some_edge.v), k, 115, &cfg);
    push("e-cycle containment", v.holds, v.stats.rounds, &mut records);
    let v = verify::st_connectivity(&g, 0, (n - 1) as u32, k, 116, &cfg);
    push("s-t connectivity", v.holds, v.stats.rounds, &mut records);
    let mut cut = FxHashSet::default();
    cut.insert((some_edge.u, some_edge.v));
    let v = verify::cut_verification(&g, &cut, k, 117, &cfg);
    push("cut", v.holds, v.stats.rounds, &mut records);
    let v = verify::edge_on_all_paths(
        &g,
        (some_edge.u, some_edge.v),
        some_edge.u,
        some_edge.v,
        k,
        118,
        &cfg,
    );
    push("edge on all paths", v.holds, v.stats.rounds, &mut records);
    let v = verify::st_cut_verification(&g, &cut, 0, (n - 1) as u32, k, 119, &cfg);
    push("s-t cut", v.holds, v.stats.rounds, &mut records);
    let v = verify::bipartiteness(&g, k, 120, &cfg);
    push("bipartiteness", v.holds, v.stats.rounds, &mut records);
    let md = format!(
        "### E11 — Theorem 4: verification problems (n = {n}, k = {k}, plain connectivity = {conn_rounds} rounds)\n\n{}\n\
         Every problem costs one or two connectivity runs, i.e. O~(n/k²)\n\
         (bipartiteness runs connectivity on the 2n-vertex double cover).\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E12: REP vs RVP MST
// ---------------------------------------------------------------------
fn e12(quick: bool) -> ExperimentOutput {
    let n = if quick { 1024 } else { 4096 };
    // Dense enough that every machine's local edge share exceeds n − 1, so
    // the cycle-property filter caps each machine at Θ(n) surviving edges
    // and the REP→RVP routing stage carries Θ(n) edges per machine over k
    // links — the Θ~(n/k) regime of footnote 5.
    let m = 48 * n;
    let g = generators::randomize_weights(&generators::gnm(n, m, 121), 1_000_000, 122);
    let cfg = MstConfig::default();
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    let mut t = Table::new(&[
        "k",
        "RVP-on-G rounds",
        "REP total",
        "REP routing (Θ~(n/k))",
        "REP core (Θ~(n/k²))",
        "routing·k",
        "core·k²/1000",
    ]);
    let mut records = Vec::new();
    for &k in ks {
        let c = cluster(&g, k, 123);
        let rvp = c.run(Mst::with(cfg.clone())).output;
        let rep = c.run(RepMst::with(cfg.clone())).output;
        assert_eq!(rep.mst.total_weight, rvp.total_weight);
        let routing = rep.routing.rounds;
        let core = rep.mst.stats.rounds - routing;
        t.row(vec![
            k.to_string(),
            rvp.stats.rounds.to_string(),
            rep.mst.stats.rounds.to_string(),
            routing.to_string(),
            core.to_string(),
            (routing * k as u64).to_string(),
            ((core * (k * k) as u64) / 1000).to_string(),
        ]);
        records.push(record(
            "E12",
            &format!("k={k}"),
            &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
            &[
                ("rvp_rounds", rvp.stats.rounds as f64),
                ("rep_rounds", rep.mst.stats.rounds as f64),
                ("rep_routing_rounds", routing as f64),
                ("rep_core_rounds", core as f64),
            ],
        ));
    }
    let md = format!(
        "### E12 — §1.3: REP-model MST vs RVP (n = {n}, m = {m})\n\n{}\n\
         The REP pipeline = local cycle-property filtering (free) +\n\
         REP→RVP routing + the fast RVP algorithm on the filtered graph.\n\
         The separation lives in the stages: routing·k stays ~constant\n\
         (a Θ~(n/k) stage — the REP model's tight bound) while core·k²\n\
         stays ~constant (Θ~(n/k²)); as k grows the routing share rises\n\
         and REP's Θ~(n/k) floor becomes the bottleneck. End-to-end totals\n\
         at small k can favor REP because filtering shrinks the graph the\n\
         core run sees.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E13: Theorem 5 / Figure 1 — 2-party cut traffic vs b
// ---------------------------------------------------------------------
fn e13(quick: bool) -> ExperimentOutput {
    let k = 8;
    let cfg = ConnectivityConfig::default();
    let bs: &[usize] = if quick {
        &[128, 256, 512]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let mut t = Table::new(&[
        "b",
        "n",
        "cut bits",
        "rounds",
        "T·k²·W budget",
        "verdict ok",
    ]);
    let mut records = Vec::new();
    let mut pts = Vec::new();
    for &b in bs {
        let inst = DisjointnessInstance::random(b, 300, b as u64, Some(true));
        let r = simulate_scs_two_party(&inst, k, 131, &cfg);
        t.row(vec![
            b.to_string(),
            (2 * b + 2).to_string(),
            r.cut_bits.to_string(),
            r.rounds.to_string(),
            r.simulation_budget(k).to_string(),
            (r.verdict == r.disjoint).to_string(),
        ]);
        pts.push((b as f64, r.cut_bits as f64));
        records.push(record(
            "E13",
            &format!("b={b}"),
            &[("b", b as f64), ("k", k as f64)],
            &[
                ("cut_bits", r.cut_bits as f64),
                ("rounds", r.rounds as f64),
                ("budget", r.simulation_budget(k) as f64),
            ],
        ));
    }
    let slope = fit_exponent(&pts);
    let md = format!(
        "### E13 — Theorem 5 / Figure 1: 2-party cut traffic (k = {k})\n\n{}\n\
         Cut bits ∝ b^{slope:.2} (Lemma 8 forces Ω(b)); the T·k²·W simulation\n\
         budget always dominates the measured cut traffic, closing the\n\
         Ω~(n/k²) argument empirically.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E15: §2.2 ablation — charging the shared-randomness distribution
// ---------------------------------------------------------------------
fn e15(quick: bool) -> ExperimentOutput {
    let n = if quick { 4096 } else { 16384 };
    let g = generators::gnm(n, 4 * n, 151);
    let mut t = Table::new(&["k", "rounds (charged)", "rounds (free)", "overhead"]);
    let mut records = Vec::new();
    for k in [8usize, 32] {
        let c = cluster(&g, k, 152);
        let with = c
            .run(Connectivity::with(ConnectivityConfig {
                charge_shared_randomness: true,
                ..ConnectivityConfig::default()
            }))
            .output;
        let without = c
            .run(Connectivity::with(ConnectivityConfig {
                charge_shared_randomness: false,
                ..ConnectivityConfig::default()
            }))
            .output;
        t.row(vec![
            k.to_string(),
            with.stats.rounds.to_string(),
            without.stats.rounds.to_string(),
            format!(
                "{:.1}%",
                100.0 * (with.stats.rounds - without.stats.rounds) as f64
                    / without.stats.rounds as f64
            ),
        ]);
        records.push(record(
            "E15",
            &format!("k={k}"),
            &[("n", n as f64), ("k", k as f64)],
            &[
                ("rounds_charged", with.stats.rounds as f64),
                ("rounds_free", without.stats.rounds as f64),
            ],
        ));
    }
    let md = format!(
        "### E15 — §2.2 ablation: shared-randomness distribution cost (n = {n})\n\n{}\n\
         The Θ~(n/k) seed broadcast adds O~(n/k²) rounds — same order as the\n\
         algorithm itself, a bounded constant-factor overhead.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E16: §2.6 output protocol cost
// ---------------------------------------------------------------------
fn e16(quick: bool) -> ExperimentOutput {
    let n = if quick { 4096 } else { 16384 };
    let k = 16;
    let g = generators::planted_components(n, 12, 6, 161);
    let c = cluster(&g, k, 162);
    let with = c
        .run(Connectivity::with(ConnectivityConfig {
            run_output_protocol: true,
            ..ConnectivityConfig::default()
        }))
        .output;
    let without = c
        .run(Connectivity::with(ConnectivityConfig {
            run_output_protocol: false,
            ..ConnectivityConfig::default()
        }))
        .output;
    let extra = with.stats.rounds - without.stats.rounds;
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec![
        "components (protocol)".into(),
        protocol_count("E16", &with).to_string(),
    ]);
    t.row(vec![
        "components (truth)".into(),
        refalgo::component_count(&g).to_string(),
    ]);
    t.row(vec!["extra rounds for counting".into(), extra.to_string()]);
    t.row(vec!["total rounds".into(), with.stats.rounds.to_string()]);
    let md = format!(
        "### E16 — §2.6 output protocol: distributed component counting (n = {n}, k = {k})\n\n{}\n\
         Counting costs O~(n/k²) + O(log n) extra rounds on top of the run.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records: vec![record(
            "E16",
            "counting",
            &[("n", n as f64), ("k", k as f64)],
            &[
                ("extra_rounds", extra as f64),
                ("components", protocol_count("E16", &with) as f64),
            ],
        )],
    }
}

// ---------------------------------------------------------------------
// E17: ablation — DRR (§2.5) vs footnote-9 coin-flip merging
// ---------------------------------------------------------------------
fn e17(quick: bool) -> ExperimentOutput {
    use kconn::engine::MergeStrategy;
    let n = if quick { 4096 } else { 16384 };
    let k = 16;
    let mut t = Table::new(&["workload", "strategy", "rounds", "phases", "max DRR depth"]);
    let mut records = Vec::new();
    for (name, g) in [
        ("gnm m=4n", generators::gnm(n, 4 * n, 171)),
        ("path", generators::path(n)),
    ] {
        let c = cluster(&g, k, 172);
        for (sname, merge) in [
            ("DRR", MergeStrategy::Drr),
            ("coin-flip", MergeStrategy::CoinFlip),
        ] {
            let cfg = ConnectivityConfig {
                merge,
                ..ConnectivityConfig::default()
            };
            let out = c.run(Connectivity::with(cfg.clone())).output;
            assert_eq!(out.component_count(), refalgo::component_count(&g));
            let depth = out.drr_depths.iter().copied().max().unwrap_or(0);
            t.row(vec![
                name.into(),
                sname.into(),
                out.stats.rounds.to_string(),
                out.phases.to_string(),
                depth.to_string(),
            ]);
            records.push(record(
                "E17",
                &format!("{name}/{sname}"),
                &[("n", n as f64), ("k", k as f64)],
                &[
                    ("rounds", out.stats.rounds as f64),
                    ("phases", out.phases as f64),
                    ("max_depth", depth as f64),
                ],
            ));
        }
    }
    let md = format!(
        "### E17 — ablation: DRR vs footnote-9 coin-flip merging (n = {n}, k = {k})\n\n{}\n\
         Coin flips produce depth-1 merge trees (no pointer-jump chains) but\n\
         merge only ~1/4 of sampled edges per phase, so they trade extra\n\
         phases for simpler merging — the paper's footnote 9 claims the same\n\
         O~(n/k²) bound for both, which the rounds column confirms.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E18: spanning forest (no elimination) vs MST — the §3.1 log-factor
// ---------------------------------------------------------------------
fn e18(quick: bool) -> ExperimentOutput {
    let n = if quick { 2048 } else { 8192 };
    let m = 4 * n;
    let g = generators::randomize_weights(&generators::gnm(n, m, 181), 1_000_000, 182);
    let k = 16;
    let cfg = MstConfig::default();
    let c = cluster(&g, k, 183);
    let st = c.run(SpanningForest::with(cfg.clone())).output;
    assert!(refalgo::is_spanning_forest(&g, &st.edges));
    let mst = c.run(Mst::with(cfg.clone())).output;
    let mut t = Table::new(&["output", "rounds", "phases", "weight-optimal"]);
    t.row(vec![
        "spanning forest".into(),
        st.stats.rounds.to_string(),
        st.phases.to_string(),
        (refalgo::forest_weight(&st.edges) == refalgo::forest_weight(&refalgo::kruskal(&g)))
            .to_string(),
    ]);
    t.row(vec![
        "minimum spanning tree".into(),
        mst.stats.rounds.to_string(),
        mst.phases.to_string(),
        (mst.total_weight == refalgo::forest_weight(&refalgo::kruskal(&g))).to_string(),
    ]);
    let ratio = mst.stats.rounds as f64 / st.stats.rounds as f64;
    let md = format!(
        "### E18 — spanning tree vs MST (n = {n}, m = {m}, k = {k})\n\n{}\n\
         The ST skips the MWOE elimination loop and costs {ratio:.1}x fewer\n\
         rounds — the Θ(log n) overhead §3.1's elimination adds on top of\n\
         plain connectivity, paid only when weight-optimality is required.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records: vec![record(
            "E18",
            "st_vs_mst",
            &[("n", n as f64), ("m", m as f64), ("k", k as f64)],
            &[
                ("st_rounds", st.stats.rounds as f64),
                ("mst_rounds", mst.stats.rounds as f64),
            ],
        )],
    }
}

// ---------------------------------------------------------------------
// E19: the §1.1 per-link vs per-machine cost-model equivalence
// ---------------------------------------------------------------------
fn e19(quick: bool) -> ExperimentOutput {
    use kmachine::CostModel;
    let n = if quick { 4096 } else { 16384 };
    let g = generators::gnm(n, 4 * n, 191);
    let mut t = Table::new(&["k", "per-link rounds", "per-machine rounds", "ratio"]);
    let mut records = Vec::new();
    for k in [8usize, 16, 32] {
        let c = cluster(&g, k, 192);
        let run = |model: CostModel| {
            c.run(Connectivity::with(ConnectivityConfig {
                cost_model: model,
                ..ConnectivityConfig::default()
            }))
            .output
            .stats
            .rounds
        };
        let link = run(CostModel::PerLink);
        let machine = run(CostModel::PerMachine);
        t.row(vec![
            k.to_string(),
            link.to_string(),
            machine.to_string(),
            format!("{:.2}", link as f64 / machine as f64),
        ]);
        records.push(record(
            "E19",
            &format!("k={k}"),
            &[("n", n as f64), ("k", k as f64)],
            &[
                ("per_link_rounds", link as f64),
                ("per_machine_rounds", machine as f64),
            ],
        ));
    }
    let md = format!(
        "### E19 — §1.1: per-link vs per-machine communication restriction (n = {n})\n\n{}\n\
         The two views of the model differ by at most a factor k−1 in theory;\n\
         with proxy-randomized traffic the measured gap is a small constant —\n\
         the empirical side of the paper's \"alternate (but equivalent) way\n\
         to view this communication restriction\".\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E20: large-scale streamed ingestion — sharded storage end to end
// ---------------------------------------------------------------------
fn e20(quick: bool) -> ExperimentOutput {
    use std::time::Instant;
    let mut t = Table::new(&[
        "scenario",
        "ingest",
        "max shard (half-edges)",
        "2m/k",
        "connectivity rounds",
        "components",
        "cache hits",
    ]);
    let mut records = Vec::new();
    for s in crate::large::family(quick) {
        let started = Instant::now();
        let c = s.cluster();
        let ingest = started.elapsed();
        let sg = c.sharded();
        assert_eq!(sg.total_half_edges(), 2 * s.m());
        let max_load = sg.shard_loads().into_iter().max().unwrap_or(0);
        let fair = 2 * s.m() / s.k;
        // The full headline algorithm only on the rungs where it is cheap
        // enough; the top rung reports the ingestion + balance side.
        let (rounds, components, hits) = if s.n <= 200_000 {
            let out = c.run(Connectivity::default()).output;
            assert_eq!(out.component_count(), 1, "{}: connected input", s.id);
            (
                out.stats.rounds.to_string(),
                out.component_count().to_string(),
                out.sketch_cache_hits.to_string(),
            )
        } else {
            let out = c.run(Flooding::default()).output;
            assert_eq!(out.component_count(), 1, "{}: connected input", s.id);
            (
                format!("{} (flooding)", out.stats.rounds),
                out.component_count().to_string(),
                "-".into(),
            )
        };
        t.row(vec![
            s.id.clone(),
            format!("{ingest:.1?}"),
            max_load.to_string(),
            fair.to_string(),
            rounds,
            components,
            hits,
        ]);
        records.push(record(
            "E20",
            &s.id,
            &[("n", s.n as f64), ("m", s.m() as f64), ("k", s.k as f64)],
            &[
                ("max_shard_half_edges", max_load as f64),
                ("fair_share", fair as f64),
                ("ingest_ms", ingest.as_secs_f64() * 1e3),
            ],
        ));
    }
    let md = format!(
        "### E20 — streamed sharded ingestion at scale (n up to 10^6, k up to 64)\n\n{}\n\
         Edges flow from lazy generators straight into per-machine shards;\n\
         no central edge list is ever materialized. Shard loads stay within\n\
         a small constant of the fair share 2m/k (§1.1's Θ~(m/k + Δ)\n\
         balance), and the headline algorithms run unchanged on the shards.\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E21: dynamic updates — incremental maintenance vs re-ingest + re-solve
// ---------------------------------------------------------------------
fn e21(quick: bool) -> ExperimentOutput {
    let mut t = Table::new(&[
        "scenario",
        "batch",
        "refresh",
        "incr bits",
        "full bits",
        "full/incr",
        "mst refresh",
        "mst incr bits",
        "mst full bits",
        "mst full/incr",
        "components",
    ]);
    let mut records = Vec::new();
    let mut violations = 0usize;
    for s in crate::dynamic::family(quick) {
        let conn = crate::dynamic::measure(&s);
        let mst = crate::dynamic::measure_mst(&s);
        for (m, mm) in conn.iter().zip(&mst) {
            violations += usize::from(!m.undercuts_full());
            violations += usize::from(!mm.undercuts_full());
            t.row(vec![
                s.id.clone(),
                m.batch.to_string(),
                m.refresh_name(),
                m.incremental_bits.to_string(),
                m.full_bits.to_string(),
                format!("{:.2}x", m.ratio()),
                mm.refresh_name(),
                mm.incremental_bits.to_string(),
                mm.full_bits.to_string(),
                format!("{:.2}x", mm.ratio()),
                m.components.to_string(),
            ]);
            records.push(m.record("E21", &s));
            records.push(mm.record("E21-mst", &s));
        }
    }
    let md = format!(
        "### E21 — dynamic updates: incremental maintenance vs re-ingest + re-solve\n\n{}\n\
         Each batch is costed both ways on the same mutated edge set and\n\
         the same workload (output protocol off on both sides): the\n\
         incremental path (update routing + touched-component re-solve +\n\
         sketch certification) against re-shipping every edge and solving\n\
         from scratch. The mst columns cost the maintained-forest path\n\
         (cycle replacement / sketch replacement-search / restricted\n\
         re-run) the same way on a separate replay of the same trace.\n\
         Answers are bit-identical by construction (tests/dynamic.rs);\n\
         `tests/dynamic_family.rs` asserts both incremental paths win on\n\
         bits in every cell — this report run measured {violations}\n\
         violation(s).\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

// ---------------------------------------------------------------------
// E22: chaos — fault-injection recovery overhead vs the fault-free runs
// ---------------------------------------------------------------------
fn e22(quick: bool) -> ExperimentOutput {
    let mut t = Table::new(&[
        "scenario",
        "algo",
        "identical",
        "rounds (clean)",
        "rounds (faulted)",
        "recovery rounds",
        "retransmit bits",
        "crashes",
    ]);
    let mut records = Vec::new();
    for s in crate::chaos::family(quick) {
        for m in crate::chaos::measure(&s) {
            assert!(
                m.identical,
                "{}/{}: faulted run diverged from the fault-free answers",
                s.id, m.algo
            );
            t.row(vec![
                s.id.clone(),
                m.algo.to_string(),
                m.identical.to_string(),
                m.base_rounds.to_string(),
                m.faulted_rounds.to_string(),
                format!(
                    "{} ({:.0}%)",
                    m.recovery_rounds,
                    100.0 * m.rounds_overhead()
                ),
                format!("{} ({:.0}%)", m.retransmit_bits, 100.0 * m.bits_overhead()),
                m.machine_crashes.to_string(),
            ]);
            records.push(m.record("E22", &s));
        }
    }
    let md = format!(
        "### E22 — chaos: recovery overhead under seeded fault plans\n\n{}\n\
         Every faulted run is compared bit-for-bit against its fault-free\n\
         twin on the same ingested cluster: the ack/retransmit protocol and\n\
         phase checkpoints mask drops, duplicates, reorders, delays and\n\
         machine crashes exactly, so the answers never change — the plans\n\
         only add the recovery overhead costed above\n\
         (`tests/chaos_family.rs` pins the envelope).\n",
        t.render()
    );
    ExperimentOutput {
        markdown: md,
        records,
    }
}

/// Runs one experiment by id ("E1".."E22"; E5/E6 are joint, E14 lives in
/// the integration tests).
pub fn run_experiment(id: &str, quick: bool) -> Option<ExperimentOutput> {
    match id {
        "E1" => Some(e1(quick)),
        "E2" => Some(e2(quick)),
        "E3" => Some(e3(quick)),
        "E4" => Some(e4(quick)),
        "E5" | "E6" | "E5/E6" => Some(e5_e6(quick)),
        "E7" => Some(e7(quick)),
        "E8" => Some(e8(quick)),
        "E9" => Some(e9(quick)),
        "E10" => Some(e10(quick)),
        "E11" => Some(e11(quick)),
        "E12" => Some(e12(quick)),
        "E13" => Some(e13(quick)),
        "E15" => Some(e15(quick)),
        "E16" => Some(e16(quick)),
        "E17" => Some(e17(quick)),
        "E18" => Some(e18(quick)),
        "E19" => Some(e19(quick)),
        "E20" => Some(e20(quick)),
        "E21" => Some(e21(quick)),
        "E22" => Some(e22(quick)),
        _ => None,
    }
}

/// All experiment ids in report order.
pub const ALL_IDS: &[&str] = &[
    "E1", "E2", "E3", "E4", "E5/E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E15", "E16",
    "E17", "E18", "E19", "E20", "E21", "E22",
];

/// Runs the full suite.
pub fn run_all(quick: bool) -> Vec<(String, ExperimentOutput)> {
    ALL_IDS
        .iter()
        .map(|id| (id.to_string(), run_experiment(id, quick).expect("known id")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconn::ConnectivityOutput;
    use kmachine::metrics::CommStats;

    fn output_with_count(counted: Option<u64>) -> ConnectivityOutput {
        ConnectivityOutput {
            labels: vec![0, 0, 2, 2],
            stats: CommStats::new(2),
            phases: 1,
            phase_components: vec![4],
            drr_depths: vec![0],
            counted_components: counted,
            sketch_builds: 0,
            sketch_cache_hits: 0,
        }
    }

    #[test]
    fn protocol_count_formats_into_a_row_when_present() {
        let out = output_with_count(Some(2));
        let mut t = Table::new(&["metric", "value"]);
        t.row(vec![
            "components (protocol)".into(),
            protocol_count("E16", &out).to_string(),
        ]);
        assert!(t.render().contains("| components (protocol) |     2 |"));
    }

    #[test]
    #[should_panic(expected = "E16: run_output_protocol was enabled")]
    fn protocol_count_panics_with_experiment_context_when_missing() {
        let _ = protocol_count("E16", &output_with_count(None));
    }
}
