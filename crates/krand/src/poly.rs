//! d-wise independent hash families via random polynomials over `F_{2^61-1}`.
//!
//! A uniformly random polynomial of degree `d-1` evaluated at distinct points
//! is a d-wise independent family (the classical Carter–Wegman / Joffe
//! construction, used by the paper through [Alon–Babai–Itai] and Theorem 2.1
//! of \[5\]). The linear-sketch level hashes need `Θ(log n)`-wise independence
//! (Cormode–Firmani), which this provides with `d = Θ(log n)` coefficients.

use crate::m61::{M61, P};
use crate::prf::Prf;

/// A hash function drawn from a d-wise independent polynomial family.
///
/// Evaluation maps `x ∈ [0, p)` to `h(x) ∈ [0, p)` by Horner's rule over the
/// Mersenne field. Coefficients are derived deterministically from a PRF key
/// so that every machine reconstructs the *same* function from the shared
/// seed without communication, mirroring Section 2.2 of the paper.
#[derive(Clone, Debug)]
pub struct PolyHash {
    coeffs: Vec<M61>,
}

impl PolyHash {
    /// Draws a degree-`(d-1)` polynomial (a d-wise independent function)
    /// with coefficients derived from `prf` under `domain`.
    pub fn from_prf(prf: &Prf, domain: u64, d: usize) -> Self {
        assert!(d >= 1, "independence parameter must be at least 1");
        let coeffs = (0..d)
            .map(|i| {
                // Rejection-free: PRF output folded into [0, p). The modulo
                // bias is 2^64 mod p ≈ 2^-58-level and irrelevant here.
                M61::new(prf.eval(domain, i as u64))
            })
            .collect();
        PolyHash { coeffs }
    }

    /// Builds a polynomial from explicit coefficients (tests / reproducibility).
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty());
        PolyHash {
            coeffs: coeffs.into_iter().map(M61::new).collect(),
        }
    }

    /// Number of coefficients, i.e. the independence parameter `d`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of truly random bits this function consumes (for the §2.2
    /// shared-randomness cost model): `d` coefficients of `61` bits each.
    pub fn random_bits(&self) -> u64 {
        self.coeffs.len() as u64 * 61
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = M61::new(x);
        let mut acc = M61::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc.value()
    }

    /// Evaluates and reduces to `[0, m)`.
    #[inline]
    pub fn eval_mod(&self, x: u64, m: u64) -> u64 {
        debug_assert!(m > 0 && m < P);
        self.eval(x) % m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_polynomial_is_constant() {
        let h = PolyHash::from_coeffs(vec![17]);
        assert_eq!(h.eval(0), 17);
        assert_eq!(h.eval(12345), 17);
    }

    #[test]
    fn linear_polynomial_matches_reference() {
        // h(x) = 3 + 5x mod p.
        let h = PolyHash::from_coeffs(vec![3, 5]);
        assert_eq!(h.eval(0), 3);
        assert_eq!(h.eval(1), 8);
        assert_eq!(h.eval(10), 53);
        let x = P - 1;
        let expect = (3u128 + 5u128 * x as u128) % P as u128;
        assert_eq!(h.eval(x) as u128, expect);
    }

    #[test]
    fn derived_functions_are_deterministic_and_distinct() {
        let prf = Prf::new(7);
        let h1 = PolyHash::from_prf(&prf, 0, 8);
        let h1b = PolyHash::from_prf(&prf, 0, 8);
        let h2 = PolyHash::from_prf(&prf, 1, 8);
        for x in 0..32u64 {
            assert_eq!(h1.eval(x), h1b.eval(x));
        }
        assert!((0..32u64).any(|x| h1.eval(x) != h2.eval(x)));
    }

    #[test]
    fn pairwise_statistics_look_uniform() {
        // Chi-square-ish sanity: bucket 20k evaluations of a 4-wise function
        // into 16 buckets; each should be near 1/16.
        let prf = Prf::new(99);
        let h = PolyHash::from_prf(&prf, 3, 4);
        let m = 16u64;
        let trials = 20_000u64;
        let mut counts = vec![0u64; m as usize];
        for x in 0..trials {
            counts[h.eval_mod(x, m) as usize] += 1;
        }
        let expect = (trials / m) as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 0.2 * expect);
        }
    }

    #[test]
    fn random_bits_accounting() {
        let prf = Prf::new(1);
        let h = PolyHash::from_prf(&prf, 0, 20);
        assert_eq!(h.independence(), 20);
        assert_eq!(h.random_bits(), 20 * 61);
    }
}
