//! Pairwise-independent affine hash family `h(x) = (a x + b) mod p`.
//!
//! A specialization of [`crate::poly::PolyHash`] with `d = 2`, kept separate
//! because the two-coefficient case is hot in sketch level selection and a
//! dedicated struct avoids the Horner loop.

use crate::m61::{M61, P};
use crate::prf::Prf;

/// An affine function over `F_{2^61-1}`: pairwise independent when `(a, b)`
/// is uniform with `a != 0`.
#[derive(Clone, Copy, Debug)]
pub struct PairwiseHash {
    a: M61,
    b: M61,
}

impl PairwiseHash {
    /// Draws a pairwise-independent function from a PRF key.
    pub fn from_prf(prf: &Prf, domain: u64) -> Self {
        let mut a = M61::new(prf.eval(domain, 0));
        if a.value() == 0 {
            a = M61::ONE;
        }
        let b = M61::new(prf.eval(domain, 1));
        PairwiseHash { a, b }
    }

    /// Builds from explicit parameters (tests).
    pub fn new(a: u64, b: u64) -> Self {
        let a = M61::new(a);
        assert!(a.value() != 0, "slope must be nonzero");
        PairwiseHash { a, b: M61::new(b) }
    }

    /// Evaluates `h(x)` in `[0, p)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        self.a.mul(M61::new(x)).add(self.b).value()
    }

    /// Random bits consumed (two field elements).
    pub fn random_bits(&self) -> u64 {
        2 * 61
    }

    /// The field modulus this family maps into.
    pub fn modulus() -> u64 {
        P
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_affine_reference() {
        let h = PairwiseHash::new(3, 10);
        assert_eq!(h.eval(0), 10);
        assert_eq!(h.eval(5), 25);
        let x = P - 1;
        let expect = ((3u128 * x as u128) + 10) % P as u128;
        assert_eq!(h.eval(x) as u128, expect);
    }

    #[test]
    fn prf_derivation_never_yields_zero_slope() {
        // Probe many domains; slope zero would make the family degenerate.
        let prf = Prf::new(5);
        for dom in 0..200u64 {
            let h = PairwiseHash::from_prf(&prf, dom);
            assert_ne!(h.a.value(), 0);
        }
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let prf = Prf::new(11);
        let h = PairwiseHash::from_prf(&prf, 0);
        let mut outs: Vec<u64> = (0..1000).map(|x| h.eval(x)).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 1000, "affine map over a field is injective");
    }
}
