//! Arithmetic in the field `F_p` for the Mersenne prime `p = 2^61 - 1`.
//!
//! The sketch fingerprints and the d-wise independent polynomial hash family
//! both work over this field. Mersenne reduction needs no division: for any
//! `x < p^2`, `x mod p` is computed from the low and high 61-bit halves.

/// The Mersenne prime `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// An element of `F_{2^61 - 1}`, always kept in canonical form `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct M61(u64);

#[allow(clippy::should_implement_trait)] // operator impls below delegate to these inherent methods
impl M61 {
    /// The additive identity.
    pub const ZERO: M61 = M61(0);
    /// The multiplicative identity.
    pub const ONE: M61 = M61(1);

    /// Builds a field element, reducing `x` modulo `p`.
    #[inline]
    pub fn new(x: u64) -> Self {
        let mut v = (x >> 61) + (x & P);
        if v >= P {
            v -= P;
        }
        M61(v)
    }

    /// Reduces an arbitrary 128-bit value modulo `p`.
    #[inline]
    pub fn from_u128(x: u128) -> Self {
        // Split into 61-bit limbs: x = a + b*2^61 + c*2^122 with c < 2^6.
        let a = (x & P as u128) as u64;
        let b = ((x >> 61) & P as u128) as u64;
        let c = (x >> 122) as u64;
        // 2^61 ≡ 1, 2^122 ≡ 1 (mod p).
        let mut v = a as u128 + b as u128 + c as u128;
        while v >= P as u128 {
            v -= P as u128;
        }
        M61(v as u64)
    }

    /// Returns the canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Field addition.
    #[inline]
    pub fn add(self, rhs: M61) -> M61 {
        let mut v = self.0 + rhs.0;
        if v >= P {
            v -= P;
        }
        M61(v)
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(self, rhs: M61) -> M61 {
        let v = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        };
        M61(v)
    }

    /// Field negation.
    #[inline]
    pub fn neg(self) -> M61 {
        if self.0 == 0 {
            M61(0)
        } else {
            M61(P - self.0)
        }
    }

    /// Field multiplication via 128-bit product and Mersenne reduction.
    #[inline]
    pub fn mul(self, rhs: M61) -> M61 {
        let prod = self.0 as u128 * rhs.0 as u128;
        M61::from_u128(prod)
    }

    /// Fast exponentiation `self^e`.
    pub fn pow(self, mut e: u64) -> M61 {
        let mut base = self;
        let mut acc = M61::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`self != 0`).
    pub fn inv(self) -> M61 {
        debug_assert!(self.0 != 0, "inverse of zero");
        self.pow(P - 2)
    }
}

impl std::ops::Add for M61 {
    type Output = M61;
    fn add(self, rhs: M61) -> M61 {
        M61::add(self, rhs)
    }
}

impl std::ops::Sub for M61 {
    type Output = M61;
    fn sub(self, rhs: M61) -> M61 {
        M61::sub(self, rhs)
    }
}

impl std::ops::Mul for M61 {
    type Output = M61;
    fn mul(self, rhs: M61) -> M61 {
        M61::mul(self, rhs)
    }
}

impl std::ops::AddAssign for M61 {
    fn add_assign(&mut self, rhs: M61) {
        *self = M61::add(*self, rhs);
    }
}

impl From<u64> for M61 {
    fn from(x: u64) -> M61 {
        M61::new(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(M61::new(P).value(), 0);
        assert_eq!(M61::new(P + 5).value(), 5);
        assert_eq!(M61::new(u64::MAX).value(), u64::MAX % P);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = M61::new(123_456_789_012_345);
        let b = M61::new(P - 3);
        assert_eq!((a + b - b).value(), a.value());
        assert_eq!((a.sub(a)).value(), 0);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for x in [0u64, 1, 2, P - 1, 999_999_937] {
            let a = M61::new(x);
            assert_eq!((a + a.neg()).value(), 0);
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [
            (0u64, 17u64),
            (1, P - 1),
            (P - 1, P - 1),
            (123_456_789, 987_654_321),
            (1 << 60, (1 << 60) + 12345),
        ];
        for (x, y) in cases {
            let expect = ((x as u128 % P as u128) * (y as u128 % P as u128) % P as u128) as u64;
            assert_eq!(M61::new(x).mul(M61::new(y)).value(), expect);
        }
    }

    #[test]
    fn from_u128_reduces_correctly() {
        let x: u128 = (P as u128 - 1) * (P as u128 - 1);
        let expect = (x % P as u128) as u64;
        assert_eq!(M61::from_u128(x).value(), expect);
        assert_eq!(
            M61::from_u128(u128::MAX).value(),
            (u128::MAX % P as u128) as u64
        );
    }

    #[test]
    fn pow_small_cases() {
        let a = M61::new(3);
        assert_eq!(a.pow(0).value(), 1);
        assert_eq!(a.pow(1).value(), 3);
        assert_eq!(a.pow(4).value(), 81);
        // Fermat: a^(p-1) = 1.
        assert_eq!(a.pow(P - 1).value(), 1);
    }

    #[test]
    fn inverse_multiplies_to_one() {
        for x in [1u64, 2, 7, P - 2, 424_242_424_242] {
            let a = M61::new(x);
            assert_eq!(a.mul(a.inv()).value(), 1);
        }
    }
}
