//! Shared randomness: agreement + distribution-cost model (paper §2.2).
//!
//! In the paper, machine `M1` draws `ℓ = Θ~(n/k)` private random bits and
//! distributes them to all machines in `O~(n/k²)` rounds (send `k-1` bits out,
//! each recipient broadcasts its bit — two rounds per `k-1` bits). All
//! machines then construct identical d-wise independent hash functions.
//!
//! In this implementation every machine derives hash functions from a common
//! 64-bit master seed, so *agreement* needs no protocol. The *cost* of the
//! paper's distribution step is still modelled: [`SharedRandomness`] tracks
//! how many truly-random bits each constructed function would consume, and
//! [`SharedRandomness::distribution_rounds`] converts that to the §2.2 round
//! count so the simulator can charge it (the `charge_shared_randomness`
//! config in `kconn`). Experiment E15 quantifies the difference.

use crate::poly::PolyHash;
use crate::prf::Prf;

/// Domain separation tags for the different hash-function uses.
/// Keeping them centralized guarantees no accidental reuse across uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Use {
    /// Proxy machine selection for component labels.
    Proxy {
        /// Borůvka phase.
        phase: u32,
        /// Routing iteration within the phase.
        iteration: u32,
    },
    /// DRR rank of a component label in a phase.
    Rank {
        /// Borůvka phase.
        phase: u32,
    },
    /// Sketch level hash.
    SketchLevel {
        /// Borůvka phase (or phase·64 + elimination iteration).
        phase: u32,
        /// Sketch repetition index.
        rep: u32,
    },
    /// Sketch fingerprint key.
    SketchFingerprint {
        /// Borůvka phase (or phase·64 + elimination iteration).
        phase: u32,
        /// Sketch repetition index.
        rep: u32,
        /// Sketch level (kept for domain separation; keys are per-rep).
        level: u32,
    },
    /// Edge sampling for min-cut probes.
    MinCutSample {
        /// Probe index (sampling probability `2^-probe`).
        probe: u32,
    },
    /// MST elimination iteration randomness.
    MstElimination {
        /// Borůvka phase.
        phase: u32,
        /// Elimination iteration.
        iteration: u32,
    },
    /// Phase-0 fast path: uniform incident-edge sampling for singleton
    /// components (the paper's "each node is the proxy of its own
    /// component" setup makes phase-0 sketches local; the sample they would
    /// produce is a uniform incident edge).
    Phase0Sample,
}

impl Use {
    fn domain(self) -> u64 {
        // Pack the variant and its parameters into disjoint 64-bit domains.
        match self {
            Use::Proxy { phase, iteration } => {
                0x1_0000_0000_0000 | ((phase as u64) << 20) | iteration as u64
            }
            Use::Rank { phase } => 0x2_0000_0000_0000 | phase as u64,
            Use::SketchLevel { phase, rep } => {
                0x3_0000_0000_0000 | ((phase as u64) << 20) | rep as u64
            }
            Use::SketchFingerprint { phase, rep, level } => {
                0x4_0000_0000_0000 | ((phase as u64) << 28) | ((rep as u64) << 14) | level as u64
            }
            Use::MinCutSample { probe } => 0x5_0000_0000_0000 | probe as u64,
            Use::MstElimination { phase, iteration } => {
                0x6_0000_0000_0000 | ((phase as u64) << 20) | iteration as u64
            }
            Use::Phase0Sample => 0x7_0000_0000_0000,
        }
    }
}

/// The shared-randomness source every machine holds.
///
/// Cloning is cheap; all clones agree on every derived function.
#[derive(Clone, Copy, Debug)]
pub struct SharedRandomness {
    prf: Prf,
}

impl SharedRandomness {
    /// Creates the source from the experiment's master seed.
    pub fn new(master_seed: u64) -> Self {
        SharedRandomness {
            prf: Prf::new(master_seed).derive(0x5EED),
        }
    }

    /// The PRF for a given use (proxy selection, ranks, ...).
    pub fn prf(&self, u: Use) -> Prf {
        self.prf.derive(u.domain())
    }

    /// A d-wise independent polynomial hash for a given use.
    pub fn poly(&self, u: Use, d: usize) -> PolyHash {
        PolyHash::from_prf(&self.prf, u.domain(), d)
    }

    /// Rounds needed to distribute `bits` of true randomness from `M1` to all
    /// machines under the §2.2 protocol: `k-1` bits leave `M1` per odd round
    /// and are re-broadcast in the following round, so `ceil(bits/(k-1)) * 2`
    /// rounds when the per-link budget is one bit. With `w` bits per link per
    /// round the pipeline carries `(k-1)*w` bits every two rounds.
    pub fn distribution_rounds(bits: u64, k: usize, link_bits_per_round: u64) -> u64 {
        assert!(k >= 2);
        let w = link_bits_per_round.max(1);
        let per_two_rounds = (k as u64 - 1) * w;
        2 * bits.div_ceil(per_two_rounds)
    }

    /// The §2.2 budget of shared bits for one run: `ℓ = Θ~(n/k)` — we charge
    /// `(n / k + 1) * ceil(log2 n)^2` bits, matching the paper's
    /// `n·polylog(n)/k` seed requirement for a Θ~(n/k)-wise independent
    /// proxy hash plus the Θ(log² n) sketch seeds.
    pub fn paper_shared_bits(n: usize, k: usize) -> u64 {
        let log = (usize::BITS - n.max(2).leading_zeros()) as u64;
        (n as u64 / k as u64 + 1) * log * log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_agree_on_everything() {
        let a = SharedRandomness::new(7);
        let b = a;
        let u = Use::Rank { phase: 3 };
        assert_eq!(a.prf(u).eval(0, 42), b.prf(u).eval(0, 42));
        let p1 = a.poly(Use::SketchLevel { phase: 1, rep: 0 }, 6);
        let p2 = b.poly(Use::SketchLevel { phase: 1, rep: 0 }, 6);
        for x in 0..64 {
            assert_eq!(p1.eval(x), p2.eval(x));
        }
    }

    #[test]
    fn different_uses_get_different_functions() {
        let s = SharedRandomness::new(1);
        let r1 = s.prf(Use::Rank { phase: 0 }).eval(0, 5);
        let r2 = s.prf(Use::Rank { phase: 1 }).eval(0, 5);
        let r3 = s
            .prf(Use::Proxy {
                phase: 0,
                iteration: 0,
            })
            .eval(0, 5);
        assert_ne!(r1, r2);
        assert_ne!(r1, r3);
    }

    #[test]
    fn fingerprint_domains_do_not_collide_across_parameters() {
        // The bit-packing must keep (phase, rep, level) injective.
        let a = Use::SketchFingerprint {
            phase: 1,
            rep: 0,
            level: 0,
        }
        .domain();
        let b = Use::SketchFingerprint {
            phase: 0,
            rep: 1,
            level: 0,
        }
        .domain();
        let c = Use::SketchFingerprint {
            phase: 0,
            rep: 0,
            level: 1,
        }
        .domain();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn distribution_rounds_matches_hand_computation() {
        // 100 bits, k=11 machines, 1 bit/link/round: 10 bits per 2 rounds
        // => ceil(100/10)*2 = 20 rounds.
        assert_eq!(SharedRandomness::distribution_rounds(100, 11, 1), 20);
        // Wider links shrink it proportionally.
        assert_eq!(SharedRandomness::distribution_rounds(100, 11, 10), 2);
        // Always at least one 2-round pulse for nonzero bits.
        assert_eq!(SharedRandomness::distribution_rounds(1, 2, 64), 2);
    }

    #[test]
    fn paper_shared_bits_scales_like_n_over_k() {
        let b1 = SharedRandomness::paper_shared_bits(1 << 16, 4);
        let b2 = SharedRandomness::paper_shared_bits(1 << 16, 8);
        assert!(b1 > b2, "more machines need fewer shared bits per §2.2");
        assert!(b1 / b2 >= 1 && b1 / b2 <= 3);
    }
}
