//! Keyed pseudorandom functions used for proxy selection and DRR ranks.
//!
//! The paper derives these from shared random bits; a keyed PRF reproduces
//! the same independent-uniform behaviour with a 64-bit key. SplitMix64 is
//! used as the mixing core: it is a bijective finalizer with full 64-bit
//! avalanche, which is enough for load-balancing and rank-drawing purposes
//! (the information-theoretic sketch hashes live in [`crate::poly`]).

/// One application of the SplitMix64 output function to `x`.
#[inline]
pub fn split_mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A keyed PRF `F_key : u64 x u64 -> u64`.
///
/// Distinct `domain` values give independent-looking streams, which is how
/// per-phase / per-iteration hash functions are derived from one shared key.
#[derive(Clone, Copy, Debug)]
pub struct Prf {
    key: u64,
}

impl Prf {
    /// Creates a PRF from a 64-bit key.
    pub fn new(key: u64) -> Self {
        Prf { key }
    }

    /// Evaluates the PRF on `(domain, x)`.
    #[inline]
    pub fn eval(&self, domain: u64, x: u64) -> u64 {
        // Two mixing rounds with the key folded in between; cheap and
        // sufficient for the simulator's load-balancing hashes.
        let a = split_mix64(x ^ self.key.rotate_left(17));
        split_mix64(a ^ domain.wrapping_mul(0xA24BAED4963EE407) ^ self.key)
    }

    /// Evaluates the PRF and reduces it to `[0, m)` without modulo bias
    /// worth speaking of (`m` is tiny compared to 2^64 in all uses).
    #[inline]
    pub fn eval_mod(&self, domain: u64, x: u64, m: u64) -> u64 {
        debug_assert!(m > 0);
        // Multiply-shift reduction: (h * m) >> 64 is uniform on [0, m).
        ((self.eval(domain, x) as u128 * m as u128) >> 64) as u64
    }

    /// Derives a child PRF for an independent sub-use.
    pub fn derive(&self, label: u64) -> Prf {
        Prf {
            key: split_mix64(self.key ^ label.wrapping_mul(0xD6E8FEB86659FD93)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(split_mix64(0), split_mix64(0));
        assert_ne!(split_mix64(0), 0);
        assert_ne!(split_mix64(1), split_mix64(2));
    }

    #[test]
    fn prf_domains_are_independent_streams() {
        let f = Prf::new(42);
        assert_ne!(f.eval(0, 7), f.eval(1, 7));
        assert_ne!(f.eval(0, 7), f.eval(0, 8));
        // Deterministic.
        assert_eq!(f.eval(3, 9), f.eval(3, 9));
    }

    #[test]
    fn eval_mod_stays_in_range_and_covers() {
        let f = Prf::new(1234);
        let m = 13u64;
        let mut seen = vec![false; m as usize];
        for x in 0..10_000u64 {
            let v = f.eval_mod(0, x, m);
            assert!(v < m);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit");
    }

    #[test]
    fn eval_mod_is_roughly_uniform() {
        let f = Prf::new(99);
        let m = 16u64;
        let trials = 64_000u64;
        let mut counts = vec![0u64; m as usize];
        for x in 0..trials {
            counts[f.eval_mod(7, x, m) as usize] += 1;
        }
        let expect = trials / m;
        for &c in &counts {
            // Within 15% of the mean; binomial std-dev here is ~1.5%.
            assert!(
                (c as f64 - expect as f64).abs() < 0.15 * expect as f64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn derived_prfs_differ_from_parent() {
        let f = Prf::new(5);
        let g = f.derive(1);
        let h = f.derive(2);
        assert_ne!(f.eval(0, 0), g.eval(0, 0));
        assert_ne!(g.eval(0, 0), h.eval(0, 0));
    }
}
