#![warn(missing_docs)]
//! Randomness substrate for the k-machine algorithms.
//!
//! The paper's algorithms consume three kinds of randomness:
//!
//! 1. **True d-wise independent hash functions** over a prime field, used by
//!    the linear-sketch construction (`ksketch`). Implemented as random
//!    polynomials of degree `d-1` over the Mersenne prime `p = 2^61 - 1`
//!    ([`poly::PolyHash`]).
//! 2. **Keyed pseudorandom functions** used for proxy selection and DRR
//!    ranks, derived from a shared master seed ([`prf`]).
//! 3. **Shared randomness**: Section 2.2 of the paper distributes
//!    `Θ~(n/k)` random bits from machine `M1` to every other machine in
//!    `O~(n/k^2)` rounds. [`shared::SharedRandomness`] models both the
//!    derivation tree (so all machines agree on every hash function without
//!    further communication) and the *cost* of that initial distribution,
//!    which the simulator can charge to the round counter.

pub mod m61;
pub mod pairwise;
pub mod poly;
pub mod prf;
pub mod shared;

pub use m61::M61;
pub use pairwise::PairwiseHash;
pub use poly::PolyHash;
pub use prf::{split_mix64, Prf};
pub use shared::SharedRandomness;
