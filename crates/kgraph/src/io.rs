//! Plain-text edge-list I/O.
//!
//! Format: first line `n m`, then one `u v w` triple per line. Lines whose
//! first non-space character is `#` are comments. Round-trip tested.

use crate::graph::{Edge, Graph};
use std::fmt::Write as _;

/// Serializes a graph to the edge-list text format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(out, "{} {} {}", e.u, e.v, e.w);
    }
    out
}

/// Errors from [`from_edge_list`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader,
    /// An edge line failed to parse (line number, 1-based).
    BadEdge(usize),
    /// The edge count in the header disagrees with the body.
    CountMismatch {
        /// Edge count declared in the header.
        expected: usize,
        /// Edges actually present in the body.
        found: usize,
    },
    /// An endpoint id is outside `[0, n)`, or a self-loop (line number,
    /// 1-based).
    OutOfRange(usize),
    /// An edge repeats an earlier endpoint pair (line number, 1-based).
    DuplicateEdge(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed `n m` header"),
            ParseError::BadEdge(l) => write!(f, "malformed edge on line {l}"),
            ParseError::CountMismatch { expected, found } => {
                write!(f, "header declared {expected} edges but found {found}")
            }
            ParseError::OutOfRange(l) => write!(f, "endpoint out of range on line {l}"),
            ParseError::DuplicateEdge(l) => write!(f, "duplicate edge on line {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the edge-list text format.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or(ParseError::BadHeader)?;
    let m: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or(ParseError::BadHeader)?;
    // A hostile header (`m` in the exabytes) must produce CountMismatch,
    // not an allocation abort — cap the pre-allocation by what the text
    // could possibly hold (≥ 4 bytes per edge line).
    let mut edges = Vec::with_capacity(m.min(text.len() / 4 + 1));
    let mut seen: rustc_hash::FxHashSet<(u32, u32)> = rustc_hash::FxHashSet::default();
    for (lineno, line) in lines {
        let mut t = line.split_whitespace();
        let u: u32 = t
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(ParseError::BadEdge(lineno))?;
        let v: u32 = t
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(ParseError::BadEdge(lineno))?;
        let w: u64 = match t.next() {
            Some(x) => x.parse().map_err(|_| ParseError::BadEdge(lineno))?,
            None => 1,
        };
        if u as usize >= n || v as usize >= n || u == v {
            return Err(ParseError::OutOfRange(lineno));
        }
        if !seen.insert((u.min(v), u.max(v))) {
            return Err(ParseError::DuplicateEdge(lineno));
        }
        edges.push(Edge::new(u, v, w));
    }
    if edges.len() != m {
        return Err(ParseError::CountMismatch {
            expected: m,
            found: edges.len(),
        });
    }
    Ok(Graph::from_dedup_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generators::randomize_weights(&generators::gnm(60, 150, 4), 99, 5);
        let text = to_edge_list(&g);
        let h = from_edge_list(&text).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn comments_and_default_weight() {
        let text = "# a comment\n3 2\n0 1\n# another\n1 2 7\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 2), Some(7));
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_edge_list("").unwrap_err(), ParseError::BadHeader);
        assert_eq!(from_edge_list("x y\n").unwrap_err(), ParseError::BadHeader);
        assert_eq!(
            from_edge_list("3 1\n0 zzz\n").unwrap_err(),
            ParseError::BadEdge(2)
        );
        assert_eq!(
            from_edge_list("3 1\n0 5\n").unwrap_err(),
            ParseError::OutOfRange(2)
        );
        assert_eq!(
            from_edge_list("3 2\n0 1\n").unwrap_err(),
            ParseError::CountMismatch {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(
            from_edge_list("3 2\n0 1\n1 0 9\n").unwrap_err(),
            ParseError::DuplicateEdge(3)
        );
        assert_eq!(
            from_edge_list("3 1\n1 1\n").unwrap_err(),
            ParseError::OutOfRange(2)
        );
    }

    #[test]
    fn hostile_header_does_not_preallocate() {
        // An absurd declared edge count must fail cleanly (CountMismatch),
        // not abort on a multi-exabyte Vec::with_capacity.
        let err = from_edge_list("4 123456789012345678\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::CountMismatch {
                expected: 123_456_789_012_345_678,
                found: 1
            }
        );
    }
}
