//! Union-find (disjoint set union) with path halving and union by size.
//!
//! The exact sequential reference for connectivity: every Monte-Carlo output
//! of the distributed algorithm is checked against labels produced here.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn count(&self) -> usize {
        self.components
    }

    /// Canonical labels: `label[v]` is the minimum vertex id in `v`'s set.
    /// Using the minimum id makes labels comparable across implementations.
    pub fn canonical_labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut min_of_root = vec![u32::MAX; n];
        for v in 0..n as u32 {
            let r = self.find(v);
            min_of_root[r as usize] = min_of_root[r as usize].min(v);
        }
        (0..n as u32)
            .map(|v| {
                let r = self.parent[v as usize]; // already halved to root by find above? not guaranteed
                let r = if self.parent[r as usize] == r {
                    r
                } else {
                    self.find_readonly(v)
                };
                min_of_root[r as usize]
            })
            .collect()
    }

    fn find_readonly(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert_eq!(uf.count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn canonical_labels_use_min_vertex() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        let labels = uf.canonical_labels();
        assert_eq!(labels[4], 2);
        assert_eq!(labels[5], 2);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn chain_unions_single_component() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.count(), 1);
        let labels = uf.canonical_labels();
        assert!(labels.iter().all(|&l| l == 0));
    }
}
