//! Seeded synthetic graph generators for every workload in DESIGN.md §4.
//!
//! All generators are deterministic in their seed, so experiments and tests
//! are exactly reproducible. Every family comes in two forms:
//!
//! * a `*_stream` variant returning a [`DynEdgeStream`] — the ingestion
//!   path for [`crate::sharded::ShardedGraph::from_stream`], which routes
//!   each edge to its endpoint home shards without a central `Vec<Edge>`;
//! * the classic materialized `Graph` constructor, *defined as* collecting
//!   the stream ([`stream::materialize`]), so the two paths are
//!   bit-identical by construction (property-tested in
//!   `tests/streaming.rs`).
//!
//! The scalable families (`gnp`, `gnm`, `path`, `cycle`, `grid`, `star`,
//! `complete`, `random_tree`, `random_connected`, and the
//! [`weighted_stream`] wrapper) stream lazily in O(1) memory per edge
//! (`gnm` holds its chosen index set, O(m) words). The small structured
//! test families (`planted_components`, `barbell`) are inherently
//! two-pass and stream from an internal buffer. The Figure-1 lower-bound
//! gadget lives in `kconn::lowerbound::figure1` (it also needs the
//! subgraph H); everything else is here.

use crate::graph::{Edge, Graph, VertexId, Weight};
use crate::stream::{self, DynEdgeStream, EdgeStream, VecStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`: every pair independently with probability `p`,
/// streamed with geometric skipping — O(1) state, O(m) total work.
pub fn gnp_stream(n: usize, p: f64, seed: u64) -> DynEdgeStream {
    assert!((0.0..=1.0).contains(&p));
    if p <= 0.0 || n < 2 {
        return Box::new(VecStream::new(n, Vec::new()));
    }
    if p >= 1.0 {
        return complete_stream(n);
    }
    let mut r = rng(seed);
    // Iterate pair indices 0..n(n-1)/2 with geometric jumps.
    let total: u64 = n as u64 * (n as u64 - 1) / 2;
    let log1p = (1.0 - p).ln();
    let mut i: u64 = 0;
    let mut done = false;
    Box::new(stream::from_fn(n, move || {
        if done {
            return None;
        }
        let u: f64 = r.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log1p).floor() as u64;
        i = i.saturating_add(skip);
        if i >= total {
            done = true;
            return None;
        }
        let (a, b) = pair_from_index(i, n as u64);
        i += 1;
        Some(Edge::new(a, b, 1))
    }))
}

/// Erdős–Rényi `G(n, p)`, materialized.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    stream::materialize(gnp_stream(n, p, seed))
}

/// Maps a linear index in `[0, n(n-1)/2)` to the lexicographic pair `(a, b)`.
fn pair_from_index(idx: u64, n: u64) -> (VertexId, VertexId) {
    // Row a starts at offset a*n - a*(a+1)/2 - a ... solve by walking rows is
    // O(n); use the closed-form via quadratic inversion instead.
    // Offset of row a is: S(a) = a*(2n - a - 1) / 2.
    // Find the largest a with S(a) <= idx.
    let fa = {
        let nf = n as f64;
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * idx as f64;
        ((2.0 * nf - 1.0 - disc.max(0.0).sqrt()) / 2.0).floor() as u64
    };
    let mut a = fa.min(n - 2);
    // Fix up float error by local search.
    let s = |a: u64| a * (2 * n - a - 1) / 2;
    while a > 0 && s(a) > idx {
        a -= 1;
    }
    while a < n - 2 && s(a + 1) <= idx {
        a += 1;
    }
    let b = a + 1 + (idx - s(a));
    (a as VertexId, b as VertexId)
}

/// Uniform `G(n, m)`: exactly `m` distinct edges chosen uniformly. Streams
/// from the chosen index set (O(m) words of state, no `Vec<Edge>`).
pub fn gnm_stream(n: usize, m: usize, seed: u64) -> DynEdgeStream {
    let total = n as u64 * (n as u64 - 1) / 2;
    assert!(m as u64 <= total, "too many edges requested");
    let mut r = rng(seed);
    let mut chosen: FxHashSet<u64> = FxHashSet::default();
    while chosen.len() < m {
        chosen.insert(r.gen_range(0..total));
    }
    // Emit in index order: the stream is a canonical function of the seed,
    // not of the hash set's internal layout (kcheck KC01; the collect here
    // is allowlisted because the very next line sorts it).
    let mut order: Vec<u64> = chosen.into_iter().collect();
    order.sort_unstable();
    let mut iter = order.into_iter();
    Box::new(stream::from_fn(n, move || {
        iter.next().map(|i| {
            let (a, b) = pair_from_index(i, n as u64);
            Edge::new(a, b, 1)
        })
    }))
}

/// Uniform `G(n, m)`, materialized.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    stream::materialize(gnm_stream(n, m, seed))
}

/// Simple path `0 - 1 - ... - (n-1)` (diameter `n-1`), streamed.
pub fn path_stream(n: usize) -> DynEdgeStream {
    let mut i = 0u32;
    let last = n.saturating_sub(1) as u32;
    Box::new(stream::from_fn(n, move || {
        if i < last {
            i += 1;
            Some(Edge::new(i - 1, i, 1))
        } else {
            None
        }
    }))
}

/// Simple path, materialized.
pub fn path(n: usize) -> Graph {
    stream::materialize(path_stream(n))
}

/// Cycle on `n >= 3` vertices, streamed.
pub fn cycle_stream(n: usize) -> DynEdgeStream {
    assert!(n >= 3);
    let mut i = 0usize;
    Box::new(stream::from_fn(n, move || {
        i += 1;
        if i < n {
            Some(Edge::new(i as u32 - 1, i as u32, 1))
        } else if i == n {
            Some(Edge::new(n as u32 - 1, 0, 1))
        } else {
            None
        }
    }))
}

/// Cycle, materialized.
pub fn cycle(n: usize) -> Graph {
    stream::materialize(cycle_stream(n))
}

/// `rows x cols` grid (diameter `rows + cols - 2`), streamed: per cell the
/// rightward edge, then the downward edge.
pub fn grid_stream(rows: usize, cols: usize) -> DynEdgeStream {
    let n = rows * cols;
    let id = move |r: usize, c: usize| (r * cols + c) as VertexId;
    let (mut r, mut c, mut down) = (0usize, 0usize, false);
    Box::new(stream::from_fn(n, move || loop {
        if r >= rows {
            return None;
        }
        if !down {
            down = true;
            if c + 1 < cols {
                return Some(Edge::new(id(r, c), id(r, c + 1), 1));
            }
        } else {
            let (cr, cc) = (r, c);
            down = false;
            c += 1;
            if c >= cols {
                c = 0;
                r += 1;
            }
            if cr + 1 < rows {
                return Some(Edge::new(id(cr, cc), id(cr + 1, cc), 1));
            }
        }
    }))
}

/// Grid, materialized.
pub fn grid(rows: usize, cols: usize) -> Graph {
    stream::materialize(grid_stream(rows, cols))
}

/// Star: vertex 0 joined to all others, streamed. The Theorem 2(b) worst
/// case — one home machine must learn the status of `n-1` edges.
pub fn star_stream(n: usize) -> DynEdgeStream {
    assert!(n >= 2);
    let mut v = 1u32;
    Box::new(stream::from_fn(n, move || {
        if (v as usize) < n {
            v += 1;
            Some(Edge::new(0, v - 1, 1))
        } else {
            None
        }
    }))
}

/// Star, materialized.
pub fn star(n: usize) -> Graph {
    stream::materialize(star_stream(n))
}

/// Complete graph `K_n`, streamed.
pub fn complete_stream(n: usize) -> DynEdgeStream {
    let (mut a, mut b) = (0u32, 0u32);
    Box::new(stream::from_fn(n, move || {
        b += 1;
        if b as usize >= n {
            a += 1;
            b = a + 1;
        }
        if (a as usize) < n.saturating_sub(1) && (b as usize) < n {
            Some(Edge::new(a, b, 1))
        } else {
            None
        }
    }))
}

/// Complete graph, materialized.
pub fn complete(n: usize) -> Graph {
    stream::materialize(complete_stream(n))
}

/// Uniform random labelled tree via a Prüfer-like attachment, streamed:
/// vertex `i` attaches to a uniform vertex in `[0, i)`. Connected, `n - 1`
/// edges.
pub fn random_tree_stream(n: usize, seed: u64) -> DynEdgeStream {
    let mut r = rng(seed);
    let mut v = 1u32;
    Box::new(stream::from_fn(n, move || {
        if (v as usize) < n {
            let e = Edge::new(v, r.gen_range(0..v), 1);
            v += 1;
            Some(e)
        } else {
            None
        }
    }))
}

/// Random tree, materialized.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    stream::materialize(random_tree_stream(n, seed))
}

/// A connected graph, streamed: random tree plus `extra` random non-tree
/// edges (rejection-sampled against the O(m)-word seen set).
pub fn random_connected_stream(n: usize, extra: usize, seed: u64) -> DynEdgeStream {
    let mut r = rng(seed);
    let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let total = n as u64 * (n as u64 - 1) / 2;
    let budget = (total - (n as u64 - 1)).min(extra as u64);
    let mut v = 1u32;
    let mut extras = 0u64;
    Box::new(stream::from_fn(n, move || {
        if (v as usize) < n {
            let u = r.gen_range(0..v);
            seen.insert((u.min(v), u.max(v)));
            let e = Edge::new(v, u, 1);
            v += 1;
            return Some(e);
        }
        while extras < budget {
            let a = r.gen_range(0..n as u32);
            let b = r.gen_range(0..n as u32);
            if a == b {
                continue;
            }
            if seen.insert((a.min(b), a.max(b))) {
                extras += 1;
                return Some(Edge::new(a, b, 1));
            }
        }
        None
    }))
}

/// A connected graph, materialized.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    stream::materialize(random_connected_stream(n, extra, seed))
}

/// Planted components: `parts` disjoint random-connected blocks of (roughly)
/// equal size. Vertex ids are shuffled so components do not align with
/// machine hashing. Ground truth component count == `parts`. Two-pass
/// construction; streams from an internal buffer.
fn planted_components_edges(n: usize, parts: usize, extra_per_part: usize, seed: u64) -> Vec<Edge> {
    assert!(parts >= 1 && parts <= n);
    let mut r = rng(seed);
    // Shuffled vertex ids.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = r.gen_range(0..=i);
        ids.swap(i, j);
    }
    let mut edges = Vec::new();
    let base = n / parts;
    let mut start = 0usize;
    for p in 0..parts {
        let size = base + usize::from(p < n % parts);
        let block = &ids[start..start + size];
        start += size;
        if size <= 1 {
            continue;
        }
        // Random tree within the block...
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        for i in 1..size {
            let j = r.gen_range(0..i);
            let (a, b) = (block[i], block[j]);
            seen.insert((a.min(b), a.max(b)));
            edges.push(Edge::new(a, b, 1));
        }
        // ...plus extra intra-block edges.
        let mut added = 0usize;
        let cap = size * (size - 1) / 2 - (size - 1);
        while added < extra_per_part.min(cap) {
            let a = block[r.gen_range(0..size)];
            let b = block[r.gen_range(0..size)];
            if a == b {
                continue;
            }
            if seen.insert((a.min(b), a.max(b))) {
                edges.push(Edge::new(a, b, 1));
                added += 1;
            }
        }
    }
    edges
}

/// Planted components, streamed (buffered: the block shuffle is two-pass).
pub fn planted_components_stream(
    n: usize,
    parts: usize,
    extra_per_part: usize,
    seed: u64,
) -> DynEdgeStream {
    Box::new(VecStream::new(
        n,
        planted_components_edges(n, parts, extra_per_part, seed),
    ))
}

/// Planted components, materialized.
pub fn planted_components(n: usize, parts: usize, extra_per_part: usize, seed: u64) -> Graph {
    stream::materialize(planted_components_stream(n, parts, extra_per_part, seed))
}

/// Barbell: two random-connected dense blocks joined by `bridge_w`-weighted
/// bridges. Known min cut = sum of bridge weights (when blocks are denser).
fn barbell_edges(block: usize, bridges: usize, bridge_w: Weight, seed: u64) -> Vec<Edge> {
    assert!(block >= 2 && bridges >= 1 && bridges <= block);
    let g1 = random_connected(block, block, seed ^ 1);
    let g2 = random_connected(block, block, seed ^ 2);
    let mut edges: Vec<Edge> = Vec::new();
    for e in g1.edges() {
        edges.push(Edge::new(e.u, e.v, bridge_w * 4 + 1));
    }
    for e in g2.edges() {
        edges.push(Edge::new(
            e.u + block as u32,
            e.v + block as u32,
            bridge_w * 4 + 1,
        ));
    }
    for i in 0..bridges as u32 {
        edges.push(Edge::new(i, i + block as u32, bridge_w));
    }
    edges
}

/// Barbell, streamed (buffered: built from two block graphs).
pub fn barbell_stream(block: usize, bridges: usize, bridge_w: Weight, seed: u64) -> DynEdgeStream {
    Box::new(VecStream::new(
        2 * block,
        barbell_edges(block, bridges, bridge_w, seed),
    ))
}

/// Barbell, materialized.
pub fn barbell(block: usize, bridges: usize, bridge_w: Weight, seed: u64) -> Graph {
    stream::materialize(barbell_stream(block, bridges, bridge_w, seed))
}

/// Re-weights an edge stream with random weights in `[1, max_w]` — the
/// streaming counterpart of [`randomize_weights`]; the two agree edge for
/// edge on the same seed because weights are drawn in stream order.
pub fn weighted_stream(
    mut inner: impl EdgeStream + 'static,
    max_w: Weight,
    seed: u64,
) -> DynEdgeStream {
    let mut r = rng(seed);
    let n = inner.n();
    Box::new(stream::from_fn(n, move || {
        inner
            .next()
            .map(|e| Edge::new(e.u, e.v, r.gen_range(1..=max_w)))
    }))
}

/// Assigns distinct-looking random weights in `[1, max_w]` to a graph's
/// edges (ties remain possible; the `(w,u,v)` comparator handles them).
pub fn randomize_weights(g: &Graph, max_w: Weight, seed: u64) -> Graph {
    let mut r = rng(seed);
    let edges = g
        .edges()
        .iter()
        .map(|e| Edge::new(e.u, e.v, r.gen_range(1..=max_w)))
        .collect();
    Graph::from_dedup_edges(g.n(), edges)
}

/// An even cycle (bipartite) or odd cycle (not), streamed — verification
/// workloads.
pub fn parity_cycle_stream(n: usize, odd: bool) -> DynEdgeStream {
    let n = if (n % 2 == 1) == odd { n } else { n + 1 };
    cycle_stream(n.max(3))
}

/// Parity cycle, materialized.
pub fn parity_cycle(n: usize, odd: bool) -> Graph {
    stream::materialize(parity_cycle_stream(n, odd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refalgo;

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 17u64;
        let mut idx = 0u64;
        for a in 0..n - 1 {
            for b in (a + 1)..n {
                assert_eq!(pair_from_index(idx, n), (a as u32, b as u32), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gnp_edge_count_is_plausible() {
        let n = 400;
        let p = 0.02;
        let g = gnp(n, p, 7);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let m = g.m() as f64;
        assert!(
            (m - expect).abs() < 5.0 * expect.sqrt() + 10.0,
            "m={m} expect~{expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnm_exact_count_and_no_duplicates() {
        let g = gnm(100, 300, 3);
        assert_eq!(g.m(), 300);
    }

    #[test]
    fn structured_generators_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(grid(3, 4).m(), 3 * 3 + 2 * 4);
        assert_eq!(star(6).m(), 5);
        assert_eq!(complete(6).m(), 15);
        assert_eq!(refalgo::diameter_lower_bound(&path(50), 0), 49);
    }

    #[test]
    fn degenerate_sizes_stream_cleanly() {
        assert_eq!(path(0).m(), 0);
        assert_eq!(path(1).m(), 0);
        assert_eq!(grid(1, 1).m(), 0);
        assert_eq!(complete(1).m(), 0);
        assert_eq!(complete(2).m(), 1);
    }

    #[test]
    fn random_tree_is_connected_acyclic() {
        let g = random_tree(200, 11);
        assert_eq!(g.m(), 199);
        assert!(refalgo::is_connected(&g));
        assert!(!refalgo::has_cycle(&g));
    }

    #[test]
    fn random_connected_is_connected_with_extras() {
        let g = random_connected(150, 100, 5);
        assert!(refalgo::is_connected(&g));
        assert_eq!(g.m(), 149 + 100);
    }

    #[test]
    fn planted_components_have_exact_count() {
        for parts in [1usize, 2, 5, 9] {
            let g = planted_components(300, parts, 3, 42 + parts as u64);
            assert_eq!(refalgo::component_count(&g), parts, "parts {parts}");
        }
    }

    #[test]
    fn barbell_min_cut_is_bridges() {
        let g = barbell(8, 2, 5, 9);
        assert_eq!(crate::mincut::stoer_wagner(&g), Some(10));
    }

    #[test]
    fn randomize_weights_preserves_topology() {
        let g = grid(4, 4);
        let w = randomize_weights(&g, 1000, 13);
        assert_eq!(w.m(), g.m());
        assert!(w.edges().iter().all(|e| (1..=1000).contains(&e.w)));
        assert!(w
            .edges()
            .iter()
            .zip(g.edges())
            .all(|(a, b)| (a.u, a.v) == (b.u, b.v)));
    }

    #[test]
    fn weighted_stream_matches_randomize_weights() {
        let g = randomize_weights(&gnm(80, 200, 5), 777, 9);
        let s = stream::materialize(weighted_stream(gnm_stream(80, 200, 5), 777, 9));
        assert_eq!(g.edges(), s.edges());
    }

    #[test]
    fn parity_cycle_parities() {
        assert!(crate::refalgo::bipartition(&parity_cycle(10, false)).is_some());
        assert!(crate::refalgo::bipartition(&parity_cycle(10, true)).is_none());
        assert!(crate::refalgo::bipartition(&parity_cycle(11, true)).is_none());
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = gnp(200, 0.05, 99);
        let b = gnp(200, 0.05, 99);
        assert_eq!(a.edges(), b.edges());
        let c = gnm(200, 400, 5);
        let d = gnm(200, 400, 5);
        assert_eq!(c.edges(), d.edges());
    }

    #[test]
    fn streams_are_exhausted_and_fused() {
        let mut s = star_stream(4);
        assert_eq!(s.by_ref().count(), 3);
        assert_eq!(s.next(), None);
        assert_eq!(s.next(), None);
    }
}
