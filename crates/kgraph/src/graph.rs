//! The undirected input graph `G` of the k-machine model.
//!
//! Vertices carry integer ids from `[n]` (paper §1.1). Edges are undirected
//! and may carry weights; the MST algorithms rely on the *tie-free*
//! lexicographic comparator [`Graph::edge_key`] so the minimum spanning tree
//! is unique even when raw weights repeat.

use rustc_hash::FxHashSet;

/// A vertex identifier in `[0, n)`.
pub type VertexId = u32;

/// An edge weight. Integral weights keep the distributed comparisons exact.
pub type Weight = u64;

/// An undirected edge as stored in the graph: canonical form `u < v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Weight (1 for unweighted graphs).
    pub w: Weight,
}

impl Edge {
    /// Canonicalizes an endpoint pair into `u < v` form.
    pub fn new(a: VertexId, b: VertexId, w: Weight) -> Self {
        assert_ne!(a, b, "self-loops are not part of the model");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Edge { u, v, w }
    }

    /// The endpoint that is not `x` (panics if `x` is not an endpoint).
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            debug_assert_eq!(x, self.v);
            self.u
        }
    }
}

/// An undirected graph on vertices `0..n` with adjacency lists.
///
/// The representation matches the model's vertex-partition view: the home
/// machine of a vertex knows the vertex's full adjacency (neighbor ids and
/// edge weights), which is exactly what [`Graph::neighbors`] exposes.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR-style adjacency: for vertex `v`, `adj[adj_off[v]..adj_off[v+1]]`
    /// holds `(neighbor, weight)` pairs.
    adj_off: Vec<u32>,
    adj: Vec<(VertexId, Weight)>,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges (same endpoints)
    /// are rejected; self-loops are rejected by [`Edge::new`].
    pub fn from_edges(
        n: usize,
        list: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut edges: Vec<Edge> = Vec::new();
        let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        for (a, b, w) in list {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "endpoint out of range"
            );
            let e = Edge::new(a, b, w);
            assert!(seen.insert((e.u, e.v)), "duplicate edge ({}, {})", e.u, e.v);
            edges.push(e);
        }
        Self::from_dedup_edges(n, edges)
    }

    /// Builds a graph from already-canonical, duplicate-free edges.
    pub fn from_dedup_edges(n: usize, edges: Vec<Edge>) -> Self {
        let mut deg = vec![0u32; n + 1];
        for e in &edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        let mut adj_off = deg;
        for i in 1..adj_off.len() {
            adj_off[i] += adj_off[i - 1];
        }
        let mut cursor = adj_off.clone();
        let mut adj = vec![(0 as VertexId, 0 as Weight); edges.len() * 2];
        for e in &edges {
            adj[cursor[e.u as usize] as usize] = (e.v, e.w);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize] as usize] = (e.u, e.w);
            cursor[e.v as usize] += 1;
        }
        Graph {
            n,
            edges,
            adj_off,
            adj,
        }
    }

    /// Builds an unweighted graph (all weights 1).
    pub fn unweighted(n: usize, list: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        Self::from_edges(n, list.into_iter().map(|(a, b)| (a, b, 1)))
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// All edges in canonical `u < v` form.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The `(neighbor, weight)` adjacency of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, Weight)] {
        let lo = self.adj_off[v as usize] as usize;
        let hi = self.adj_off[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `(a, b)` is an edge (linear scan of the smaller adjacency).
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (x, y) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(x).iter().any(|&(nb, _)| nb == y)
    }

    /// The weight of edge `(a, b)` if present.
    pub fn edge_weight(&self, a: VertexId, b: VertexId) -> Option<Weight> {
        self.neighbors(a)
            .iter()
            .find(|&&(nb, _)| nb == b)
            .map(|&(_, w)| w)
    }

    /// The tie-free comparison key for MST algorithms: `(w, u, v)`.
    /// Lexicographic order on this key makes every edge weight distinct,
    /// which makes the MST unique (standard perturbation argument; see
    /// DESIGN.md §3.6).
    pub fn edge_key(e: &Edge) -> (Weight, VertexId, VertexId) {
        (e.w, e.u, e.v)
    }

    /// Returns a copy with the given edges removed (used by the verification
    /// problems of Theorem 4, e.g. cut and e-cycle verification).
    pub fn without_edges(&self, remove: &FxHashSet<(VertexId, VertexId)>) -> Graph {
        let kept = self
            .edges
            .iter()
            .filter(|e| !remove.contains(&(e.u, e.v)))
            .copied()
            .collect();
        Graph::from_dedup_edges(self.n, kept)
    }

    /// Returns the subgraph with only the given edges kept.
    pub fn edge_subgraph(&self, keep: &FxHashSet<(VertexId, VertexId)>) -> Graph {
        let kept = self
            .edges
            .iter()
            .filter(|e| keep.contains(&(e.u, e.v)))
            .copied()
            .collect();
        Graph::from_dedup_edges(self.n, kept)
    }

    /// The bipartite double cover `D(G)`: vertices `v0 = v` and `v1 = v + n`;
    /// every edge `(u, v)` becomes `(u0, v1)` and `(u1, v0)`.
    ///
    /// `G` is bipartite iff every connected component of `G` lifts to *two*
    /// components of `D(G)` (the Ahn–Guha–McGregor reduction used by
    /// Theorem 4's bipartiteness verification). The construction is purely
    /// local per edge, so the distributed version needs no communication.
    pub fn bipartite_double_cover(&self) -> Graph {
        let n = self.n;
        let edges = self
            .edges
            .iter()
            .flat_map(|e| {
                [
                    Edge::new(e.u, e.v + n as VertexId, e.w),
                    Edge::new(e.v, e.u + n as VertexId, e.w),
                ]
            })
            .collect();
        Graph::from_dedup_edges(2 * n, edges)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u128 {
        self.edges.iter().map(|e| e.w as u128).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::unweighted(3, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn adjacency_is_symmetric_and_complete() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3u32 {
            assert_eq!(g.degree(v), 2);
            for &(nb, _) in g.neighbors(v) {
                assert!(g.neighbors(nb).iter().any(|&(x, _)| x == v));
            }
        }
    }

    #[test]
    fn edge_canonicalization() {
        let e = Edge::new(5, 2, 9);
        assert_eq!((e.u, e.v, e.w), (2, 5, 9));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Edge::new(3, 3, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let _ = Graph::unweighted(3, [(0, 1), (1, 0)]);
    }

    #[test]
    fn has_edge_and_weight_lookup() {
        let g = Graph::from_edges(4, [(0, 1, 7), (2, 3, 9)]);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_weight(3, 2), Some(9));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn without_edges_removes_only_listed() {
        let g = triangle();
        let mut rm = FxHashSet::default();
        rm.insert((0u32, 1u32));
        let h = g.without_edges(&rm);
        assert_eq!(h.m(), 2);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn double_cover_of_triangle_is_hexagon() {
        // An odd cycle's double cover is a single 2n-cycle (connected),
        // witnessing non-bipartiteness.
        let g = triangle();
        let d = g.bipartite_double_cover();
        assert_eq!(d.n(), 6);
        assert_eq!(d.m(), 6);
        for v in 0..6u32 {
            assert_eq!(d.degree(v), 2);
        }
    }

    #[test]
    fn double_cover_of_even_cycle_splits() {
        let g = Graph::unweighted(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = g.bipartite_double_cover();
        assert_eq!(d.n(), 8);
        assert_eq!(d.m(), 8);
        // Bipartite graph: the cover is two disjoint copies; verify by
        // checking 0 and 0+n are not connected via a quick BFS here.
        let mut seen = [false; 8];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(x) = stack.pop() {
            for &(nb, _) in d.neighbors(x) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        assert!(
            !seen[4],
            "v0 and v1 copies must be disconnected for bipartite G"
        );
    }
}
