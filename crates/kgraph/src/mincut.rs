//! Exact global minimum cut: Stoer–Wagner.
//!
//! The reference for Theorem 3's O(log n)-approximation experiments.
//! O(n^3) time, fine for the instance sizes where an exact answer is needed.

use crate::graph::Graph;

/// The exact weight of a global minimum cut of a connected graph.
///
/// Returns `None` if the graph is disconnected (min cut 0 by convention is
/// reported as `Some(0)` only for `n >= 2`; `n < 2` yields `None` since no
/// cut exists).
#[allow(clippy::needless_range_loop)] // index arithmetic over `active` is clearer here
pub fn stoer_wagner(g: &Graph) -> Option<u64> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    // Dense adjacency matrix of weights; u64 is exact.
    let mut w = vec![vec![0u64; n]; n];
    for e in g.edges() {
        w[e.u as usize][e.v as usize] += e.w;
        w[e.v as usize][e.u as usize] += e.w;
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum-adjacency ordering on the active vertices.
        let a = active.len();
        let mut weights = vec![0u64; a];
        let mut added = vec![false; a];
        let mut prev;
        let mut last = 0usize;
        added[0] = true;
        for it in 1..a {
            // Update connectivity weights to the growing set from the vertex
            // just added (incremental, keeps the loop O(a) per step).
            for j in 0..a {
                if !added[j] {
                    weights[j] += w[active[last]][active[j]];
                }
            }
            let mut pick = usize::MAX;
            let mut pick_w = 0u64;
            for j in 0..a {
                if !added[j] && (pick == usize::MAX || weights[j] > pick_w) {
                    pick = j;
                    pick_w = weights[j];
                }
            }
            added[pick] = true;
            prev = last;
            last = pick;
            if it == a - 1 {
                // Cut-of-the-phase: last added vertex vs the rest.
                best = best.min(pick_w);
                // Merge `last` into `prev`.
                let (vl, vp) = (active[last], active[prev]);
                for j in 0..n {
                    w[vp][j] += w[vl][j];
                    w[j][vp] = w[vp][j];
                }
                w[vp][vp] = 0;
                active.remove(last);
            }
        }
    }
    Some(best)
}

/// Brute-force min cut over all 2^(n-1) bipartitions (tests only, n <= ~20).
pub fn brute_force_min_cut(g: &Graph) -> Option<u64> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    assert!(n <= 24, "brute force limited to small n");
    let mut best = u64::MAX;
    // Fix vertex 0 on side A to halve the enumeration.
    for mask in 0..(1u32 << (n - 1)) {
        let side = |v: u32| -> bool {
            if v == 0 {
                true
            } else {
                (mask >> (v - 1)) & 1 == 1
            }
        };
        if (1..n as u32).all(&side) {
            continue; // not a cut: everything on one side
        }
        let cut: u64 = g
            .edges()
            .iter()
            .filter(|e| side(e.u) != side(e.v))
            .map(|e| e.w)
            .sum();
        best = best.min(cut);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn path_min_cut_is_lightest_edge() {
        let g = Graph::from_edges(4, [(0, 1, 5), (1, 2, 2), (2, 3, 7)]);
        assert_eq!(stoer_wagner(&g), Some(2));
    }

    #[test]
    fn cycle_min_cut_is_two_lightest_crossing() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        assert_eq!(stoer_wagner(&g), Some(2));
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = Graph::unweighted(4, [(0, 1), (2, 3)]);
        assert_eq!(stoer_wagner(&g), Some(0));
    }

    #[test]
    fn barbell_min_cut_is_the_bridge() {
        // Two K4s joined by one bridge of weight 3.
        let mut edges = vec![];
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j, 10));
                edges.push((i + 4, j + 4, 10));
            }
        }
        edges.push((0, 4, 3));
        let g = Graph::from_edges(8, edges);
        assert_eq!(stoer_wagner(&g), Some(3));
    }

    #[test]
    fn matches_brute_force_on_random_small_graphs() {
        use krand::prf::Prf;
        let prf = Prf::new(2024);
        for trial in 0..20u64 {
            let n = 6 + (prf.eval(0, trial) % 4) as usize; // 6..9
            let mut edges = vec![];
            let mut idx = 0u64;
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    idx += 1;
                    if prf.eval(trial, idx) % 100 < 55 {
                        let w = 1 + prf.eval(trial.wrapping_add(7), idx) % 9;
                        edges.push((i, j, w));
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            assert_eq!(
                stoer_wagner(&g),
                brute_force_min_cut(&g),
                "trial {trial} n {n}"
            );
        }
    }
}
