//! Exact sequential reference algorithms (ground truth for every
//! Monte-Carlo distributed output).

use crate::graph::{Edge, Graph, VertexId, Weight};
use crate::unionfind::UnionFind;
use std::collections::VecDeque;

/// Connected-component labels: `label[v]` = min vertex id in `v`'s component.
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    uf.canonical_labels()
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    uf.count()
}

/// Whether the whole graph is connected (`n == 0` counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || component_count(g) == 1
}

/// Whether `s` and `t` are in the same component.
pub fn st_connected(g: &Graph, s: VertexId, t: VertexId) -> bool {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    uf.connected(s, t)
}

/// BFS distances from `src` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(x) = q.pop_front() {
        let d = dist[x as usize];
        for &(nb, _) in g.neighbors(x) {
            if dist[nb as usize] == u32::MAX {
                dist[nb as usize] = d + 1;
                q.push_back(nb);
            }
        }
    }
    dist
}

/// Eccentricity-based diameter estimate: max BFS distance from `src`'s
/// component (exact diameter for trees when double-sweeped; a lower bound in
/// general, which is all the flooding baseline analysis needs).
pub fn eccentricity(g: &Graph, src: VertexId) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Double-sweep diameter lower bound: BFS from `src`, then BFS from the
/// farthest vertex found.
pub fn diameter_lower_bound(g: &Graph, src: VertexId) -> u32 {
    let d0 = bfs_distances(g, src);
    let far = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map_or(src, |(v, _)| v as u32);
    eccentricity(g, far)
}

/// 2-coloring test: returns a coloring if `g` is bipartite, `None` otherwise.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let n = g.n();
    let mut color = vec![u8::MAX; n];
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        let mut q = VecDeque::from([start]);
        while let Some(x) = q.pop_front() {
            let cx = color[x as usize];
            for &(nb, _) in g.neighbors(x) {
                if color[nb as usize] == u8::MAX {
                    color[nb as usize] = 1 - cx;
                    q.push_back(nb);
                } else if color[nb as usize] == cx {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Whether the graph contains any cycle. A forest has `n - #components`
/// edges; any extra edge closes a cycle.
pub fn has_cycle(g: &Graph) -> bool {
    g.m() > g.n() - component_count(g)
}

/// Whether edge `(u, v)` lies on some cycle: true iff `u` and `v` remain
/// connected after removing the edge.
pub fn edge_on_cycle(g: &Graph, u: VertexId, v: VertexId) -> bool {
    debug_assert!(g.has_edge(u, v));
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        if (e.u, e.v) != (u.min(v), u.max(v)) {
            uf.union(e.u, e.v);
        }
    }
    uf.connected(u, v)
}

/// Kruskal's algorithm with the tie-free `(w, u, v)` comparator.
/// Returns the unique minimum spanning forest.
pub fn kruskal(g: &Graph) -> Vec<Edge> {
    let mut order: Vec<&Edge> = g.edges().iter().collect();
    order.sort_unstable_by_key(|e| Graph::edge_key(e));
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::new();
    for e in order {
        if uf.union(e.u, e.v) {
            out.push(*e);
        }
    }
    out
}

/// Total weight of an edge set.
pub fn forest_weight(edges: &[Edge]) -> u128 {
    edges.iter().map(|e| e.w as u128).sum()
}

/// Checks that `edges` forms a spanning forest of `g` with one tree per
/// component of `g` (i.e. a spanning tree of each component).
pub fn is_spanning_forest(g: &Graph, edges: &[Edge]) -> bool {
    // Every claimed edge must exist in g with matching weight.
    for e in edges {
        match g.edge_weight(e.u, e.v) {
            Some(w) if w == e.w => {}
            _ => return false,
        }
    }
    // Acyclic and spanning: unions must all succeed, and the final component
    // count must match g's.
    let mut uf = UnionFind::new(g.n());
    for e in edges {
        if !uf.union(e.u, e.v) {
            return false; // cycle
        }
    }
    uf.count() == component_count(g)
}

/// The weight of each vertex's minimum-key incident edge; `None` for
/// isolated vertices. Used to sanity-check MWOE selection in tests.
pub fn min_incident_key(g: &Graph, v: VertexId) -> Option<(Weight, VertexId, VertexId)> {
    g.neighbors(v)
        .iter()
        .map(|&(nb, w)| {
            let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
            (w, a, b)
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::unweighted(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn components_of_disjoint_triangles() {
        let g = two_triangles();
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(component_count(&g), 2);
        assert!(!is_connected(&g));
        assert!(st_connected(&g, 0, 2));
        assert!(!st_connected(&g, 0, 3));
    }

    #[test]
    fn bfs_on_path() {
        let g = Graph::unweighted(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter_lower_bound(&g, 2), 4);
    }

    #[test]
    fn bipartition_detects_odd_cycles() {
        let even = Graph::unweighted(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(bipartition(&even).is_some());
        let odd = Graph::unweighted(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(bipartition(&odd).is_none());
    }

    #[test]
    fn bipartition_coloring_is_proper() {
        let g = Graph::unweighted(6, [(0, 3), (0, 4), (1, 4), (1, 5), (2, 5)]);
        let c = bipartition(&g).expect("bipartite");
        for e in g.edges() {
            assert_ne!(c[e.u as usize], c[e.v as usize]);
        }
    }

    #[test]
    fn cycle_detection() {
        let tree = Graph::unweighted(4, [(0, 1), (1, 2), (1, 3)]);
        assert!(!has_cycle(&tree));
        let g = two_triangles();
        assert!(has_cycle(&g));
        assert!(edge_on_cycle(&g, 0, 1));
        let bridge = Graph::unweighted(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(!edge_on_cycle(&bridge, 1, 2));
    }

    #[test]
    fn kruskal_on_weighted_square() {
        // Square with one heavy diagonal: MST must avoid the heaviest edge.
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)]);
        let mst = kruskal(&g);
        assert_eq!(mst.len(), 3);
        assert_eq!(forest_weight(&mst), 6);
        assert!(is_spanning_forest(&g, &mst));
    }

    #[test]
    fn kruskal_ties_are_deterministic() {
        // All weights equal: the (w, u, v) comparator picks a unique forest.
        let g = Graph::from_edges(4, [(0, 1, 5), (1, 2, 5), (2, 3, 5), (3, 0, 5)]);
        let a = kruskal(&g);
        let b = kruskal(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(is_spanning_forest(&g, &a));
    }

    #[test]
    fn spanning_forest_validation_rejects_bad_sets() {
        let g = two_triangles();
        // A cycle is not a forest.
        let cyc: Vec<Edge> = g.edges()[0..3].to_vec();
        assert!(!is_spanning_forest(&g, &cyc));
        // Too few edges leaves extra components.
        let forest = vec![g.edges()[0]];
        assert!(!is_spanning_forest(&g, &forest));
        // A proper spanning forest passes.
        let mst = kruskal(&g);
        assert!(is_spanning_forest(&g, &mst));
    }

    #[test]
    fn min_incident_key_picks_lightest() {
        let g = Graph::from_edges(3, [(0, 1, 9), (0, 2, 4)]);
        assert_eq!(min_incident_key(&g, 0), Some((4, 0, 2)));
        assert_eq!(min_incident_key(&g, 1), Some((9, 0, 1)));
    }
}
