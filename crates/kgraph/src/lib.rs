#![warn(missing_docs)]
//! Graph substrate for the k-machine reproduction.
//!
//! Provides the input-graph representations shared by all algorithms — the
//! materialized [`Graph`] used by the sequential oracles and the
//! per-machine [`ShardedGraph`] the distributed algorithms actually run
//! against (DESIGN.md §3.7) — plus streaming ingestion ([`stream`]), seeded
//! synthetic generators for every workload in the experiment index
//! (DESIGN.md §4), the random vertex / random edge partition models of the
//! paper (§1.1, §1.3), and exact sequential reference algorithms used as
//! ground truth for the Monte-Carlo distributed algorithms: union-find
//! connectivity, Kruskal MST, BFS / s-t connectivity / bipartiteness, and
//! Stoer–Wagner min-cut.

pub mod generators;
pub mod graph;
pub mod io;
pub mod mincut;
pub mod partition;
pub mod refalgo;
pub mod sharded;
pub mod stream;
pub mod unionfind;

pub use graph::{Graph, VertexId, Weight};
pub use partition::{Partition, PartitionKind};
pub use sharded::{ShardView, ShardedGraph};
pub use stream::{DynEdgeStream, EdgeStream};
pub use unionfind::UnionFind;
