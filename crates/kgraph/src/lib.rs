#![warn(missing_docs)]
//! Graph substrate for the k-machine reproduction.
//!
//! Provides the input-graph representation shared by all algorithms, seeded
//! synthetic generators for every workload in the experiment index
//! (DESIGN.md §4), the random vertex / random edge partition models of the
//! paper (§1.1, §1.3), and exact sequential reference algorithms used as
//! ground truth for the Monte-Carlo distributed algorithms: union-find
//! connectivity, Kruskal MST, BFS / s-t connectivity / bipartiteness, and
//! Stoer–Wagner min-cut.

pub mod generators;
pub mod graph;
pub mod io;
pub mod mincut;
pub mod partition;
pub mod refalgo;
pub mod unionfind;

pub use graph::{Graph, VertexId, Weight};
pub use partition::{Partition, PartitionKind};
pub use unionfind::UnionFind;
