//! Streaming edge ingestion: the [`EdgeStream`] trait.
//!
//! The k-machine model never has a central copy of the input graph: each
//! machine receives only the edges incident to its `~n/k` home vertices.
//! [`EdgeStream`] is the ingestion-side contract that makes this real in
//! the simulator — a producer of canonical edges that
//! [`crate::sharded::ShardedGraph::from_stream`] consumes one edge at a
//! time, routing each to its endpoint home shards *without ever building a
//! `Vec<Edge>` of the whole graph*.
//!
//! Every generator in [`crate::generators`] has a `*_stream` variant, and
//! the materialized `Graph` constructors are defined as collecting those
//! streams, so both paths are bit-identical by construction (property
//! tested in `tests/streaming.rs`).

use crate::graph::{Edge, Graph};

/// A producer of canonical (`u < v`, duplicate-free) edges on a fixed
/// vertex set `0..n`.
///
/// The trait extends [`Iterator`] so streams compose with the standard
/// adapter vocabulary; the extra [`EdgeStream::n`] accessor carries the
/// vertex-universe size that a bare edge iterator cannot know (isolated
/// vertices produce no edges but still need a home machine).
pub trait EdgeStream: Iterator<Item = Edge> {
    /// Number of vertices of the underlying graph.
    fn n(&self) -> usize;
}

impl<S: EdgeStream + ?Sized> EdgeStream for Box<S> {
    fn n(&self) -> usize {
        (**self).n()
    }
}

/// A heap-allocated stream with an erased concrete type (what the
/// generator front ends and the CLI hand around).
pub type DynEdgeStream = Box<dyn EdgeStream>;

/// A lazy stream driven by a stateful closure (the scalable generator
/// families are written this way: O(1) memory per edge produced).
pub struct FnStream<F> {
    n: usize,
    next: F,
}

impl<F: FnMut() -> Option<Edge>> Iterator for FnStream<F> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        (self.next)()
    }
}

impl<F: FnMut() -> Option<Edge>> EdgeStream for FnStream<F> {
    fn n(&self) -> usize {
        self.n
    }
}

/// Builds a lazy stream from a stateful closure.
pub fn from_fn<F: FnMut() -> Option<Edge>>(n: usize, next: F) -> FnStream<F> {
    FnStream { n, next }
}

/// A stream over an already-materialized edge list (used by the small
/// structured test families whose construction is inherently two-pass,
/// e.g. planted components; still duplicate-free and canonical).
pub struct VecStream {
    n: usize,
    iter: std::vec::IntoIter<Edge>,
}

impl VecStream {
    /// Wraps a canonical, duplicate-free edge list.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        VecStream {
            n,
            iter: edges.into_iter(),
        }
    }
}

impl Iterator for VecStream {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl EdgeStream for VecStream {
    fn n(&self) -> usize {
        self.n
    }
}

/// A borrowed stream over an existing graph's edge list (how a
/// [`crate::sharded::ShardedGraph`] is built from a `Graph` + partition).
pub struct GraphStream<'g> {
    g: &'g Graph,
    pos: usize,
}

impl<'g> GraphStream<'g> {
    /// Streams `g.edges()` in order.
    pub fn new(g: &'g Graph) -> Self {
        GraphStream { g, pos: 0 }
    }
}

impl Iterator for GraphStream<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let e = self.g.edges().get(self.pos).copied();
        self.pos += 1;
        e
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.g.m() - self.pos.min(self.g.m());
        (rem, Some(rem))
    }
}

impl EdgeStream for GraphStream<'_> {
    fn n(&self) -> usize {
        self.g.n()
    }
}

/// Collects a stream into a materialized [`Graph`]. This is the bridge the
/// generator front ends use: `gnp(…) == materialize(gnp_stream(…))`, so the
/// streaming and materialized paths cannot drift apart.
pub fn materialize(stream: impl EdgeStream) -> Graph {
    let n = stream.n();
    let edges: Vec<Edge> = stream.collect();
    Graph::from_dedup_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stream_yields_until_exhausted() {
        let mut i = 0u32;
        let s = from_fn(5, move || {
            if i < 4 {
                i += 1;
                Some(Edge::new(i - 1, i, 1))
            } else {
                None
            }
        });
        assert_eq!(s.n(), 5);
        let g = materialize(s);
        assert_eq!((g.n(), g.m()), (5, 4));
    }

    #[test]
    fn graph_stream_round_trips() {
        let g = crate::generators::gnm(40, 90, 3);
        let h = materialize(GraphStream::new(&g));
        assert_eq!(g.edges(), h.edges());
        assert_eq!(g.n(), h.n());
    }

    #[test]
    fn vec_stream_preserves_order() {
        let edges = vec![Edge::new(0, 1, 7), Edge::new(2, 3, 9)];
        let g = materialize(VecStream::new(4, edges.clone()));
        assert_eq!(g.edges(), &edges[..]);
    }

    #[test]
    fn boxed_streams_still_report_n() {
        let s: DynEdgeStream = Box::new(VecStream::new(9, vec![]));
        assert_eq!(s.n(), 9);
        assert_eq!(materialize(s).n(), 9);
    }
}
