//! Input partitions: random vertex partition (RVP, §1.1) and random edge
//! partition (REP, §1.3).
//!
//! RVP is the model's default: each vertex is hashed to a home machine, and
//! the home machine knows the vertex's full adjacency (neighbor ids, weights,
//! and — because hashing is public — the home machines of all neighbors).
//! REP assigns each *edge* independently; it is only used by the §1.3
//! comparison experiments (E12).

use crate::graph::{Edge, Graph, VertexId};
use krand::prf::Prf;

/// Which partition model to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionKind {
    /// Random vertex partition: vertices hashed to machines (the default).
    Rvp,
    /// Random edge partition: edges assigned independently at random.
    Rep,
}

/// A materialized partition of a graph across `k` machines.
#[derive(Clone, Debug)]
pub struct Partition {
    kind: PartitionKind,
    k: usize,
    prf: Prf,
    /// RVP: `home[v]` = machine of vertex `v`.
    home: Vec<u16>,
    /// REP only: `edge_home[e]` = machine of edge index `e` in `g.edges()`.
    edge_home: Vec<u16>,
}

impl Partition {
    /// Hash-based RVP, as real systems do it (paper §1.1): the home machine
    /// of a vertex is a public hash of its id, so any machine can compute
    /// any vertex's home locally.
    pub fn random_vertex(g: &Graph, k: usize, seed: u64) -> Self {
        Self::random_vertex_n(g.n(), k, seed)
    }

    /// Hash-based RVP over a bare vertex universe `0..n` — the streaming
    /// ingestion path ([`crate::sharded::ShardedGraph::from_stream`]) needs
    /// a partition before any graph exists.
    pub fn random_vertex_n(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 2, "the model requires k >= 2");
        let prf = Prf::new(seed).derive(0x9A57);
        let home = (0..n as u64)
            .map(|v| prf.eval_mod(0, v, k as u64) as u16)
            .collect();
        Partition {
            kind: PartitionKind::Rvp,
            k,
            prf,
            home,
            edge_home: Vec::new(),
        }
    }

    /// Random edge partition (REP): each edge lands on a uniform machine,
    /// determined by [`Partition::rep_edge_owner`] — a public hash of the
    /// canonical edge key, so any machine can recompute any edge's owner
    /// locally. Vertex "homes" are still defined by hashing (needed to
    /// address messages about vertices), but adjacency knowledge follows
    /// edges.
    pub fn random_edge(g: &Graph, k: usize, seed: u64) -> Self {
        assert!(k >= 2);
        let prf = Prf::new(seed).derive(0x9A57);
        let home = (0..g.n() as u64)
            .map(|v| prf.eval_mod(0, v, k as u64) as u16)
            .collect();
        let rep_prf = Self::rep_owner_prf(seed);
        let edge_home = g
            .edges()
            .iter()
            .map(|e| Self::rep_edge_owner(&rep_prf, g.n(), k, e.u, e.v) as u16)
            .collect();
        Partition {
            kind: PartitionKind::Rep,
            k,
            prf,
            home,
            edge_home,
        }
    }

    /// The PRF behind REP edge ownership, derived from the master seed.
    /// Public hashing, exactly like vertex homes: every machine derives the
    /// same function with zero communication.
    pub fn rep_owner_prf(seed: u64) -> Prf {
        Prf::new(seed).derive(0x4EB)
    }

    /// REP owner of the canonical edge `(u, v)` on an `n`-vertex graph over
    /// `k` machines — a hash of the edge *key*, not of any global edge
    /// index, so the streamed sharded path (which never sees an indexed
    /// edge list) computes exactly the same assignment as
    /// [`Partition::random_edge`].
    pub fn rep_edge_owner(prf: &Prf, n: usize, k: usize, u: VertexId, v: VertexId) -> usize {
        prf.eval_mod(1, u as u64 * n as u64 + v as u64, k as u64) as usize
    }

    /// The partition model.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Home machine of vertex `v`.
    #[inline]
    pub fn home(&self, v: VertexId) -> usize {
        self.home[v as usize] as usize
    }

    /// Home machine of edge index `e` (REP only).
    pub fn edge_owner(&self, e: usize) -> usize {
        debug_assert_eq!(self.kind, PartitionKind::Rep);
        self.edge_home[e] as usize
    }

    /// The vertices homed at machine `i` (RVP view).
    pub fn vertices_of(&self, i: usize) -> Vec<VertexId> {
        self.home
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h as usize == i)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// The edges owned by machine `i` under REP.
    pub fn edges_of(&self, g: &Graph, i: usize) -> Vec<Edge> {
        debug_assert_eq!(self.kind, PartitionKind::Rep);
        g.edges()
            .iter()
            .enumerate()
            .filter(|&(e, _)| self.edge_home[e] as usize == i)
            .map(|(_, e)| *e)
            .collect()
    }

    /// Per-machine vertex counts (balance diagnostics; w.h.p. Θ~(n/k) each).
    pub fn vertex_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.k];
        for &h in &self.home {
            loads[h as usize] += 1;
        }
        loads
    }

    /// The PRF used for home hashing — exposed so distributed algorithms can
    /// recompute `home(v)` locally, exactly as the paper's hashing argument
    /// assumes ("if a machine knows a vertex ID, it also knows where it is
    /// hashed to", §1.1).
    pub fn home_prf(&self) -> Prf {
        self.prf
    }

    /// A partition of the bipartite double cover `D(G)` (on `2n` vertices)
    /// that keeps both lifts `v` and `v + n` on vertex `v`'s home machine,
    /// so the distributed double-cover construction needs no communication
    /// (Theorem 4's bipartiteness reduction).
    pub fn lifted_double_cover(&self) -> Partition {
        let mut home = Vec::with_capacity(2 * self.home.len());
        home.extend_from_slice(&self.home);
        home.extend_from_slice(&self.home);
        Partition {
            kind: self.kind,
            k: self.k,
            prf: self.prf,
            home,
            edge_home: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn rvp_is_balanced_whp() {
        let g = generators::gnp(4000, 0.002, 3);
        let k = 8;
        let p = Partition::random_vertex(&g, k, 42);
        let loads = p.vertex_loads();
        assert_eq!(loads.iter().sum::<usize>(), g.n());
        let mean = g.n() / k;
        for (i, &l) in loads.iter().enumerate() {
            assert!(
                l > mean / 2 && l < mean * 2,
                "machine {i} load {l} vs mean {mean}"
            );
        }
    }

    #[test]
    fn rvp_home_matches_vertices_of() {
        let g = generators::path(100);
        let p = Partition::random_vertex(&g, 4, 7);
        for i in 0..4 {
            for v in p.vertices_of(i) {
                assert_eq!(p.home(v), i);
            }
        }
    }

    #[test]
    fn rep_covers_all_edges_once() {
        let g = generators::gnm(200, 500, 5);
        let p = Partition::random_edge(&g, 5, 11);
        let total: usize = (0..5).map(|i| p.edges_of(&g, i).len()).sum();
        assert_eq!(total, g.m());
    }

    #[test]
    fn partitions_are_deterministic_in_seed() {
        let g = generators::gnm(100, 200, 1);
        let a = Partition::random_vertex(&g, 4, 9);
        let b = Partition::random_vertex(&g, 4, 9);
        for v in 0..g.n() as u32 {
            assert_eq!(a.home(v), b.home(v));
        }
        let c = Partition::random_vertex(&g, 4, 10);
        assert!((0..g.n() as u32).any(|v| a.home(v) != c.home(v)));
    }
}
