//! Sharded graph storage: the per-machine input layout of the model.
//!
//! The k-machine model (paper §1.1) gives each machine only its `~n/k` home
//! vertices and their incident edges — never a copy of the whole graph.
//! [`ShardedGraph`] realizes exactly that: `k` [`Shard`]s, each a local CSR
//! over that machine's vertices, built by consuming an
//! [`EdgeStream`] one edge at a time. No central
//! `Vec<Edge>` or global adjacency is ever materialized; the per-shard
//! storage is `O(m/k + Δ)` half-edges w.h.p. (each edge is stored at both
//! endpoint homes, as the RVP model prescribes).
//!
//! Algorithms access a machine's slice through [`ShardView`], which exposes
//! only what that machine legitimately knows: its own vertices, their
//! adjacency, and — because home hashing is public — the home machine of
//! any vertex id.
//!
//! **Mutation path.** Shards are live: edge insertions and deletions are
//! *staged* into per-shard delta logs ([`ShardedGraph::stage_insert`],
//! [`ShardedGraph::stage_delete`] — `O(1)` per endpoint home) and folded
//! into the CSRs by [`ShardedGraph::compact`], which reproduces the layout
//! fresh ingestion of the mutated edge sequence would build, bit for bit.
//! Storage stays `O(m/k + Δ + pending)` per machine, with `pending`
//! bounded by the caller's compaction threshold (`core::dynamic`).

use crate::graph::{Edge, Graph, VertexId, Weight};
use crate::partition::Partition;
use crate::stream::{EdgeStream, GraphStream};
use std::cell::Cell;

thread_local! {
    /// Per-thread count of shard builds (see [`ingest_count`]).
    static INGESTS: Cell<u64> = const { Cell::new(0) };
    /// Per-thread count of crash-recovery shard rebuilds
    /// (see [`rebuild_count`]).
    static REBUILDS: Cell<u64> = const { Cell::new(0) };
}

/// How many times this thread has ingested an edge set into per-machine
/// shards (every [`ShardedGraph::from_stream_with_partition`] call, which
/// all other constructors funnel through). A diagnostics hook for the
/// session layer: a reusable cluster must ingest exactly once however many
/// algorithms run on it, and `tests/session.rs` pins that with this
/// counter. Thread-local so concurrently running tests cannot interfere.
pub fn ingest_count() -> u64 {
    INGESTS.with(std::cell::Cell::get)
}

/// How many times this thread has re-read a shard from durable storage
/// after a machine crash ([`ShardedGraph::rebuild_shard`]). The chaos
/// conformance suite pins that crash recovery actually exercises the
/// restore path. Thread-local for the same reason as [`ingest_count`].
pub fn rebuild_count() -> u64 {
    REBUILDS.with(std::cell::Cell::get)
}

/// One staged mutation, in half-edge form: `owner`'s adjacency gains or
/// loses the neighbor `nb`. Every logical edge update produces two of
/// these, one in each endpoint's home shard — the same double-entry layout
/// ingestion uses.
#[derive(Clone, Copy, Debug)]
struct DeltaOp {
    owner: VertexId,
    nb: VertexId,
    w: Weight,
    insert: bool,
}

/// One machine's slice of the input: its home vertices and their full
/// adjacency, in CSR form, plus the shard's *delta log* of staged
/// mutations awaiting compaction (the dynamic-update write path).
#[derive(Clone, Debug)]
pub struct Shard {
    /// Sorted local vertex ids.
    verts: Vec<VertexId>,
    /// CSR offsets parallel to `verts` (`len == verts.len() + 1`).
    adj_off: Vec<u32>,
    /// Concatenated `(neighbor, weight)` lists.
    adj: Vec<(VertexId, Weight)>,
    /// Staged half-edge mutations, in arrival order. Readers of the CSR do
    /// not see these until [`ShardedGraph::compact`] folds them in.
    log: Vec<DeltaOp>,
}

impl Shard {
    /// Index of `v` in `verts`, if local.
    #[inline]
    fn index_of(&self, v: VertexId) -> Option<usize> {
        self.verts.binary_search(&v).ok()
    }

    /// Folds the delta log into the CSR, preserving fresh-ingest adjacency
    /// order: surviving base entries keep their positions, inserts append
    /// in log order — exactly the layout ingesting the mutated edge
    /// sequence from scratch would produce.
    fn compact(&mut self) {
        if self.log.is_empty() {
            return;
        }
        // Group ops by owner, preserving per-owner arrival order.
        let mut by_owner: rustc_hash::FxHashMap<VertexId, Vec<usize>> =
            rustc_hash::FxHashMap::default();
        for (i, op) in self.log.iter().enumerate() {
            by_owner.entry(op.owner).or_default().push(i);
        }
        let mut adj = Vec::with_capacity(self.adj.len());
        let mut adj_off = Vec::with_capacity(self.verts.len() + 1);
        adj_off.push(0u32);
        for (vi, &v) in self.verts.iter().enumerate() {
            let (lo, hi) = (self.adj_off[vi] as usize, self.adj_off[vi + 1] as usize);
            match by_owner.get(&v) {
                None => adj.extend_from_slice(&self.adj[lo..hi]),
                Some(ops) => {
                    // Sequential replay over the alive-entry list.
                    let mut entries: Vec<(VertexId, Weight, bool)> = self.adj[lo..hi]
                        .iter()
                        .map(|&(nb, w)| (nb, w, true))
                        .collect();
                    for &i in ops {
                        let op = self.log[i];
                        if op.insert {
                            entries.push((op.nb, op.w, true));
                        } else if let Some(e) = entries
                            .iter_mut()
                            .find(|(nb, _, alive)| *alive && *nb == op.nb)
                        {
                            e.2 = false;
                        }
                        // A delete with no alive entry is a no-op at the
                        // storage layer; `core::dynamic` validates batches
                        // before staging, so it never reaches this point.
                    }
                    adj.extend(
                        entries
                            .into_iter()
                            .filter(|&(_, _, alive)| alive)
                            .map(|(nb, w, _)| (nb, w)),
                    );
                }
            }
            adj_off.push(adj.len() as u32);
        }
        self.adj = adj;
        self.adj_off = adj_off;
        self.log.clear();
    }
}

/// The input graph, stored only as per-machine shards plus the public
/// vertex partition.
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    n: usize,
    m: usize,
    part: Partition,
    shards: Vec<Shard>,
}

impl ShardedGraph {
    /// Ingests an edge stream under a fresh hash-based random vertex
    /// partition over `k` machines. Each edge is routed to its two endpoint
    /// home shards as it is produced; nothing global is kept.
    pub fn from_stream(stream: impl EdgeStream, k: usize, seed: u64) -> Self {
        let part = Partition::random_vertex_n(stream.n(), k, seed);
        Self::from_stream_with_partition(stream, part)
    }

    /// Ingests an edge stream under an explicit partition (the harness
    /// paths — double-cover lifts, the §4 cut simulation — carry their own).
    pub fn from_stream_with_partition(mut stream: impl EdgeStream, part: Partition) -> Self {
        INGESTS.with(|c| c.set(c.get() + 1));
        let n = stream.n();
        let k = part.k();
        // Route half-edges to their owner's shard as they arrive.
        let mut half: Vec<Vec<(VertexId, VertexId, Weight)>> = vec![Vec::new(); k];
        let mut m = 0usize;
        for e in stream.by_ref() {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "streamed endpoint out of range"
            );
            m += 1;
            half[part.home(e.u)].push((e.u, e.v, e.w));
            half[part.home(e.v)].push((e.v, e.u, e.w));
        }
        // Local vertex lists (one O(n) pass; includes isolated vertices).
        let mut verts: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..n as u32 {
            verts[part.home(v)].push(v);
        }
        // Per-shard CSR. The sort is stable on the owner only, so each
        // vertex's neighbors keep stream order — identical to the adjacency
        // order `Graph::from_dedup_edges` produces for the same edges.
        let shards = verts
            .into_iter()
            .zip(half)
            .map(|(verts, mut half)| {
                half.sort_by_key(|&(owner, _, _)| owner);
                let mut adj_off = Vec::with_capacity(verts.len() + 1);
                let mut adj = Vec::with_capacity(half.len());
                let mut pos = 0usize;
                adj_off.push(0);
                for &v in &verts {
                    while pos < half.len() && half[pos].0 == v {
                        adj.push((half[pos].1, half[pos].2));
                        pos += 1;
                    }
                    adj_off.push(adj.len() as u32);
                }
                debug_assert_eq!(pos, half.len(), "every half-edge has a local owner");
                Shard {
                    verts,
                    adj_off,
                    adj,
                    log: Vec::new(),
                }
            })
            .collect();
        ShardedGraph { n, m, part, shards }
    }

    /// Shards an already-materialized graph — the path session clusters
    /// take when handed a `&Graph` (and the oracle-driven test harness).
    pub fn from_graph(g: &Graph, part: &Partition) -> Self {
        Self::from_stream_with_partition(GraphStream::new(g), part.clone())
    }

    /// Stages an edge insertion: a half-edge delta is appended to each
    /// endpoint's home-shard log, `O(1)` per shard — the CSR is untouched
    /// until [`ShardedGraph::compact`]. Callers (the `core::dynamic` update
    /// layer) are responsible for validating that `{u, v}` is not already
    /// present; the storage layer only checks the model invariants.
    pub fn stage_insert(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.stage(u, v, w, true);
    }

    /// Stages an edge deletion (the half-edge deltas tombstone the entry at
    /// both endpoint homes on the next compaction). Deleting an absent edge
    /// is a storage-layer no-op; callers validate first.
    pub fn stage_delete(&mut self, u: VertexId, v: VertexId) {
        self.stage(u, v, 0, false);
    }

    fn stage(&mut self, u: VertexId, v: VertexId, w: Weight, insert: bool) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "staged endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not part of the model");
        self.shards[self.part.home(u)].log.push(DeltaOp {
            owner: u,
            nb: v,
            w,
            insert,
        });
        self.shards[self.part.home(v)].log.push(DeltaOp {
            owner: v,
            nb: u,
            w,
            insert,
        });
    }

    /// Staged half-edge deltas not yet folded into the CSRs, summed over
    /// shards (each logical edge update contributes two).
    pub fn pending_half_ops(&self) -> usize {
        self.shards.iter().map(|s| s.log.len()).sum()
    }

    /// The largest per-shard delta log — the quantity compaction policies
    /// threshold on, since it bounds each machine's extra storage beyond
    /// the `O(m/k + Δ)` CSR.
    pub fn max_pending_per_shard(&self) -> usize {
        self.shards.iter().map(|s| s.log.len()).max().unwrap_or(0)
    }

    /// The weight of edge `{u, v}` as of the *staged* state: the base CSR
    /// overlaid with `u`'s home-shard log replayed in order. This is what
    /// update validation reads — it sees mutations that compaction has not
    /// materialized yet.
    pub fn staged_edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let shard = &self.shards[self.part.home(u)];
        let mut w = shard.index_of(u).and_then(|vi| {
            let (lo, hi) = (shard.adj_off[vi] as usize, shard.adj_off[vi + 1] as usize);
            shard.adj[lo..hi]
                .iter()
                .find(|&&(nb, _)| nb == v)
                .map(|&(_, w)| w)
        });
        for op in &shard.log {
            if op.owner == u && op.nb == v {
                w = op.insert.then_some(op.w);
            }
        }
        w
    }

    /// Folds every shard's delta log into its CSR and recounts `m`.
    /// Per-machine local work, no communication; the resulting shards are
    /// **bit-identical** to ingesting the mutated edge sequence from
    /// scratch (surviving edges keep their stream positions, insertions
    /// append in staging order) — property-tested in `tests/dynamic.rs`.
    /// Returns the number of half-edge deltas applied.
    pub fn compact(&mut self) -> usize {
        let applied = self.pending_half_ops();
        if applied == 0 {
            return 0;
        }
        for shard in &mut self.shards {
            shard.compact();
        }
        // Recount m: each edge exactly once, at its smaller endpoint's home.
        self.m = self
            .shards
            .iter()
            .map(|s| {
                s.verts
                    .iter()
                    .enumerate()
                    .map(|(vi, &v)| {
                        let (lo, hi) = (s.adj_off[vi] as usize, s.adj_off[vi + 1] as usize);
                        s.adj[lo..hi].iter().filter(|&&(nb, _)| v < nb).count()
                    })
                    .sum::<usize>()
            })
            .sum();
        applied
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges `m` (each undirected edge counted once; staged,
    /// uncompacted deltas are not reflected until [`ShardedGraph::compact`]).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of machines `k`.
    pub fn k(&self) -> usize {
        self.part.k()
    }

    /// The public vertex partition (home hashing).
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Machine `i`'s view of its shard. Views read the compacted CSR only:
    /// algorithms must not observe staged, un-compacted deltas (the dynamic
    /// layer compacts before every solve).
    pub fn view(&self, i: usize) -> ShardView<'_> {
        ShardView {
            shard: &self.shards[i],
        }
    }

    /// A new sharded graph keeping only edges accepted by `keep` (called
    /// with the canonical `(u, v, w)`; deterministic predicates — e.g.
    /// shared-randomness sampling — make both endpoint shards agree with
    /// zero communication, which is how the §3.2 min-cut probes subsample).
    pub fn filter_edges(&self, keep: impl Fn(VertexId, VertexId, Weight) -> bool) -> ShardedGraph {
        debug_assert_eq!(
            self.pending_half_ops(),
            0,
            "filter_edges reads the compacted CSR; compact() staged deltas first"
        );
        let mut m = 0usize;
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut adj_off = Vec::with_capacity(s.verts.len() + 1);
                let mut adj = Vec::with_capacity(s.adj.len());
                adj_off.push(0);
                for (vi, &v) in s.verts.iter().enumerate() {
                    let (lo, hi) = (s.adj_off[vi] as usize, s.adj_off[vi + 1] as usize);
                    for &(nb, w) in &s.adj[lo..hi] {
                        let (a, b) = if v < nb { (v, nb) } else { (nb, v) };
                        if keep(a, b, w) {
                            adj.push((nb, w));
                            if v < nb {
                                m += 1; // counted once, at the smaller endpoint
                            }
                        }
                    }
                    adj_off.push(adj.len() as u32);
                }
                Shard {
                    verts: s.verts.clone(),
                    adj_off,
                    adj,
                    log: Vec::new(),
                }
            })
            .collect();
        // Cross-shard edges were counted at the smaller endpoint only, but
        // intra-shard edges also exactly once (the smaller endpoint is local
        // too) — so `m` is already the undirected count.
        ShardedGraph {
            n: self.n,
            m,
            part: self.part.clone(),
            shards,
        }
    }

    /// The crash-recovery restore path: re-reads machine `i`'s shard from
    /// durable storage — the base CSR plus its delta log, exactly the
    /// state a fresh replay of ingestion + staged updates would rebuild —
    /// and verifies its structural invariants. In the simulator the shard
    /// *is* the durable copy, so the rebuild is a checked identity; what
    /// matters is the contract it pins: a machine that lost its volatile
    /// memory recovers its graph slice from storage alone, never from
    /// another machine. Bumps [`rebuild_count`] and returns the number of
    /// half-edge records restored (CSR entries + pending log entries).
    pub fn rebuild_shard(&self, i: usize) -> usize {
        let shard = &self.shards[i];
        assert_eq!(
            shard.adj_off.len(),
            shard.verts.len() + 1,
            "shard {i}: CSR offsets must bracket every local vertex"
        );
        assert!(
            shard.adj_off.windows(2).all(|w| w[0] <= w[1]),
            "shard {i}: CSR offsets must be monotone"
        );
        assert_eq!(
            *shard.adj_off.last().expect("offsets are never empty") as usize,
            shard.adj.len(),
            "shard {i}: CSR offsets must cover the adjacency"
        );
        for op in &shard.log {
            assert_eq!(
                self.part.home(op.owner),
                i,
                "shard {i}: delta log entry owned by a foreign vertex"
            );
        }
        REBUILDS.with(|c| c.set(c.get() + 1));
        shard.adj.len() + shard.log.len()
    }

    /// Total half-edges stored across all shards (diagnostics; `= 2m`).
    pub fn total_half_edges(&self) -> usize {
        self.shards.iter().map(|s| s.adj.len()).sum()
    }

    /// Per-shard half-edge loads (balance diagnostics; `O(m/k + Δ)` w.h.p.).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.adj.len()).collect()
    }

    /// Maximum degree over all vertices (diagnostics).
    pub fn max_degree(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.adj_off.windows(2).map(|w| (w[1] - w[0]) as usize))
            .max()
            .unwrap_or(0)
    }
}

/// What one machine can see of a [`ShardedGraph`]: its own vertices and
/// their adjacency. All accessors panic (in debug) or return nothing for
/// vertices homed elsewhere — algorithm code that compiles against this
/// view provably never peeks at remote state.
#[derive(Clone, Copy, Debug)]
pub struct ShardView<'g> {
    shard: &'g Shard,
}

impl<'g> ShardView<'g> {
    /// The vertices homed at this machine, ascending.
    pub fn verts(&self) -> &'g [VertexId] {
        &self.shard.verts
    }

    /// The `(neighbor, weight)` adjacency of local vertex `v`.
    ///
    /// Panics if `v` is not homed here — remote adjacency is exactly what
    /// the model says a machine does not have.
    pub fn neighbors(&self, v: VertexId) -> &'g [(VertexId, Weight)] {
        let vi = self
            .shard
            .index_of(v)
            .expect("neighbors() queried for a vertex homed on another machine");
        let lo = self.shard.adj_off[vi] as usize;
        let hi = self.shard.adj_off[vi + 1] as usize;
        &self.shard.adj[lo..hi]
    }

    /// Degree of local vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// The weight of edge `(a, b)` where `a` is local, if the edge exists.
    pub fn edge_weight(&self, a: VertexId, b: VertexId) -> Option<Weight> {
        self.neighbors(a)
            .iter()
            .find(|&&(nb, _)| nb == b)
            .map(|&(_, w)| w)
    }

    /// The canonical edges *owned* by this shard: those whose smaller
    /// endpoint is homed here. Across all shards every edge appears exactly
    /// once (how the referee baseline ships its slice, and how orchestrator
    /// code reassembles a graph without double counting).
    pub fn local_edges(&self) -> impl Iterator<Item = Edge> + 'g {
        let shard = self.shard;
        shard.verts.iter().enumerate().flat_map(move |(vi, &v)| {
            let lo = shard.adj_off[vi] as usize;
            let hi = shard.adj_off[vi + 1] as usize;
            shard.adj[lo..hi]
                .iter()
                .filter(move |&&(nb, _)| v < nb)
                .map(move |&(nb, w)| Edge::new(v, nb, w))
        })
    }

    /// Half-edges stored in this shard (`Σ_local deg`).
    pub fn half_edges(&self) -> usize {
        self.shard.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn shard_of(g: &Graph, k: usize, seed: u64) -> ShardedGraph {
        let part = Partition::random_vertex(g, k, seed);
        ShardedGraph::from_graph(g, &part)
    }

    #[test]
    fn shards_cover_every_vertex_once() {
        let g = generators::gnm(300, 800, 3);
        let sg = shard_of(&g, 5, 7);
        let mut seen = vec![false; 300];
        for i in 0..5 {
            for &v in sg.view(i).verts() {
                assert!(!seen[v as usize], "vertex {v} in two shards");
                seen[v as usize] = true;
                assert_eq!(sg.partition().home(v), i);
            }
        }
        assert!(seen.iter().all(|&s| s), "every vertex must be homed");
    }

    #[test]
    fn adjacency_matches_central_graph() {
        let g = generators::randomize_weights(&generators::gnm(150, 400, 5), 99, 6);
        let part = Partition::random_vertex(&g, 4, 11);
        let sg = ShardedGraph::from_graph(&g, &part);
        for v in 0..g.n() as u32 {
            let view = sg.view(part.home(v));
            assert_eq!(view.neighbors(v), g.neighbors(v), "vertex {v}");
            assert_eq!(view.degree(v), g.degree(v));
        }
        assert_eq!(sg.n(), g.n());
        assert_eq!(sg.m(), g.m());
        assert_eq!(sg.total_half_edges(), 2 * g.m());
    }

    #[test]
    fn local_edges_partition_the_edge_set() {
        let g = generators::gnm(120, 500, 9);
        let sg = shard_of(&g, 6, 13);
        let mut collected: Vec<Edge> = (0..6).flat_map(|i| sg.view(i).local_edges()).collect();
        collected.sort_unstable_by_key(|e| (e.u, e.v));
        let mut want: Vec<Edge> = g.edges().to_vec();
        want.sort_unstable_by_key(|e| (e.u, e.v));
        assert_eq!(collected, want);
    }

    #[test]
    fn stream_and_graph_ingestion_agree() {
        let part = Partition::random_vertex_n(200, 4, 21);
        let a = ShardedGraph::from_stream_with_partition(
            generators::gnm_stream(200, 600, 17),
            part.clone(),
        );
        let g = generators::gnm(200, 600, 17);
        let b = ShardedGraph::from_graph(&g, &part);
        for i in 0..4 {
            assert_eq!(a.view(i).verts(), b.view(i).verts(), "shard {i} verts");
            for &v in a.view(i).verts() {
                assert_eq!(
                    a.view(i).neighbors(v),
                    b.view(i).neighbors(v),
                    "adjacency of {v}"
                );
            }
        }
        assert_eq!(a.m(), b.m());
    }

    #[test]
    fn filter_edges_is_consistent_across_shards() {
        let g = generators::randomize_weights(&generators::gnm(100, 300, 23), 50, 24);
        let sg = shard_of(&g, 4, 25);
        let filtered = sg.filter_edges(|u, v, _| (u + v) % 3 == 0);
        let want = g.edges().iter().filter(|e| (e.u + e.v) % 3 == 0).count();
        assert_eq!(filtered.m(), want);
        assert_eq!(filtered.total_half_edges(), 2 * want);
        // Both endpoint shards agree on every surviving edge.
        for e in g.edges().iter().filter(|e| (e.u + e.v) % 3 == 0) {
            let hu = filtered.partition().home(e.u);
            assert_eq!(filtered.view(hu).edge_weight(e.u, e.v), Some(e.w));
        }
    }

    #[test]
    #[should_panic(expected = "another machine")]
    fn remote_adjacency_is_inaccessible() {
        let g = generators::path(50);
        let part = Partition::random_vertex(&g, 4, 3);
        let sg = ShardedGraph::from_graph(&g, &part);
        let v = 7u32;
        let wrong = (part.home(v) + 1) % 4;
        let _ = sg.view(wrong).neighbors(v);
    }

    #[test]
    #[should_panic(expected = "another machine")]
    fn remote_degree_is_inaccessible() {
        let g = generators::cycle(40);
        let part = Partition::random_vertex(&g, 3, 5);
        let sg = ShardedGraph::from_graph(&g, &part);
        let v = 11u32;
        let wrong = (part.home(v) + 1) % 3;
        let _ = sg.view(wrong).degree(v);
    }

    #[test]
    #[should_panic(expected = "another machine")]
    fn remote_edge_weight_is_inaccessible() {
        let g = generators::grid(6, 6);
        let part = Partition::random_vertex(&g, 4, 9);
        let sg = ShardedGraph::from_graph(&g, &part);
        let e = g.edges()[0];
        let wrong = (part.home(e.u) + 1) % 4;
        let _ = sg.view(wrong).edge_weight(e.u, e.v);
    }

    #[test]
    fn filter_edges_with_shared_randomness_is_deterministic_across_shardings() {
        // The min-cut probes rely on this: a predicate derived from shared
        // randomness must select the *same* edge subsample on every machine
        // and under every partition — same seed ⇒ identical surviving edge
        // set, different seed ⇒ (almost surely) a different one.
        use krand::prf::Prf;
        let g = generators::randomize_weights(&generators::gnm(140, 420, 31), 100, 32);
        let survivors = |k: usize, part_seed: u64, prf_seed: u64| {
            let part = Partition::random_vertex(&g, k, part_seed);
            let sg = ShardedGraph::from_graph(&g, &part);
            let prf = Prf::new(prf_seed);
            let sub = sg.filter_edges(|u, v, _| {
                prf.eval_mod(u as u64, v as u64, 2) == 0 // keep ~half
            });
            let mut edges: Vec<Edge> = (0..k).flat_map(|i| sub.view(i).local_edges()).collect();
            edges.sort_unstable_by_key(|e| (e.u, e.v));
            edges
        };
        let a = survivors(4, 7, 99);
        let b = survivors(6, 21, 99); // different sharding, same shared seed
        assert_eq!(a, b, "same seed must subsample identically across shards");
        assert!(
            !a.is_empty() && a.len() < g.m(),
            "predicate must be nontrivial"
        );
        let c = survivors(4, 7, 100);
        assert_ne!(a, c, "a fresh seed must (a.s.) pick a different subsample");
    }

    #[test]
    fn staged_deltas_compact_to_fresh_ingestion() {
        // Maintained shards after stage+compact must be bit-identical to
        // ingesting the mutated edge sequence from scratch: surviving edges
        // keep stream order, inserts append in staging order.
        let g = generators::randomize_weights(&generators::gnm(80, 200, 41), 50, 42);
        let part = Partition::random_vertex(&g, 4, 43);
        let mut sg = ShardedGraph::from_graph(&g, &part);
        let mut edges: Vec<Edge> = g.edges().to_vec();
        // Delete every 5th edge, insert a batch of fresh ones.
        let dels: Vec<Edge> = edges.iter().copied().step_by(5).collect();
        for e in &dels {
            sg.stage_delete(e.u, e.v);
            edges.retain(|x| (x.u, x.v) != (e.u, e.v));
        }
        let mut fresh = Vec::new();
        for i in 0..30u32 {
            let (u, v) = (i % 79, 79 - (i % 40));
            if u != v
                && sg.staged_edge_weight(u, v).is_none()
                && !fresh.contains(&(u.min(v), u.max(v)))
            {
                sg.stage_insert(u, v, 7 + i as u64);
                fresh.push((u.min(v), u.max(v)));
                edges.push(Edge::new(u, v, 7 + i as u64));
            }
        }
        assert!(sg.pending_half_ops() > 0);
        let applied = sg.compact();
        assert_eq!(applied, 2 * (dels.len() + fresh.len()));
        assert_eq!(sg.pending_half_ops(), 0);
        let want = ShardedGraph::from_stream_with_partition(
            crate::stream::VecStream::new(80, edges.clone()),
            part.clone(),
        );
        assert_eq!(sg.m(), want.m());
        for i in 0..4 {
            assert_eq!(sg.view(i).verts(), want.view(i).verts(), "shard {i}");
            for &v in sg.view(i).verts() {
                assert_eq!(
                    sg.view(i).neighbors(v),
                    want.view(i).neighbors(v),
                    "adjacency of {v} after compaction"
                );
            }
        }
    }

    #[test]
    fn staged_edge_weight_sees_uncompacted_deltas() {
        let g = generators::path(20);
        let part = Partition::random_vertex(&g, 3, 17);
        let mut sg = ShardedGraph::from_graph(&g, &part);
        assert_eq!(sg.staged_edge_weight(3, 4), Some(1));
        sg.stage_delete(3, 4);
        assert_eq!(
            sg.staged_edge_weight(3, 4),
            None,
            "delete visible pre-compaction"
        );
        sg.stage_insert(3, 4, 9);
        assert_eq!(sg.staged_edge_weight(3, 4), Some(9), "re-insert visible");
        sg.stage_delete(3, 4);
        sg.stage_insert(0, 5, 2);
        assert_eq!(sg.staged_edge_weight(3, 4), None);
        assert_eq!(sg.staged_edge_weight(0, 5), Some(2));
        assert_eq!(sg.staged_edge_weight(5, 0), Some(2), "symmetric view");
        sg.compact();
        assert_eq!(sg.staged_edge_weight(3, 4), None);
        assert_eq!(sg.staged_edge_weight(0, 5), Some(2));
        assert_eq!(sg.m(), 19 - 1 + 1);
    }

    #[test]
    fn compaction_preserves_the_storage_bound() {
        // After heavy churn + compaction the per-shard loads must still sit
        // within the O(m/k + Δ) envelope the ingest path guarantees.
        let g = generators::gnm(400, 1600, 51);
        let part = Partition::random_vertex(&g, 8, 52);
        let mut sg = ShardedGraph::from_graph(&g, &part);
        for e in g.edges().iter().step_by(2) {
            sg.stage_delete(e.u, e.v);
        }
        sg.compact();
        let fair = 2 * sg.m() / sg.k();
        let delta = sg.max_degree();
        for (i, load) in sg.shard_loads().into_iter().enumerate() {
            assert!(
                load <= 3 * fair + 2 * delta,
                "shard {i}: {load} half-edges vs fair {fair} (Δ = {delta})"
            );
        }
        assert_eq!(sg.total_half_edges(), 2 * sg.m());
    }

    #[test]
    fn rebuild_shard_counts_and_verifies_durable_state() {
        let g = generators::gnm(120, 360, 61);
        let mut sg = shard_of(&g, 4, 62);
        sg.stage_insert(0, 119, 9);
        let before = rebuild_count();
        let mut restored = 0;
        for i in 0..4 {
            restored += sg.rebuild_shard(i);
        }
        assert_eq!(rebuild_count(), before + 4);
        // CSR half-edges plus the two staged half-edge deltas.
        assert_eq!(restored, sg.total_half_edges() + 2);
    }

    #[test]
    fn isolated_vertices_are_present_with_empty_adjacency() {
        let g = Graph::unweighted(20, [(0, 1)]);
        let sg = shard_of(&g, 3, 31);
        let part = sg.partition();
        for v in 2..20u32 {
            assert_eq!(sg.view(part.home(v)).degree(v), 0);
        }
    }
}
