#![warn(missing_docs)]
//! Linear graph sketches (ℓ₀-samplers) — paper §2.3.
//!
//! A sketch `s_u` of a vertex `u` is a `polylog(n)`-bit linear projection of
//! `u`'s incidence vector `a_u ∈ {−1,0,1}^(n choose 2)`:
//!
//! * `a_u[(x,y)] = +1` if `u = x < y` and `(x,y) ∈ E`,
//! * `a_u[(x,y)] = −1` if `x < y = u` and `(x,y) ∈ E`,
//! * `0` otherwise.
//!
//! Because the projection is linear, `s_u + s_v` is a sketch of `a_u + a_v`,
//! in which the shared edge `(u,v)` cancels. Summing the sketches of all
//! vertices of a component therefore yields a sketch of exactly the
//! component's *outgoing* edges — the property the connectivity algorithm
//! exploits to find inter-component edges without inspecting edge states.
//!
//! The construction is the standard ℓ₀-sampler (Jowhari–Saglam–Tardos /
//! Cormode–Firmani): `L` geometric levels × `r` repetitions of 1-sparse
//! recovery cells, with `Θ(log n)`-wise independent level hashing over the
//! Mersenne-61 field and polynomial-identity fingerprints.

pub mod incidence;
pub mod l0;
pub mod onesparse;

pub use incidence::{decode_edge, encode_edge};
pub use l0::{L0Sketch, SketchFns, SketchParams};
pub use onesparse::Cell;
