//! Edge ↔ index encoding for incidence vectors.
//!
//! The incidence-vector coordinate of the (canonical, `u < v`) edge `(u,v)`
//! is `u · n + v`, giving an index domain of size `n²`. The domain is sparse
//! (only `u < v` pairs are valid), which is harmless: samplers only ever
//! decode indices that passed the fingerprint test, and decoded pairs are
//! additionally validated by the caller against real adjacency.

/// Encodes canonical edge `(u, v)` with `u < v` into its vector index.
#[inline]
pub fn encode_edge(u: u32, v: u32, n: usize) -> u64 {
    debug_assert!(u < v, "edge must be canonical (u < v)");
    debug_assert!((v as usize) < n);
    u as u64 * n as u64 + v as u64
}

/// Decodes a vector index back into `(u, v)`; `None` if the index is not a
/// valid canonical pair.
#[inline]
pub fn decode_edge(e: u64, n: usize) -> Option<(u32, u32)> {
    let u = e / n as u64;
    let v = e % n as u64;
    if u < v && (v as usize) < n && u < n as u64 {
        Some((u as u32, v as u32))
    } else {
        None
    }
}

/// The index-domain size for an `n`-vertex graph.
#[inline]
pub fn domain(n: usize) -> u64 {
    n as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_pairs_small_n() {
        let n = 23;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let e = encode_edge(u, v, n);
                assert_eq!(decode_edge(e, n), Some((u, v)));
                assert!(e < domain(n));
            }
        }
    }

    #[test]
    fn invalid_indices_decode_to_none() {
        let n = 10;
        assert_eq!(decode_edge(0, n), None); // (0,0) is a self-loop
        assert_eq!(decode_edge(5 * 10 + 3, n), None); // u > v
        assert_eq!(decode_edge(domain(n) + 1, n), None);
    }

    #[test]
    fn distinct_edges_get_distinct_indices() {
        let n = 50;
        let mut seen = std::collections::HashSet::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                assert!(seen.insert(encode_edge(u, v, n)));
            }
        }
    }
}
