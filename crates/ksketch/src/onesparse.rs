//! 1-sparse recovery cells.
//!
//! A cell summarizes a ±1 vector restricted to some index subset with three
//! linear counters: the value sum, the index-weighted sum, and a fingerprint
//! `Σ sign·z^index` over `F_{2^61−1}`. If the restricted vector has exactly
//! one nonzero entry, the entry is recovered exactly; a vector that is not
//! 1-sparse passes the fingerprint test with probability at most
//! `domain / p ≈ n²/2⁶¹` (polynomial identity testing).

use krand::m61::M61;

/// One linear 1-sparse recovery cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    /// Sum of entry values (each ±1 here).
    pub count: i64,
    /// Sum of `value · index` (exact integer).
    pub index_sum: i128,
    /// `Σ value · z^index` in `F_p`.
    pub fingerprint: M61,
}

impl Cell {
    /// Adds `sign · e_index` to the cell. `z_pow` must be `z^index` for the
    /// cell's fingerprint key `z` (the caller computes it once per index and
    /// reuses it across the levels the index lands in).
    #[inline]
    pub fn add(&mut self, index: u64, sign: i8, z_pow: M61) {
        debug_assert!(sign == 1 || sign == -1);
        if sign == 1 {
            self.count += 1;
            self.index_sum += index as i128;
            self.fingerprint = self.fingerprint.add(z_pow);
        } else {
            self.count -= 1;
            self.index_sum -= index as i128;
            self.fingerprint = self.fingerprint.add(z_pow.neg());
        }
    }

    /// Merges another cell (vector addition).
    #[inline]
    pub fn merge(&mut self, other: &Cell) {
        self.count += other.count;
        self.index_sum += other.index_sum;
        self.fingerprint = self.fingerprint.add(other.fingerprint);
    }

    /// Whether the cell is identically zero (empty restriction or a perfect
    /// cancellation).
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.index_sum == 0 && self.fingerprint == M61::ZERO
    }

    /// Attempts 1-sparse recovery: returns `(index, sign)` if the cell holds
    /// exactly one ±1 entry (up to fingerprint failure probability).
    pub fn recover(&self, z: M61, domain: u64) -> Option<(u64, i8)> {
        if self.count != 1 && self.count != -1 {
            // ±1 vectors: a 1-sparse restriction always has count ±1.
            return None;
        }
        let idx = self.index_sum * self.count as i128;
        if idx < 0 || idx >= domain as i128 {
            return None;
        }
        let idx = idx as u64;
        // Fingerprint check: fingerprint must equal count · z^idx.
        let expect = if self.count == 1 {
            z.pow(idx)
        } else {
            z.pow(idx).neg()
        };
        if expect == self.fingerprint {
            Some((idx, self.count as i8))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z() -> M61 {
        M61::new(0x1234_5678_9ABC)
    }

    #[test]
    fn empty_cell_recovers_nothing() {
        let c = Cell::default();
        assert!(c.is_zero());
        assert_eq!(c.recover(z(), 1000), None);
    }

    #[test]
    fn single_positive_entry_recovers() {
        let mut c = Cell::default();
        c.add(42, 1, z().pow(42));
        assert_eq!(c.recover(z(), 1000), Some((42, 1)));
    }

    #[test]
    fn single_negative_entry_recovers() {
        let mut c = Cell::default();
        c.add(17, -1, z().pow(17));
        assert_eq!(c.recover(z(), 1000), Some((17, -1)));
    }

    #[test]
    fn two_entries_fail_recovery() {
        let mut c = Cell::default();
        c.add(10, 1, z().pow(10));
        c.add(20, 1, z().pow(20));
        // count == 2: immediately rejected.
        assert_eq!(c.recover(z(), 1000), None);
    }

    #[test]
    fn opposite_entries_cancel_to_zero() {
        let mut c = Cell::default();
        c.add(10, 1, z().pow(10));
        c.add(10, -1, z().pow(10));
        assert!(c.is_zero());
    }

    #[test]
    fn plus_minus_pair_is_not_misrecovered() {
        // count = 0 with nonzero content must not recover.
        let mut c = Cell::default();
        c.add(30, 1, z().pow(30));
        c.add(12, -1, z().pow(12));
        assert_eq!(c.count, 0);
        assert!(!c.is_zero());
        assert_eq!(c.recover(z(), 1000), None);
    }

    #[test]
    fn three_entry_fingerprint_rejects_fake_candidate() {
        // Entries 5, 7, -3: count = 1, index_sum = 9 -> candidate 9, but the
        // fingerprint must reject it.
        let mut c = Cell::default();
        c.add(5, 1, z().pow(5));
        c.add(7, 1, z().pow(7));
        c.add(3, -1, z().pow(3));
        assert_eq!(c.count, 1);
        assert_eq!(c.index_sum, 9);
        assert_eq!(c.recover(z(), 1000), None);
    }

    #[test]
    fn merge_is_vector_addition() {
        let mut a = Cell::default();
        a.add(3, 1, z().pow(3));
        let mut b = Cell::default();
        b.add(3, -1, z().pow(3));
        b.add(8, 1, z().pow(8));
        a.merge(&b);
        assert_eq!(a.recover(z(), 100), Some((8, 1)));
    }
}
