//! The linear ℓ₀-sketch: geometric levels × repetitions of 1-sparse cells.

use crate::incidence::{decode_edge, domain, encode_edge};
use crate::onesparse::Cell;
use kmachine::bandwidth::ceil_log2;
use krand::m61::M61;
use krand::poly::PolyHash;
use krand::shared::{SharedRandomness, Use};

/// Shape parameters of a sketch. All sketches that are merged together must
/// share the same parameters *and* the same [`SketchFns`] (same phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchParams {
    /// Number of vertices of the underlying graph (fixes the index domain).
    pub n: usize,
    /// Geometric levels; level `ℓ` keeps an index with probability `2^-ℓ`.
    pub levels: u32,
    /// Independent repetitions (drives the failure probability down
    /// exponentially).
    pub reps: u32,
    /// Independence parameter `d` of the level hash (Θ(log n)-wise,
    /// Cormode–Firmani).
    pub independence: usize,
}

impl SketchParams {
    /// Standard parameters for an `n`-vertex graph: enough levels to span
    /// the `n²` index domain plus slack, `Θ(log n)`-wise independent level
    /// hashing.
    pub fn for_graph(n: usize, reps: u32) -> Self {
        let log = ceil_log2(n.max(2));
        SketchParams {
            n,
            levels: (2 * log + 2).min(61),
            reps: reps.max(1),
            independence: (log as usize).max(8),
        }
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.levels as usize * self.reps as usize
    }

    /// Wire size of one sketch in bits.
    ///
    /// Each cell costs `64 + 64 + 61` bits: the value sum and index sum are
    /// transmitted mod `2^64` (wrapping addition is linear, and when the
    /// true cell content is 1-sparse the true values are small enough that
    /// the wrapped representatives are exact — a non-1-sparse cell is
    /// rejected by the fingerprint regardless of wrapping), and the
    /// fingerprint is one `F_{2^61−1}` element. This is `O(log² n)` bits per
    /// sketch, matching the paper's `polylog(n)` budget.
    pub fn wire_bits(&self) -> u64 {
        self.cells() as u64 * (64 + 64 + 61) + 32
    }
}

/// The shared hash functions of one phase: all machines derive identical
/// [`SketchFns`] from [`SharedRandomness`], so sketches built on different
/// machines are summable.
#[derive(Clone, Debug)]
pub struct SketchFns {
    params: SketchParams,
    /// Per repetition: the d-wise independent level hash.
    level_hash: Vec<PolyHash>,
    /// Per repetition: the fingerprint key `z` (shared across that
    /// repetition's levels; soundness is per-cell polynomial identity
    /// testing and does not need per-level keys).
    z: Vec<M61>,
    /// Per repetition: `lo[v] = z^v` for `v < n` — with [`Self::hi`] this
    /// turns the per-insertion exponentiation `z^(u·n+v)` into one field
    /// multiplication.
    lo: Vec<Vec<M61>>,
    /// Per repetition: `hi[u] = z^(u·n)` for `u < n`.
    hi: Vec<Vec<M61>>,
}

impl SketchFns {
    /// Derives the phase-`phase` sketch functions.
    pub fn new(shared: &SharedRandomness, phase: u32, params: SketchParams) -> Self {
        let level_hash = (0..params.reps)
            .map(|rep| shared.poly(Use::SketchLevel { phase, rep }, params.independence))
            .collect();
        let z: Vec<M61> = (0..params.reps)
            .map(|rep| {
                let raw = shared
                    .prf(Use::SketchFingerprint {
                        phase,
                        rep,
                        level: 0,
                    })
                    .eval(0, 0);
                // Avoid the degenerate keys 0 and 1.
                M61::new(raw % (krand::m61::P - 2) + 2)
            })
            .collect();
        let n = params.n;
        let mut lo = Vec::with_capacity(z.len());
        let mut hi = Vec::with_capacity(z.len());
        for &zr in &z {
            let mut lo_r = Vec::with_capacity(n);
            let mut acc = M61::ONE;
            for _ in 0..n {
                lo_r.push(acc);
                acc = acc.mul(zr);
            }
            let zn = zr.pow(n as u64);
            let mut hi_r = Vec::with_capacity(n);
            let mut acc = M61::ONE;
            for _ in 0..n {
                hi_r.push(acc);
                acc = acc.mul(zn);
            }
            lo.push(lo_r);
            hi.push(hi_r);
        }
        SketchFns {
            params,
            level_hash,
            z,
            lo,
            hi,
        }
    }

    /// The sketch shape these functions serve.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Geometric depth of index `e` under repetition `rep`:
    /// `P(depth ≥ ℓ) ≈ 2^−ℓ` via trailing zeros of the hash value.
    #[inline]
    fn depth(&self, rep: usize, e: u64) -> u32 {
        let h = self.level_hash[rep].eval(e);
        h.trailing_zeros().min(self.params.levels - 1)
    }

    /// True random bits these functions consume (for the §2.2 shared
    /// randomness cost model).
    pub fn random_bits(&self) -> u64 {
        let poly: u64 = self
            .level_hash
            .iter()
            .map(krand::PolyHash::random_bits)
            .sum();
        poly + self.z.len() as u64 * 61
    }
}

/// A linear sketch of a ±1 incidence vector (or of any signed sum of such
/// vectors — in particular of a component part or a whole component).
///
/// ```
/// use ksketch::{L0Sketch, SketchFns, SketchParams};
/// use krand::shared::SharedRandomness;
///
/// let params = SketchParams::for_graph(64, 5);
/// let fns = SketchFns::new(&SharedRandomness::new(1), 0, params);
/// // Sketch vertex 3 with neighbors {7, 9}, and vertex 7 with neighbor {3}.
/// let mut s3 = L0Sketch::new(params);
/// s3.add_incident_edge(&fns, 3, 7);
/// s3.add_incident_edge(&fns, 3, 9);
/// let mut s7 = L0Sketch::new(params);
/// s7.add_incident_edge(&fns, 7, 3);
/// // Merging cancels the shared edge (3,7): only (3,9) can be sampled.
/// s3.merge(&s7);
/// assert_eq!(s3.query(&fns), Some((3, 9)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L0Sketch {
    params: SketchParams,
    cells: Vec<Cell>,
}

impl L0Sketch {
    /// The all-zero sketch.
    pub fn new(params: SketchParams) -> Self {
        L0Sketch {
            params,
            cells: vec![Cell::default(); params.cells()],
        }
    }

    /// The shape of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The raw 1-sparse cells, row-major `rep × level` — what a byte
    /// transport serializes.
    pub fn cell_slice(&self) -> &[Cell] {
        &self.cells
    }

    /// Reassembles a sketch from decoded cells — the inverse of shipping
    /// [`L0Sketch::cell_slice`] over a byte transport. Panics if the cell
    /// count does not match the shape's `params.cells()`.
    pub fn from_cells(params: SketchParams, cells: Vec<Cell>) -> Self {
        assert_eq!(
            cells.len(),
            params.cells(),
            "decoded cell count must match the sketch shape"
        );
        L0Sketch { params, cells }
    }

    /// Adds the incidence-vector entry of the edge `{vertex, neighbor}` as
    /// seen from `vertex` (`+1` if `vertex` is the smaller endpoint, `−1`
    /// otherwise). Building `s_u` means calling this for every neighbor.
    pub fn add_incident_edge(&mut self, fns: &SketchFns, vertex: u32, neighbor: u32) {
        debug_assert_eq!(fns.params, self.params);
        let (a, b, sign) = if vertex < neighbor {
            (vertex, neighbor, 1i8)
        } else {
            (neighbor, vertex, -1i8)
        };
        let e = encode_edge(a, b, self.params.n);
        let levels = self.params.levels as usize;
        for rep in 0..self.params.reps as usize {
            // z^(a·n+b) = hi[a] · lo[b]: one multiplication per (edge, rep).
            let z_pow = fns.hi[rep][a as usize].mul(fns.lo[rep][b as usize]);
            let depth = fns.depth(rep, e) as usize;
            let base = rep * levels;
            for cell in &mut self.cells[base..=base + depth] {
                cell.add(e, sign, z_pow);
            }
        }
    }

    /// Removes the incidence-vector entry of the edge `{vertex, neighbor}`
    /// as seen from `vertex` — the group inverse of
    /// [`L0Sketch::add_incident_edge`]. Because the sketch is a linear
    /// projection, deleting an edge is just adding its contribution with
    /// the opposite sign: a sketch maintained through any interleaving of
    /// adds and removes equals the sketch built fresh from the surviving
    /// edge set. This is what makes the sketches *dynamic* — the property
    /// the incremental update layer (`core::dynamic`) builds on.
    pub fn remove_incident_edge(&mut self, fns: &SketchFns, vertex: u32, neighbor: u32) {
        // The negated contribution is exactly the edge as seen from the
        // *other* endpoint (same cells and fingerprint power, opposite
        // orientation sign), so removal is one add with swapped roles.
        self.add_incident_edge(fns, neighbor, vertex);
    }

    /// Merges another sketch (vector addition). Panics on shape mismatch —
    /// sketches from different phases must never be mixed.
    pub fn merge(&mut self, other: &L0Sketch) {
        assert_eq!(
            self.params, other.params,
            "cannot merge sketches of different shapes/phases"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
    }

    /// Whether every cell is identically zero (empty support, w.h.p.).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(Cell::is_zero)
    }

    /// Samples one edge from the support: scans each repetition from the
    /// sparsest level down and returns the first recoverable entry, decoded
    /// into a vertex pair. `None` when no cell is 1-sparse (either the
    /// support is empty or this phase's hashing was unlucky — the
    /// Monte-Carlo contract of the paper).
    pub fn query(&self, fns: &SketchFns) -> Option<(u32, u32)> {
        debug_assert_eq!(fns.params, self.params);
        let dom = domain(self.params.n);
        let levels = self.params.levels as usize;
        for rep in 0..self.params.reps as usize {
            let z = fns.z[rep];
            let base = rep * levels;
            for l in (0..levels).rev() {
                if let Some((e, _sign)) = self.cells[base + l].recover(z, dom) {
                    if let Some((u, v)) = decode_edge(e, self.params.n) {
                        return Some((u, v));
                    }
                }
            }
        }
        None
    }

    /// Wire size in bits (see [`SketchParams::wire_bits`]).
    pub fn wire_bits(&self) -> u64 {
        self.params.wire_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedRandomness {
        SharedRandomness::new(0xDECAF)
    }

    fn params(n: usize) -> SketchParams {
        SketchParams::for_graph(n, 6)
    }

    /// Builds the sketch of a single vertex from its neighbor list.
    fn vertex_sketch(fns: &SketchFns, v: u32, neighbors: &[u32]) -> L0Sketch {
        let mut s = L0Sketch::new(fns.params());
        for &nb in neighbors {
            s.add_incident_edge(fns, v, nb);
        }
        s
    }

    #[test]
    fn empty_sketch_queries_none() {
        let p = params(64);
        let fns = SketchFns::new(&shared(), 0, p);
        let s = L0Sketch::new(p);
        assert!(s.is_zero());
        assert_eq!(s.query(&fns), None);
    }

    #[test]
    fn single_edge_is_recovered_exactly() {
        let p = params(64);
        let fns = SketchFns::new(&shared(), 1, p);
        let s = vertex_sketch(&fns, 5, &[9]);
        assert_eq!(s.query(&fns), Some((5, 9)));
        // And from the other endpoint's perspective (negative sign).
        let s2 = vertex_sketch(&fns, 9, &[5]);
        assert_eq!(s2.query(&fns), Some((5, 9)));
    }

    #[test]
    fn query_returns_a_real_incident_edge() {
        let p = params(128);
        let fns = SketchFns::new(&shared(), 2, p);
        let neighbors: Vec<u32> = vec![3, 17, 42, 99, 100, 101, 120];
        let s = vertex_sketch(&fns, 64, &neighbors);
        let (u, v) = s.query(&fns).expect("nonempty support must sample");
        assert!(u == 64 || v == 64);
        let other = if u == 64 { v } else { u };
        assert!(neighbors.contains(&other));
    }

    #[test]
    fn linearity_cancels_the_shared_edge() {
        // Vertices 10 and 20 joined by an edge, each with one extra edge.
        // s_10 + s_20 must never sample (10,20); it must sample a cut edge.
        let p = params(64);
        let fns = SketchFns::new(&shared(), 3, p);
        let mut s = vertex_sketch(&fns, 10, &[20, 30]);
        let s20 = vertex_sketch(&fns, 20, &[10, 40]);
        s.merge(&s20);
        for _ in 0..3 {
            let (u, v) = s.query(&fns).expect("two cut edges remain");
            assert_ne!((u, v), (10, 20), "intra-component edge must cancel");
            assert!((u, v) == (10, 30) || (u, v) == (20, 40));
        }
    }

    #[test]
    fn full_component_cancellation_leaves_zero() {
        // A triangle is a whole component: summing all three vertex sketches
        // cancels every edge.
        let p = params(64);
        let fns = SketchFns::new(&shared(), 4, p);
        let mut s = vertex_sketch(&fns, 0, &[1, 2]);
        s.merge(&vertex_sketch(&fns, 1, &[0, 2]));
        s.merge(&vertex_sketch(&fns, 2, &[0, 1]));
        assert!(s.is_zero());
        assert_eq!(s.query(&fns), None);
    }

    #[test]
    fn component_with_one_outgoing_edge_samples_it() {
        // Component {0,1,2} (triangle) plus outgoing edge (2,50).
        let p = params(64);
        let fns = SketchFns::new(&shared(), 5, p);
        let mut s = vertex_sketch(&fns, 0, &[1, 2]);
        s.merge(&vertex_sketch(&fns, 1, &[0, 2]));
        s.merge(&vertex_sketch(&fns, 2, &[0, 1, 50]));
        assert_eq!(s.query(&fns), Some((2, 50)));
    }

    #[test]
    fn merge_order_does_not_matter() {
        let p = params(256);
        let fns = SketchFns::new(&shared(), 6, p);
        let parts: Vec<L0Sketch> = (0..8u32)
            .map(|v| vertex_sketch(&fns, v, &[v + 100, v + 101]))
            .collect();
        let mut fwd = L0Sketch::new(p);
        for s in &parts {
            fwd.merge(s);
        }
        let mut rev = L0Sketch::new(p);
        for s in parts.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.cells, rev.cells);
    }

    #[test]
    fn samples_cover_the_support_across_phases() {
        // Rebuilding with fresh phase randomness must eventually sample
        // every outgoing edge (near-uniformity smoke test).
        let n = 128;
        let p = params(n);
        let outgoing: Vec<u32> = vec![40, 41, 42, 43];
        let mut seen = std::collections::HashSet::new();
        for phase in 0..40u32 {
            let fns = SketchFns::new(&shared(), phase, p);
            let s = vertex_sketch(&fns, 7, &outgoing);
            if let Some((u, v)) = s.query(&fns) {
                let other = if u == 7 { v } else { u };
                seen.insert(other);
            }
        }
        assert_eq!(seen.len(), outgoing.len(), "all edges should be sampled");
    }

    #[test]
    fn query_failure_rate_is_low() {
        // Across many (phase, support) combinations the sampler should
        // almost always succeed with 6 repetitions.
        let n = 256;
        let p = params(n);
        let mut fail = 0;
        let mut total = 0;
        for phase in 0..60u32 {
            let fns = SketchFns::new(&shared(), phase, p);
            let deg = 1 + (phase as usize * 7) % 40;
            let neighbors: Vec<u32> = (0..deg as u32).map(|i| 100 + i).collect();
            let s = vertex_sketch(&fns, 3, &neighbors);
            total += 1;
            if s.query(&fns).is_none() {
                fail += 1;
            }
        }
        assert!(fail * 20 < total, "failure rate {fail}/{total} too high");
    }

    #[test]
    fn remove_is_the_inverse_of_add() {
        let p = params(64);
        let fns = SketchFns::new(&shared(), 7, p);
        let mut s = vertex_sketch(&fns, 5, &[9, 11, 13]);
        s.remove_incident_edge(&fns, 5, 11);
        s.remove_incident_edge(&fns, 5, 9);
        s.remove_incident_edge(&fns, 5, 13);
        assert!(
            s.is_zero(),
            "removing every added edge must zero the sketch"
        );
        // And maintained-vs-fresh: interleaved adds/removes equal a fresh
        // build of the surviving edge set.
        let mut maintained = vertex_sketch(&fns, 5, &[9, 11]);
        maintained.remove_incident_edge(&fns, 5, 9);
        maintained.add_incident_edge(&fns, 5, 13);
        let fresh = vertex_sketch(&fns, 5, &[11, 13]);
        assert_eq!(maintained.cells, fresh.cells);
    }

    #[test]
    fn remove_respects_orientation_signs() {
        // Removing from the larger endpoint's perspective cancels the entry
        // added from the smaller endpoint's perspective only pairwise: the
        // ±1 orientation must be preserved through removal.
        let p = params(64);
        let fns = SketchFns::new(&shared(), 8, p);
        let mut s = L0Sketch::new(p);
        s.add_incident_edge(&fns, 3, 9); // +1 (3 < 9)
        s.add_incident_edge(&fns, 9, 3); // −1
        assert!(s.is_zero());
        s.add_incident_edge(&fns, 3, 9);
        s.remove_incident_edge(&fns, 3, 9);
        assert!(s.is_zero());
        s.add_incident_edge(&fns, 3, 9);
        s.remove_incident_edge(&fns, 9, 3);
        assert!(
            !s.is_zero(),
            "opposite-perspective removal must not cancel the +1 entry"
        );
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merging_mismatched_shapes_panics() {
        let a = L0Sketch::new(SketchParams::for_graph(64, 3));
        let mut b = L0Sketch::new(SketchParams::for_graph(128, 3));
        b.merge(&a);
    }

    #[test]
    fn wire_bits_are_polylog() {
        let p = SketchParams::for_graph(1 << 20, 4);
        // 42 levels * 4 reps * 189 bits + header: well under 2^16 bits.
        assert!(p.wire_bits() < 1 << 16);
        assert_eq!(L0Sketch::new(p).wire_bits(), p.wire_bits());
    }

    #[test]
    fn sketch_shape_log_agrees_with_the_bandwidth_layer() {
        // The sketch shape and the bandwidth accounting identities must be
        // driven by the *same* `⌈log₂ n⌉`: this crate used to carry a
        // private duplicate of `ceil_log2` that could silently drift from
        // `kmachine::bandwidth::ceil_log2`. Pin the agreement across the
        // whole small range plus the power-of-two boundaries.
        for n in 1usize..4096 {
            let log = kmachine::bandwidth::ceil_log2(n.max(2));
            let p = SketchParams::for_graph(n, 3);
            assert_eq!(p.levels, (2 * log + 2).min(61), "n = {n}");
            assert_eq!(p.independence, (log as usize).max(8), "n = {n}");
        }
        for shift in 10..40u32 {
            let n = 1usize << shift;
            assert_eq!(
                SketchParams::for_graph(n, 3).levels,
                (2 * kmachine::bandwidth::ceil_log2(n) + 2).min(61)
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> SketchParams {
        SketchParams::for_graph(256, 4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merging is commutative and associative (sketches form a group
        /// under cell-wise addition — the heart of §2.3's linearity).
        #[test]
        fn merge_is_commutative_and_associative(
            edges_a in prop::collection::vec((0u32..255, 0u32..255), 0..20),
            edges_b in prop::collection::vec((0u32..255, 0u32..255), 0..20),
            edges_c in prop::collection::vec((0u32..255, 0u32..255), 0..20),
            phase in 0u32..50,
        ) {
            let p = params();
            let fns = SketchFns::new(&SharedRandomness::new(9), phase, p);
            let build = |list: &[(u32, u32)]| {
                let mut s = L0Sketch::new(p);
                for &(a, b) in list {
                    if a != b {
                        s.add_incident_edge(&fns, a, b);
                    }
                }
                s
            };
            let (a, b, c) = (build(&edges_a), build(&edges_b), build(&edges_c));
            // a + b == b + a
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab.cells, &ba.cells);
            // (a + b) + c == a + (b + c)
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c.cells, &a_bc.cells);
        }

        /// A vertex's sketch plus the same edges from the other endpoints'
        /// perspective cancels to zero (pairwise +1/−1 cancellation).
        #[test]
        fn opposite_perspectives_cancel(
            nbrs in prop::collection::hash_set(0u32..255, 1..20),
            phase in 0u32..50,
        ) {
            let p = params();
            let fns = SketchFns::new(&SharedRandomness::new(11), phase, p);
            let v = 255u32; // distinct from all neighbors by range
            let mut s = L0Sketch::new(p);
            for &nb in &nbrs {
                s.add_incident_edge(&fns, v, nb);
            }
            for &nb in &nbrs {
                s.add_incident_edge(&fns, nb, v);
            }
            prop_assert!(s.is_zero());
            prop_assert_eq!(s.query(&fns), None);
        }

        /// Whatever query returns is always an edge that was inserted (and
        /// not cancelled) — never a fabricated pair.
        #[test]
        fn query_never_fabricates_edges(
            nbrs in prop::collection::hash_set(0u32..254, 1..30),
            phase in 0u32..50,
        ) {
            let p = params();
            let fns = SketchFns::new(&SharedRandomness::new(13), phase, p);
            let v = 255u32;
            let mut s = L0Sketch::new(p);
            for &nb in &nbrs {
                s.add_incident_edge(&fns, v, nb);
            }
            if let Some((a, b)) = s.query(&fns) {
                prop_assert_eq!(b, v, "canonical order: v is the larger id");
                prop_assert!(nbrs.contains(&a), "({a},{b}) was never inserted");
            }
        }
    }
}
