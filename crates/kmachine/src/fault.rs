//! Deterministic fault injection: seeded per-superstep link faults and
//! scheduled machine crashes.
//!
//! The k-machine model assumes a reliable synchronous network; real
//! clusters drop, duplicate, delay and reorder messages, and lose machines
//! mid-phase. A [`FaultPlan`] describes such an adversarial environment
//! *deterministically*: every fault decision is a pure function of the
//! plan seed and the message coordinates `(superstep, attempt, sequence)`,
//! so a faulty run reproduces exactly from its plan — which is what lets
//! the chaos conformance suite pin bit-identical outputs against
//! fault-free runs.
//!
//! The plan is consumed by two layers:
//!
//! * [`crate::bsp::Bsp`] — the production path. With a plan installed the
//!   superstep layer runs a per-superstep ack/retransmit protocol
//!   (DESIGN.md §3.10): lost messages are retransmitted in *recovery
//!   rounds* until everything arrives, duplicates are discarded by
//!   sequence number, and the inbox is reassembled in canonical sequence
//!   order — so the application observes exactly the fault-free inbox
//!   while [`crate::metrics::CommStats`] records what the masking cost
//!   (`faults_injected`, `retransmit_bits`, `recovery_rounds`).
//! * [`crate::network::Network`] / [`crate::link::Link`] — the
//!   fine-grained per-round lab, which applies the same decisions to
//!   individual link transmissions (best-effort: no recovery protocol),
//!   used to unit-test the fault decisions themselves.

/// One scheduled machine crash: at the start of the given superstep the
/// machine loses its volatile state and every message to or from it in
/// that superstep's first delivery attempt. The machine restarts before
/// the first recovery round (crash-stop with immediate restart); rebuilding
/// its *algorithm* state is the engine's job (phase checkpoints,
/// `core::engine::RecoveryPolicy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The 0-based superstep index at which the crash fires. For the
    /// fine-grained [`crate::network::Network`] this is a round index.
    pub superstep: u64,
    /// The machine that crashes.
    pub machine: usize,
}

/// A deterministic fault-injection plan: per-message drop / duplicate /
/// reorder / delay probabilities plus scheduled machine crashes, all keyed
/// by one seed.
///
/// An all-zero plan (the [`Default`]) injects nothing; installing it is
/// still observable (the reliable-delivery bookkeeping runs), so callers
/// normally install a plan only when [`FaultPlan::is_active`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of every fault decision.
    pub seed: u64,
    /// Per-message, per-attempt drop probability in `[0, 1)` (strictly
    /// below 1: an always-dropping link would starve the retransmit
    /// protocol forever).
    pub drop: f64,
    /// Per-message duplicate probability in `[0, 1]`. A duplicate costs
    /// its wire bits again (a spurious retransmission) and is discarded by
    /// the receiver's sequence-number dedup.
    pub dup: f64,
    /// Per-message reorder probability in `[0, 1]`: the message arrives
    /// out of order within its superstep; canonical sequence reassembly
    /// masks it.
    pub reorder: f64,
    /// Per-message delay probability in `[0, 1]`: the message is in flight
    /// during the first delivery attempt and lands in the first recovery
    /// round (no retransmission bits, one recovery round).
    pub delay: f64,
    /// Scheduled crash events (see [`CrashEvent`]).
    pub crashes: Vec<CrashEvent>,
}

/// Domain-separation constants for the per-fault-kind decision streams.
const KIND_DROP: u64 = 0x5eed_d209;
const KIND_DUP: u64 = 0x5eed_d30b;
const KIND_REORDER: u64 = 0x5eed_02de;
const KIND_DELAY: u64 = 0x5eed_de1a;

/// The workspace's one SplitMix64 mixer, shared with the PRF tree so the
/// two can never drift.
use krand::prf::split_mix64 as mix;

impl FaultPlan {
    /// A plan with the given seed and no faults (compose with the
    /// `with_*` builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the delay probability.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay = p;
        self
    }

    /// Schedules machine `machine` to crash at superstep `superstep`.
    pub fn with_crash(mut self, machine: usize, superstep: u64) -> Self {
        self.crashes.push(CrashEvent { superstep, machine });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.delay > 0.0
            || !self.crashes.is_empty()
    }

    /// Validates the probability ranges. `drop` must stay strictly below 1
    /// (an always-dropping link can never be recovered from); the other
    /// probabilities live in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let range = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("fault probability {name}={p} must lie in [0, 1]"))
            }
        };
        range("drop", self.drop)?;
        range("dup", self.dup)?;
        range("reorder", self.reorder)?;
        range("delay", self.delay)?;
        if self.drop >= 1.0 {
            return Err("drop=1 starves the retransmit protocol; use drop < 1".into());
        }
        Ok(())
    }

    /// Parses a CLI fault spec: comma-separated `key=value` pairs with
    /// keys `drop`, `dup`, `reorder`, `delay` (probabilities), `seed`
    /// (u64), and repeatable `crash=MACHINE@SUPERSTEP` events.
    ///
    /// ```
    /// use kmachine::fault::FaultPlan;
    /// let p = FaultPlan::parse("drop=0.05,dup=0.1,crash=2@7,seed=9").unwrap();
    /// assert_eq!(p.seed, 9);
    /// assert_eq!(p.crashes.len(), 1);
    /// assert!(p.is_active());
    /// assert!(FaultPlan::parse("drop=2").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (entry, part) in spec
            .split(',')
            .enumerate()
            .filter(|(_, p)| !p.trim().is_empty())
        {
            // Errors are entry-precise: they name the 1-based entry index
            // and the offending field, so a long CLI spec pinpoints itself.
            let at = entry + 1;
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!(
                    "fault spec entry {at} (`{part}`): not key=value",
                    part = part.trim()
                )
            })?;
            let (key, value) = (key.trim(), value.trim());
            let prob = || -> Result<f64, String> {
                value.parse::<f64>().map_err(|_| {
                    format!(
                        "fault spec entry {at} (`{key}={value}`): field `{key}` is not a number"
                    )
                })
            };
            match key {
                "drop" => plan.drop = prob()?,
                "dup" => plan.dup = prob()?,
                "reorder" => plan.reorder = prob()?,
                "delay" => plan.delay = prob()?,
                "seed" => {
                    plan.seed = value.parse().map_err(|_| {
                        format!("fault spec entry {at} (`seed={value}`): field `seed` is not a u64")
                    })?;
                }
                "crash" => {
                    let (m, s) = value.split_once('@').ok_or_else(|| {
                        format!(
                            "fault spec entry {at} (`crash={value}`): \
                             expected MACHINE@SUPERSTEP"
                        )
                    })?;
                    let machine = m.parse().map_err(|_| {
                        format!(
                            "fault spec entry {at} (`crash={value}`): \
                             field `machine` is not a machine id"
                        )
                    })?;
                    let superstep = s.parse().map_err(|_| {
                        format!(
                            "fault spec entry {at} (`crash={value}`): \
                             field `superstep` is not a superstep index"
                        )
                    })?;
                    plan.crashes.push(CrashEvent { superstep, machine });
                }
                other => {
                    return Err(format!(
                        "fault spec entry {at}: unknown key `{other}` \
                         (supported: drop, dup, reorder, delay, crash, seed)"
                    ))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Formats the plan back into the spec syntax [`FaultPlan::parse`]
    /// accepts. The round trip is exact: `parse(p.to_spec()) == p` for
    /// every valid plan (property-tested), because probabilities are
    /// printed with full `f64` precision via Rust's shortest round-trip
    /// float formatting. Zero fields are omitted; an inactive
    /// seed-0 plan formats as the empty spec.
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        if self.drop != 0.0 {
            parts.push(format!("drop={}", self.drop));
        }
        if self.dup != 0.0 {
            parts.push(format!("dup={}", self.dup));
        }
        if self.reorder != 0.0 {
            parts.push(format!("reorder={}", self.reorder));
        }
        if self.delay != 0.0 {
            parts.push(format!("delay={}", self.delay));
        }
        for c in &self.crashes {
            parts.push(format!("crash={}@{}", c.machine, c.superstep));
        }
        parts.join(",")
    }

    /// One deterministic Bernoulli roll for fault kind `kind` on message
    /// `(superstep, attempt, seq)`.
    fn roll(&self, kind: u64, p: f64, superstep: u64, attempt: u64, seq: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut h = mix(self.seed ^ kind);
        h = mix(h ^ superstep);
        h = mix(h ^ attempt.wrapping_mul(0x0bad_cafe));
        h = mix(h ^ seq);
        (h as f64) < p * (u64::MAX as f64)
    }

    /// Whether transmission attempt `attempt` of message `seq` in
    /// superstep `superstep` is dropped.
    pub fn drops(&self, superstep: u64, attempt: u64, seq: u64) -> bool {
        self.roll(KIND_DROP, self.drop, superstep, attempt, seq)
    }

    /// Whether the first transmission of message `seq` is duplicated.
    pub fn duplicates(&self, superstep: u64, seq: u64) -> bool {
        self.roll(KIND_DUP, self.dup, superstep, 0, seq)
    }

    /// Whether message `seq` arrives out of order within its superstep.
    pub fn reorders(&self, superstep: u64, seq: u64) -> bool {
        self.roll(KIND_REORDER, self.reorder, superstep, 0, seq)
    }

    /// Whether message `seq` is delayed into the first recovery round.
    pub fn delays(&self, superstep: u64, seq: u64) -> bool {
        self.roll(KIND_DELAY, self.delay, superstep, 0, seq)
    }

    /// The machines crashing at superstep `superstep`, deduplicated and
    /// ascending.
    pub fn crashes_at(&self, superstep: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .crashes
            .iter()
            .filter(|c| c.superstep == superstep)
            .map(|c| c.machine)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl std::fmt::Display for FaultPlan {
    /// The parseable spec form (see [`FaultPlan::to_spec`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(7).with_drop(0.5);
        let b = FaultPlan::new(7).with_drop(0.5);
        let c = FaultPlan::new(8).with_drop(0.5);
        let pattern = |p: &FaultPlan| (0..64).map(|i| p.drops(3, 0, i)).collect::<Vec<_>>();
        assert_eq!(pattern(&a), pattern(&b), "same seed, same decisions");
        assert_ne!(pattern(&a), pattern(&c), "different seed, different stream");
        assert!(
            pattern(&a).iter().any(|&d| d) && pattern(&a).iter().any(|&d| !d),
            "p=0.5 must mix outcomes"
        );
    }

    #[test]
    fn attempts_reroll_independently() {
        // A message dropped at attempt 0 must not be doomed forever: the
        // roll varies with the attempt index.
        let p = FaultPlan::new(3).with_drop(0.5);
        let doomed = (0..200u64)
            .filter(|&seq| p.drops(0, 0, seq))
            .any(|seq| (1..64).all(|attempt| p.drops(0, attempt, seq)));
        assert!(!doomed, "every dropped message eventually gets through");
    }

    #[test]
    fn probability_endpoints() {
        let never = FaultPlan::new(1);
        assert!((0..100).all(|i| !never.drops(0, 0, i)));
        assert!(!never.is_active());
        let always = FaultPlan::new(1).with_dup(1.0);
        assert!((0..100).all(|i| always.duplicates(0, i)));
        assert!(always.is_active());
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = FaultPlan::new(11).with_drop(0.2);
        let hits = (0..10_000u64).filter(|&s| p.drops(1, 0, s)).count();
        assert!(
            (1500..2500).contains(&hits),
            "drop=0.2 over 10k rolls hit {hits} times"
        );
    }

    #[test]
    fn parse_round_trips_the_readme_spec() {
        let p = FaultPlan::parse("drop=0.05, dup=0.1, reorder=0.5, delay=0.02, seed=7").unwrap();
        assert_eq!(p.drop, 0.05);
        assert_eq!(p.dup, 0.1);
        assert_eq!(p.reorder, 0.5);
        assert_eq!(p.delay, 0.02);
        assert_eq!(p.seed, 7);
        let c = FaultPlan::parse("crash=1@4,crash=0@9").unwrap();
        assert_eq!(
            c.crashes,
            vec![
                CrashEvent {
                    superstep: 4,
                    machine: 1
                },
                CrashEvent {
                    superstep: 9,
                    machine: 0
                }
            ]
        );
        assert_eq!(c.crashes_at(4), vec![1]);
        assert_eq!(c.crashes_at(5), Vec::<usize>::new());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "drop",
            "drop=x",
            "drop=1.0",
            "drop=-0.1",
            "dup=1.5",
            "unknown=1",
            "crash=3",
            "crash=a@b",
            "seed=abc",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn validate_bounds_probabilities() {
        assert!(FaultPlan::new(0).with_drop(0.999).validate().is_ok());
        assert!(FaultPlan::new(0).with_drop(1.0).validate().is_err());
        assert!(FaultPlan::new(0).with_delay(1.0).validate().is_ok());
        assert!(FaultPlan::new(0).with_reorder(-0.5).validate().is_err());
    }

    #[test]
    fn to_spec_round_trips_handwritten_plans() {
        let p = FaultPlan::new(7)
            .with_drop(0.05)
            .with_dup(0.1)
            .with_reorder(0.5)
            .with_delay(0.02)
            .with_crash(2, 9)
            .with_crash(0, 3);
        assert_eq!(FaultPlan::parse(&p.to_spec()).unwrap(), p);
        assert_eq!(p.to_string(), p.to_spec());
        assert_eq!(FaultPlan::default().to_spec(), "");
        assert_eq!(
            FaultPlan::parse(&FaultPlan::default().to_spec()).unwrap(),
            FaultPlan::default()
        );
    }

    #[test]
    fn parse_errors_are_entry_and_field_precise() {
        // The error names the failing entry's 1-based index and field.
        let e = FaultPlan::parse("drop=0.1,dup=oops,seed=3").unwrap_err();
        assert!(e.contains("entry 2"), "{e}");
        assert!(e.contains("`dup`"), "{e}");
        let e = FaultPlan::parse("seed=3,crash=1@x").unwrap_err();
        assert!(e.contains("entry 2"), "{e}");
        assert!(e.contains("`superstep`"), "{e}");
        let e = FaultPlan::parse("drop=0.1,crash=z@4").unwrap_err();
        assert!(e.contains("entry 2") && e.contains("`machine`"), "{e}");
        let e = FaultPlan::parse("drop=0.1,bogus=1").unwrap_err();
        assert!(e.contains("entry 2") && e.contains("`bogus`"), "{e}");
        let e = FaultPlan::parse("drop=0.1,,seed").unwrap_err();
        assert!(e.contains("entry 3"), "empty entries keep indexing: {e}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// A generator over valid plans: probabilities inside their documented
    /// ranges (`drop < 1`), arbitrary seeds, up to four crash events. Each
    /// probability is gated by a selector so exact-zero (omitted-field)
    /// plans are exercised alongside full-precision floats.
    fn arb_plan() -> impl Strategy<Value = FaultPlan> {
        fn prob() -> impl Strategy<Value = f64> {
            (0u8..4, 0.0..0.999f64).map_gen(|(z, v)| if z == 0 { 0.0 } else { v })
        }
        (
            (0u64..u64::MAX, prob(), prob()),
            (prob(), prob()),
            prop::collection::vec((0usize..64, 0u64..1000), 0..4),
        )
            .map_gen(|((seed, drop, dup), (reorder, delay), crashes)| {
                let mut plan = FaultPlan::new(seed)
                    .with_drop(drop)
                    .with_dup(dup)
                    .with_reorder(reorder)
                    .with_delay(delay);
                for (m, s) in crashes {
                    plan = plan.with_crash(m, s);
                }
                plan
            })
    }

    proptest! {
        /// Satellite pin (ISSUE 7): random plans round-trip through
        /// parse→format→parse identically — including full-precision
        /// probabilities and crash schedules in order.
        #[test]
        fn spec_round_trip_is_exact(plan in arb_plan()) {
            let spec = plan.to_spec();
            let parsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("`{spec}` must parse: {e}"));
            prop_assert_eq!(&parsed, &plan);
            // Idempotence: format(parse(format(p))) == format(p).
            prop_assert_eq!(parsed.to_spec(), spec);
        }

        /// Corrupting one entry of a valid spec yields an error naming that
        /// entry's index.
        #[test]
        fn corrupted_entries_are_reported_precisely(
            plan in arb_plan(),
            key in (0usize..5)
                .map_gen(|i| ["drop", "dup", "reorder", "delay", "seed"][i]),
        ) {
            let spec = plan.to_spec();
            let n_entries = spec.split(',').filter(|p| !p.is_empty()).count();
            let bad = if spec.is_empty() {
                format!("{key}=bogus")
            } else {
                format!("{spec},{key}=bogus")
            };
            let e = FaultPlan::parse(&bad).expect_err("corrupted entry must fail");
            prop_assert!(
                e.contains(&format!("entry {}", n_entries + 1)),
                "error `{}` must name entry {}", e, n_entries + 1
            );
            prop_assert!(e.contains(key), "error `{}` must name field `{}`", e, key);
        }
    }
}
