//! Structured run tracing (DESIGN.md §3.14): a zero-cost-when-off event
//! layer threaded through every execution layer.
//!
//! Every layer of the stack — the superstep runner ([`crate::bsp::Bsp`]),
//! the engine phase loop, fault recovery, the byte transport and the
//! dynamic update layer — emits typed [`TraceEvent`]s into a shared
//! [`Tracer`]. The stream is split into two channels:
//!
//! * The **logical channel** ([`TraceRecord`]) is fully deterministic:
//!   records are sequence-numbered in emission order and carry only model
//!   quantities (rounds, bits, message counts, fault decisions). Same
//!   seed and config ⇒ byte-identical logical JSONL, across the sim and
//!   proc transports alike (pinned by `tests/trace.rs`). No wall-clock value
//!   ever enters this channel, so kcheck KC02 stays clean.
//! * The **physical channel** ([`PhysRecord`]) carries what actually
//!   happened on the host: transport window lifecycle counters and
//!   wall-clock micros. It is allowed to differ run-to-run and is kept
//!   strictly apart from the logical stream (separate sequence space,
//!   separate sink method, separate file).
//!
//! **Zero cost when off.** A disabled [`Tracer`] is a `None`; every emit
//! site passes a closure, so event construction (histograms, link lists)
//! is never executed on the off path. Tracing on/off does not perturb a
//! run: outputs and [`crate::metrics::CommStats`] are bit-identical either
//! way (also pinned by `tests/trace.rs`).
//!
//! **Sink contract.** A [`TraceSink`] observes records in sequence order,
//! exactly once each, on the thread that emitted them (emission is
//! serialized by the tracer's mutex). Sinks must not panic on IO failure —
//! tracing is best-effort diagnostics, never load-bearing for the run.
//! Three sinks ship with the workspace: the always-on in-memory buffer
//! (powering [`phase_breakdown`] and `kmm trace summarize`), the
//! [`JsonlSink`] file sink (`--trace-out`), and the [`chrome_trace`]
//! exporter that renders a finished logical stream as a Chrome
//! trace-event/Perfetto timeline on a cumulative-rounds clock.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One logical trace event. All quantities are model-level (rounds, bits,
/// counts) — never wall-clock — so the stream is deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A named non-phase cost segment (the engine's setup charges, the
    /// §2.6 output protocol). Together with [`TraceEvent::PhaseEnd`] and
    /// [`TraceEvent::Rollback`], segments tile a run's `CommStats` exactly:
    /// the per-event `rounds`/`bits` columns sum to the run totals.
    Segment {
        /// Segment name (`"setup"`, `"output"`).
        name: String,
        /// Rounds charged inside the segment.
        rounds: u64,
        /// Bits charged inside the segment.
        bits: u64,
    },
    /// A Borůvka phase is starting.
    PhaseStart {
        /// 0-based phase index.
        phase: u32,
        /// Distinct component labels alive at phase start.
        components: u64,
        /// Whether this phase runs on the contracted supergraph.
        contracted: bool,
    },
    /// A phase completed normally (its work is kept).
    PhaseEnd {
        /// 0-based phase index.
        phase: u32,
        /// Rounds the phase charged (including its share of recovery).
        rounds: u64,
        /// Bits the phase charged (including retransmissions).
        bits: u64,
        /// Recovery rounds within `rounds`.
        recovery_rounds: u64,
        /// Retransmitted bits within `bits`.
        retransmit_bits: u64,
        /// Part sketches built from scratch during the phase.
        sketch_builds: u64,
        /// Part sketches served from the incremental cache.
        sketch_cache_hits: u64,
    },
    /// A phase attempt was aborted by machine crashes and rolled back to
    /// the last checkpoint. The aborted work is charged to this event, not
    /// to a [`TraceEvent::PhaseEnd`].
    Rollback {
        /// 0-based index of the aborted phase attempt.
        phase: u32,
        /// The machines that crashed, ascending.
        crashed: Vec<u32>,
        /// Rounds the aborted attempt charged (including the restore
        /// barrier).
        rounds: u64,
        /// Bits the aborted attempt charged.
        bits: u64,
        /// Recovery rounds within `rounds`.
        recovery_rounds: u64,
        /// Retransmitted bits within `bits`.
        retransmit_bits: u64,
    },
    /// A phase checkpoint was taken (rollback target for later crashes).
    Checkpoint {
        /// The phase the checkpoint snapshots the end of.
        phase: u32,
    },
    /// One superstep's delivered window.
    Superstep {
        /// 0-based superstep index (equals `CommStats::supersteps − 1` at
        /// emission).
        index: u64,
        /// Rounds the window cost (base + duplicate traffic).
        rounds: u64,
        /// Bits charged for the window.
        bits: u64,
        /// Cross-machine messages in the window.
        messages: u64,
        /// Bits on the most loaded directed link.
        max_link_bits: u64,
        /// Per-directed-link charged bits, ascending by `(src, dst)`.
        links: Vec<(u32, u32, u64)>,
        /// Payload kind histogram of the cross-machine messages,
        /// ascending by kind name.
        kinds: Vec<(String, u64)>,
    },
    /// Faults injected into one superstep's first delivery attempt.
    /// Emitted only when at least one fault fired.
    Faults {
        /// The superstep the faults hit.
        superstep: u64,
        /// Messages dropped on the first attempt.
        dropped: u64,
        /// Messages duplicated (spurious copy charged).
        duplicated: u64,
        /// Messages reordered within the window.
        reordered: u64,
        /// Messages delayed into the first recovery round.
        delayed: u64,
        /// Machines that crashed at this superstep.
        crashed: u64,
    },
    /// One ack/retransmit recovery wave of the reliable-delivery protocol.
    Retransmit {
        /// The superstep being recovered.
        superstep: u64,
        /// 1-based recovery attempt index.
        attempt: u64,
        /// Messages retransmitted in this wave.
        messages: u64,
        /// Bits the wave charged.
        bits: u64,
        /// Rounds the wave charged (1 ack round + the batch's own rounds).
        rounds: u64,
    },
    /// A dynamic-layer update batch was routed and applied.
    DynBatch {
        /// Operations in the batch.
        ops: u64,
        /// Insertions among them.
        inserts: u64,
        /// Deletions among them.
        deletes: u64,
        /// Rounds the routing superstep charged.
        rounds: u64,
        /// Bits the routing superstep charged.
        bits: u64,
        /// Whether the batch triggered delta-log compaction.
        compacted: bool,
    },
    /// A dynamic-layer certification pass compared fresh labels against
    /// the spliced incremental result.
    DynCertify {
        /// Distinct labels in the fresh run.
        labels: u64,
        /// Rounds the certification supersteps charged.
        rounds: u64,
        /// Bits the certification supersteps charged.
        bits: u64,
        /// Whether certification succeeded.
        ok: bool,
    },
    /// A failed certification escalated to a full re-solve: the preceding
    /// `span` breakdown rows (the discarded incremental attempt, its
    /// certification pass included) are retroactively marked rolled back.
    DynEscalate {
        /// How many immediately-preceding rows belong to the aborted
        /// incremental attempt.
        span: u64,
        /// Total rounds the aborted attempt charged.
        rounds: u64,
        /// Total bits the aborted attempt charged.
        bits: u64,
    },
}

/// One sequence-numbered logical record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Emission order, starting at 0.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// One physical-channel event: host-side observations (wall-clock,
/// transport counters) that may differ run-to-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhysEvent {
    /// One transport window crossed the worker mesh: the physical counter
    /// deltas of a single `exchange` call plus its wall-clock cost.
    Window {
        /// The logical superstep the window belongs to.
        superstep: u64,
        /// Window protocol iterations (attempt escalations included).
        windows: u64,
        /// Delivery attempts.
        attempts: u64,
        /// Frames put on the wire.
        frames_sent: u64,
        /// Payload bytes put on the wire.
        payload_bytes: u64,
        /// Frames that physically arrived.
        frames_delivered: u64,
        /// Acks received.
        acks: u64,
        /// Worker processes respawned during the window.
        worker_restarts: u64,
        /// Wall-clock duration of the exchange, in microseconds.
        micros: u64,
    },
}

/// One sequence-numbered physical record (its own sequence space).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysRecord {
    /// Emission order within the physical channel, starting at 0.
    pub seq: u64,
    /// The event.
    pub event: PhysEvent,
}

// ---------------------------------------------------------------------
// Sinks and the tracer
// ---------------------------------------------------------------------

/// Receives trace records as they are emitted. See the module docs for
/// the ordering/exactly-once contract; implementations must treat IO
/// failure as best-effort (swallow, don't panic).
pub trait TraceSink {
    /// One logical record, in sequence order.
    fn event(&mut self, record: &TraceRecord);
    /// One physical record, in its own sequence order. Default: ignored.
    fn phys(&mut self, _record: &PhysRecord) {}
    /// Flush any buffered output (called by [`Tracer::flush`]).
    fn flush_sink(&mut self) {}
}

struct TracerInner {
    seq: u64,
    phys_seq: u64,
    sinks: Vec<Box<dyn TraceSink + Send>>,
    /// The always-on in-memory sink: when tracing is on, every record is
    /// buffered here — this is what powers [`Tracer::events`],
    /// [`phase_breakdown`] and the `RunReport` per-phase breakdown.
    records: Vec<TraceRecord>,
    phys_records: Vec<PhysRecord>,
}

/// A cloneable handle to one run's trace stream. The default (and
/// [`Tracer::off`]) handle is disabled: every emit is a no-op and the
/// event-construction closure is never run.
///
/// Clones share the same underlying stream — the engine, the superstep
/// layer and the dynamic layer all hold clones of the one tracer a run
/// was configured with, and their events interleave into a single
/// sequence-numbered stream.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerInner>>>,
}

impl Tracer {
    /// The disabled tracer (the default): emits nothing, costs nothing.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with no external sinks: records accumulate in
    /// the in-memory buffer only.
    pub fn recording() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TracerInner {
                seq: 0,
                phys_seq: 0,
                sinks: Vec::new(),
                records: Vec::new(),
                phys_records: Vec::new(),
            }))),
        }
    }

    /// An enabled tracer that additionally forwards every record to
    /// `sink` (the in-memory buffer still fills).
    pub fn to_sink(sink: Box<dyn TraceSink + Send>) -> Self {
        let t = Tracer::recording();
        if let Some(mut g) = t.lock() {
            g.sinks.push(sink);
        }
        t
    }

    /// Whether tracing is enabled.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, TracerInner>> {
        self.inner.as_ref().map(|m| match m.lock() {
            Ok(g) => g,
            // A sink panicked mid-record on another thread; the buffered
            // records are still sound — keep tracing.
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// Emits one logical event. The closure runs only when tracing is on,
    /// so building the event (histograms, link lists) costs nothing on
    /// the off path.
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(mut g) = self.lock() {
            let record = TraceRecord {
                seq: g.seq,
                event: build(),
            };
            g.seq += 1;
            for s in &mut g.sinks {
                s.event(&record);
            }
            g.records.push(record);
        }
    }

    /// Emits one physical event (separate channel, own sequence space).
    pub fn emit_phys(&self, build: impl FnOnce() -> PhysEvent) {
        if let Some(mut g) = self.lock() {
            let record = PhysRecord {
                seq: g.phys_seq,
                event: build(),
            };
            g.phys_seq += 1;
            for s in &mut g.sinks {
                s.phys(&record);
            }
            g.phys_records.push(record);
        }
    }

    /// Number of logical records emitted so far (0 when off).
    pub fn logical_len(&self) -> u64 {
        self.lock().map_or(0, |g| g.seq)
    }

    /// A cursor into the logical stream: pass it to
    /// [`Tracer::events_since`] to get only the records emitted after this
    /// point (the session layer brackets each run this way).
    pub fn mark(&self) -> usize {
        self.lock().map_or(0, |g| g.records.len())
    }

    /// All logical records emitted so far.
    pub fn events(&self) -> Vec<TraceRecord> {
        self.lock().map_or_else(Vec::new, |g| g.records.clone())
    }

    /// The logical records emitted since `mark`.
    pub fn events_since(&self, mark: usize) -> Vec<TraceRecord> {
        self.lock().map_or_else(Vec::new, |g| {
            g.records[mark.min(g.records.len())..].to_vec()
        })
    }

    /// All physical records emitted so far.
    pub fn phys_events(&self) -> Vec<PhysRecord> {
        self.lock()
            .map_or_else(Vec::new, |g| g.phys_records.clone())
    }

    /// Flushes every attached sink (call after a run completes; buffered
    /// file sinks otherwise flush on drop).
    pub fn flush(&self) {
        if let Some(mut g) = self.lock() {
            for s in &mut g.sinks {
                s.flush_sink();
            }
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_on() {
            "Tracer(on)"
        } else {
            "Tracer(off)"
        })
    }
}

// ---------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonObj {
    buf: String,
}

impl JsonObj {
    fn new(seq: u64, kind: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"seq\":");
        buf.push_str(&seq.to_string());
        buf.push_str(",\"type\":");
        push_json_str(&mut buf, kind);
        JsonObj { buf }
    }

    fn num(mut self, key: &str, v: u64) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        self.buf.push_str(&v.to_string());
        self
    }

    fn boolean(mut self, key: &str, v: bool) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    fn string(mut self, key: &str, v: &str) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        push_json_str(&mut self.buf, v);
        self
    }

    fn raw(mut self, key: &str, v: &str) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        self.buf.push_str(v);
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn links_json(links: &[(u32, u32, u64)]) -> String {
    let mut s = String::from("[");
    for (i, (a, b, bits)) in links.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{a},{b},{bits}]"));
    }
    s.push(']');
    s
}

fn kinds_json(kinds: &[(String, u64)]) -> String {
    let mut s = String::from("[");
    for (i, (name, count)) in kinds.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        push_json_str(&mut s, name);
        s.push_str(&format!(",{count}]"));
    }
    s.push(']');
    s
}

fn u32s_json(vals: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

impl TraceRecord {
    /// One-line JSON with a fixed key order — the byte-exact JSONL format
    /// of `--trace-out` (determinism-pinned in `tests/trace.rs`).
    pub fn to_json(&self) -> String {
        match &self.event {
            TraceEvent::Segment { name, rounds, bits } => JsonObj::new(self.seq, "segment")
                .string("name", name)
                .num("rounds", *rounds)
                .num("bits", *bits)
                .finish(),
            TraceEvent::PhaseStart {
                phase,
                components,
                contracted,
            } => JsonObj::new(self.seq, "phase_start")
                .num("phase", u64::from(*phase))
                .num("components", *components)
                .boolean("contracted", *contracted)
                .finish(),
            TraceEvent::PhaseEnd {
                phase,
                rounds,
                bits,
                recovery_rounds,
                retransmit_bits,
                sketch_builds,
                sketch_cache_hits,
            } => JsonObj::new(self.seq, "phase_end")
                .num("phase", u64::from(*phase))
                .num("rounds", *rounds)
                .num("bits", *bits)
                .num("recovery_rounds", *recovery_rounds)
                .num("retransmit_bits", *retransmit_bits)
                .num("sketch_builds", *sketch_builds)
                .num("sketch_cache_hits", *sketch_cache_hits)
                .finish(),
            TraceEvent::Rollback {
                phase,
                crashed,
                rounds,
                bits,
                recovery_rounds,
                retransmit_bits,
            } => JsonObj::new(self.seq, "rollback")
                .num("phase", u64::from(*phase))
                .raw("crashed", &u32s_json(crashed))
                .num("rounds", *rounds)
                .num("bits", *bits)
                .num("recovery_rounds", *recovery_rounds)
                .num("retransmit_bits", *retransmit_bits)
                .finish(),
            TraceEvent::Checkpoint { phase } => JsonObj::new(self.seq, "checkpoint")
                .num("phase", u64::from(*phase))
                .finish(),
            TraceEvent::Superstep {
                index,
                rounds,
                bits,
                messages,
                max_link_bits,
                links,
                kinds,
            } => JsonObj::new(self.seq, "superstep")
                .num("index", *index)
                .num("rounds", *rounds)
                .num("bits", *bits)
                .num("messages", *messages)
                .num("max_link_bits", *max_link_bits)
                .raw("links", &links_json(links))
                .raw("kinds", &kinds_json(kinds))
                .finish(),
            TraceEvent::Faults {
                superstep,
                dropped,
                duplicated,
                reordered,
                delayed,
                crashed,
            } => JsonObj::new(self.seq, "faults")
                .num("superstep", *superstep)
                .num("dropped", *dropped)
                .num("duplicated", *duplicated)
                .num("reordered", *reordered)
                .num("delayed", *delayed)
                .num("crashed", *crashed)
                .finish(),
            TraceEvent::Retransmit {
                superstep,
                attempt,
                messages,
                bits,
                rounds,
            } => JsonObj::new(self.seq, "retransmit")
                .num("superstep", *superstep)
                .num("attempt", *attempt)
                .num("messages", *messages)
                .num("bits", *bits)
                .num("rounds", *rounds)
                .finish(),
            TraceEvent::DynBatch {
                ops,
                inserts,
                deletes,
                rounds,
                bits,
                compacted,
            } => JsonObj::new(self.seq, "dyn_batch")
                .num("ops", *ops)
                .num("inserts", *inserts)
                .num("deletes", *deletes)
                .num("rounds", *rounds)
                .num("bits", *bits)
                .boolean("compacted", *compacted)
                .finish(),
            TraceEvent::DynCertify {
                labels,
                rounds,
                bits,
                ok,
            } => JsonObj::new(self.seq, "dyn_certify")
                .num("labels", *labels)
                .num("rounds", *rounds)
                .num("bits", *bits)
                .boolean("ok", *ok)
                .finish(),
            TraceEvent::DynEscalate { span, rounds, bits } => {
                JsonObj::new(self.seq, "dyn_escalate")
                    .num("span", *span)
                    .num("rounds", *rounds)
                    .num("bits", *bits)
                    .finish()
            }
        }
    }
}

impl PhysRecord {
    /// One-line JSON for the physical channel (not determinism-pinned:
    /// this channel carries wall-clock).
    pub fn to_json(&self) -> String {
        match &self.event {
            PhysEvent::Window {
                superstep,
                windows,
                attempts,
                frames_sent,
                payload_bytes,
                frames_delivered,
                acks,
                worker_restarts,
                micros,
            } => JsonObj::new(self.seq, "window")
                .num("superstep", *superstep)
                .num("windows", *windows)
                .num("attempts", *attempts)
                .num("frames_sent", *frames_sent)
                .num("payload_bytes", *payload_bytes)
                .num("frames_delivered", *frames_delivered)
                .num("acks", *acks)
                .num("worker_restarts", *worker_restarts)
                .num("micros", *micros)
                .finish(),
        }
    }
}

/// Renders a logical stream as JSONL (one record per line, trailing
/// newline). Byte-identical to what a [`JsonlSink`] writes.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut s = String::new();
    for r in records {
        s.push_str(&r.to_json());
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------
// JSONL parsing (the `kmm trace` inspector's reader)
// ---------------------------------------------------------------------

/// A minimal JSON value: exactly the subset the trace format uses
/// (objects, arrays, strings, unsigned integers, booleans).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    U(u64),
    B(bool),
    S(String),
    A(Vec<Json>),
    O(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            b: s.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.at < self.b.len() && self.b[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b
            .get(self.at)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(c), self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::S(self.string()?)),
            b't' => self.keyword("true", Json::B(true)),
            b'f' => self.keyword("false", Json::B(false)),
            b'0'..=b'9' => self.number(),
            c => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(c),
                self.at
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self.at < self.b.len() && self.b[self.at].is_ascii_digit() {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::U)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.at)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.at)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.at += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.at += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at - 1)),
                    }
                }
                c => {
                    // Re-decode the UTF-8 tail of a multi-byte char.
                    if c < 0x80 {
                        out.push(char::from(c));
                    } else {
                        let start = self.at - 1;
                        let mut end = self.at;
                        while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..end])
                                .map_err(|_| "bad utf-8 in string".to_string())?,
                        );
                        self.at = end;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::A(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::A(items));
                }
                c => return Err(format!("expected `,` or `]`, got `{}`", char::from(c))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::O(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::O(fields));
                }
                c => return Err(format!("expected `,` or `}}`, got `{}`", char::from(c))),
            }
        }
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        match self {
            Json::O(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("`{key}` looked up on a non-object")),
        }
    }

    fn u(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Json::U(v) => Ok(*v),
            _ => Err(format!("field `{key}` is not an integer")),
        }
    }

    fn b(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Json::B(v) => Ok(*v),
            _ => Err(format!("field `{key}` is not a boolean")),
        }
    }

    fn s(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            Json::S(v) => Ok(v.clone()),
            _ => Err(format!("field `{key}` is not a string")),
        }
    }

    fn arr(&self, key: &str) -> Result<&[Json], String> {
        match self.get(key)? {
            Json::A(v) => Ok(v),
            _ => Err(format!("field `{key}` is not an array")),
        }
    }
}

fn record_from_json(v: &Json) -> Result<TraceRecord, String> {
    let seq = v.u("seq")?;
    let kind = v.s("type")?;
    let p32 = |x: u64, f: &str| -> Result<u32, String> {
        u32::try_from(x).map_err(|_| format!("field `{f}` overflows u32"))
    };
    let event = match kind.as_str() {
        "segment" => TraceEvent::Segment {
            name: v.s("name")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
        },
        "phase_start" => TraceEvent::PhaseStart {
            phase: p32(v.u("phase")?, "phase")?,
            components: v.u("components")?,
            contracted: v.b("contracted")?,
        },
        "phase_end" => TraceEvent::PhaseEnd {
            phase: p32(v.u("phase")?, "phase")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
            recovery_rounds: v.u("recovery_rounds")?,
            retransmit_bits: v.u("retransmit_bits")?,
            sketch_builds: v.u("sketch_builds")?,
            sketch_cache_hits: v.u("sketch_cache_hits")?,
        },
        "rollback" => TraceEvent::Rollback {
            phase: p32(v.u("phase")?, "phase")?,
            crashed: v
                .arr("crashed")?
                .iter()
                .map(|j| match j {
                    Json::U(m) => p32(*m, "crashed"),
                    _ => Err("crashed entry is not an integer".to_string()),
                })
                .collect::<Result<_, _>>()?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
            recovery_rounds: v.u("recovery_rounds")?,
            retransmit_bits: v.u("retransmit_bits")?,
        },
        "checkpoint" => TraceEvent::Checkpoint {
            phase: p32(v.u("phase")?, "phase")?,
        },
        "superstep" => TraceEvent::Superstep {
            index: v.u("index")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
            messages: v.u("messages")?,
            max_link_bits: v.u("max_link_bits")?,
            links: v
                .arr("links")?
                .iter()
                .map(|j| match j {
                    Json::A(t) if t.len() == 3 => match (&t[0], &t[1], &t[2]) {
                        (Json::U(a), Json::U(b), Json::U(bits)) => {
                            Ok((p32(*a, "links")?, p32(*b, "links")?, *bits))
                        }
                        _ => Err("links entry is not [u32,u32,u64]".to_string()),
                    },
                    _ => Err("links entry is not a 3-tuple".to_string()),
                })
                .collect::<Result<_, _>>()?,
            kinds: v
                .arr("kinds")?
                .iter()
                .map(|j| match j {
                    Json::A(t) if t.len() == 2 => match (&t[0], &t[1]) {
                        (Json::S(name), Json::U(count)) => Ok((name.clone(), *count)),
                        _ => Err("kinds entry is not [name,count]".to_string()),
                    },
                    _ => Err("kinds entry is not a 2-tuple".to_string()),
                })
                .collect::<Result<_, _>>()?,
        },
        "faults" => TraceEvent::Faults {
            superstep: v.u("superstep")?,
            dropped: v.u("dropped")?,
            duplicated: v.u("duplicated")?,
            reordered: v.u("reordered")?,
            delayed: v.u("delayed")?,
            crashed: v.u("crashed")?,
        },
        "retransmit" => TraceEvent::Retransmit {
            superstep: v.u("superstep")?,
            attempt: v.u("attempt")?,
            messages: v.u("messages")?,
            bits: v.u("bits")?,
            rounds: v.u("rounds")?,
        },
        "dyn_batch" => TraceEvent::DynBatch {
            ops: v.u("ops")?,
            inserts: v.u("inserts")?,
            deletes: v.u("deletes")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
            compacted: v.b("compacted")?,
        },
        "dyn_certify" => TraceEvent::DynCertify {
            labels: v.u("labels")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
            ok: v.b("ok")?,
        },
        "dyn_escalate" => TraceEvent::DynEscalate {
            span: v.u("span")?,
            rounds: v.u("rounds")?,
            bits: v.u("bits")?,
        },
        other => return Err(format!("unknown event type `{other}`")),
    };
    Ok(TraceRecord { seq, event })
}

/// Parses a logical JSONL stream back into records. The inverse of
/// [`to_jsonl`]: `parse_jsonl(&to_jsonl(r)) == Ok(r)` for every stream
/// (round-trip-tested). Errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = JsonParser::new(line);
        let v = p.value().map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(record_from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The JSONL file sink
// ---------------------------------------------------------------------

/// Streams records to a writer as JSONL, one line per record (the
/// `--trace-out` sink). The logical channel goes to `out`; the physical
/// channel, when a second writer is attached, goes there — never into the
/// logical file, which must stay byte-deterministic. IO errors are
/// swallowed (tracing is best-effort; see the module docs).
pub struct JsonlSink<W: Write> {
    out: W,
    phys_out: Option<W>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing the logical channel to `out` and dropping the
    /// physical channel.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            phys_out: None,
        }
    }

    /// A sink writing the logical channel to `out` and the physical
    /// channel to `phys_out`.
    pub fn with_phys(out: W, phys_out: W) -> Self {
        JsonlSink {
            out,
            phys_out: Some(phys_out),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, record: &TraceRecord) {
        let _ = writeln!(self.out, "{}", record.to_json());
    }

    fn phys(&mut self, record: &PhysRecord) {
        if let Some(w) = &mut self.phys_out {
            let _ = writeln!(w, "{}", record.to_json());
        }
    }

    fn flush_sink(&mut self) {
        let _ = self.out.flush();
        if let Some(w) = &mut self.phys_out {
            let _ = w.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------

/// Renders a finished logical stream as a Chrome trace-event JSON object
/// (load in `chrome://tracing` or Perfetto). The time axis is **model
/// rounds**, not wall-clock — 1 round renders as 1 µs — so the timeline is
/// as deterministic as the stream itself. Tracks: tid 0 phases/segments,
/// tid 1 supersteps, tid 2 fault & recovery instants, tid 3 the dynamic
/// layer.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (tid, name) in [
        (0u32, "phases"),
        (1, "supersteps"),
        (2, "faults"),
        (3, "dynamic"),
    ] {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    let complete = |name: &str, ts: u64, dur: u64, tid: u32, args: &str| {
        let mut s = String::new();
        s.push_str("{\"name\":");
        push_json_str(&mut s, name);
        s.push_str(&format!(
            ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
        s
    };
    let instant = |name: &str, ts: u64, tid: u32, args: &str| {
        let mut s = String::new();
        s.push_str("{\"name\":");
        push_json_str(&mut s, name);
        s.push_str(&format!(
            ",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{{args}}}}}"
        ));
        s
    };
    // Two cumulative-rounds clocks: the phase track advances by
    // segment/phase/rollback rounds; the superstep track (which also
    // timestamps fault instants) advances by superstep/retransmit rounds.
    let mut phase_clock = 0u64;
    let mut step_clock = 0u64;
    for r in records {
        match &r.event {
            TraceEvent::Segment { name, rounds, bits } => {
                events.push(complete(
                    name,
                    phase_clock,
                    *rounds,
                    0,
                    &format!("\"bits\":{bits}"),
                ));
                phase_clock += rounds;
            }
            TraceEvent::PhaseStart {
                phase,
                components,
                contracted,
            } => {
                events.push(instant(
                    &format!("phase {phase} start"),
                    phase_clock,
                    0,
                    &format!("\"components\":{components},\"contracted\":{contracted}"),
                ));
            }
            TraceEvent::PhaseEnd {
                phase,
                rounds,
                bits,
                recovery_rounds,
                retransmit_bits,
                ..
            } => {
                events.push(complete(
                    &format!("phase {phase}"),
                    phase_clock,
                    *rounds,
                    0,
                    &format!(
                        "\"bits\":{bits},\"recovery_rounds\":{recovery_rounds},\
                         \"retransmit_bits\":{retransmit_bits}"
                    ),
                ));
                phase_clock += rounds;
            }
            TraceEvent::Rollback {
                phase,
                rounds,
                bits,
                crashed,
                ..
            } => {
                events.push(complete(
                    &format!("rollback {phase}"),
                    phase_clock,
                    *rounds,
                    0,
                    &format!("\"bits\":{bits},\"crashed\":{}", u32s_json(crashed)),
                ));
                phase_clock += rounds;
            }
            TraceEvent::Checkpoint { phase } => {
                events.push(instant(&format!("checkpoint {phase}"), phase_clock, 0, ""));
            }
            TraceEvent::Superstep {
                index,
                rounds,
                bits,
                messages,
                max_link_bits,
                ..
            } => {
                events.push(complete(
                    &format!("superstep {index}"),
                    step_clock,
                    *rounds,
                    1,
                    &format!(
                        "\"bits\":{bits},\"messages\":{messages},\
                         \"max_link_bits\":{max_link_bits}"
                    ),
                ));
                step_clock += rounds;
            }
            TraceEvent::Faults {
                superstep,
                dropped,
                duplicated,
                reordered,
                delayed,
                crashed,
            } => {
                events.push(instant(
                    &format!("faults @{superstep}"),
                    step_clock,
                    2,
                    &format!(
                        "\"dropped\":{dropped},\"duplicated\":{duplicated},\
                         \"reordered\":{reordered},\"delayed\":{delayed},\
                         \"crashed\":{crashed}"
                    ),
                ));
            }
            TraceEvent::Retransmit {
                superstep,
                attempt,
                messages,
                bits,
                rounds,
            } => {
                events.push(complete(
                    &format!("retransmit @{superstep}#{attempt}"),
                    step_clock,
                    *rounds,
                    2,
                    &format!("\"messages\":{messages},\"bits\":{bits}"),
                ));
                step_clock += rounds;
            }
            TraceEvent::DynBatch {
                ops,
                rounds,
                bits,
                compacted,
                ..
            } => {
                events.push(complete(
                    "dyn batch",
                    phase_clock,
                    *rounds,
                    3,
                    &format!("\"ops\":{ops},\"bits\":{bits},\"compacted\":{compacted}"),
                ));
                phase_clock += rounds;
            }
            TraceEvent::DynCertify {
                labels,
                rounds,
                bits,
                ok,
            } => {
                events.push(complete(
                    "dyn certify",
                    phase_clock,
                    *rounds,
                    3,
                    &format!("\"labels\":{labels},\"bits\":{bits},\"ok\":{ok}"),
                ));
                phase_clock += rounds;
            }
            TraceEvent::DynEscalate { span, rounds, bits } => {
                events.push(instant(
                    "dyn escalate",
                    phase_clock,
                    3,
                    &format!("\"span\":{span},\"rounds\":{rounds},\"bits\":{bits}"),
                ));
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Per-phase breakdown and the summarize inspector
// ---------------------------------------------------------------------

/// One row of a run's per-phase cost table: a segment, a completed phase
/// or a rolled-back phase attempt. Rows tile the run — summing any cost
/// column over the rows gives the run's `CommStats` total for engine runs
/// (pinned by `tests/trace.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Row label: the segment name, `"phase N"` or `"rollback N"`.
    pub label: String,
    /// Rounds charged to this row.
    pub rounds: u64,
    /// Bits charged to this row.
    pub bits: u64,
    /// Recovery rounds within `rounds`.
    pub recovery_rounds: u64,
    /// Retransmitted bits within `bits`.
    pub retransmit_bits: u64,
    /// Part sketches built during the row (phases only).
    pub sketch_builds: u64,
    /// Sketch cache hits during the row (phases only).
    pub sketch_cache_hits: u64,
    /// Whether this row is a rolled-back (aborted) phase attempt.
    pub rolled_back: bool,
}

/// Folds a logical stream into per-phase rows (see [`PhaseSummary`]).
/// Streams without phase-level events (baseline runs) fold to an empty
/// table.
pub fn phase_breakdown(records: &[TraceRecord]) -> Vec<PhaseSummary> {
    let mut rows = Vec::new();
    for r in records {
        match &r.event {
            TraceEvent::Segment { name, rounds, bits } => rows.push(PhaseSummary {
                label: name.clone(),
                rounds: *rounds,
                bits: *bits,
                recovery_rounds: 0,
                retransmit_bits: 0,
                sketch_builds: 0,
                sketch_cache_hits: 0,
                rolled_back: false,
            }),
            TraceEvent::PhaseEnd {
                phase,
                rounds,
                bits,
                recovery_rounds,
                retransmit_bits,
                sketch_builds,
                sketch_cache_hits,
            } => rows.push(PhaseSummary {
                label: format!("phase {phase}"),
                rounds: *rounds,
                bits: *bits,
                recovery_rounds: *recovery_rounds,
                retransmit_bits: *retransmit_bits,
                sketch_builds: *sketch_builds,
                sketch_cache_hits: *sketch_cache_hits,
                rolled_back: false,
            }),
            TraceEvent::Rollback {
                phase,
                rounds,
                bits,
                recovery_rounds,
                retransmit_bits,
                ..
            } => rows.push(PhaseSummary {
                label: format!("rollback {phase}"),
                rounds: *rounds,
                bits: *bits,
                recovery_rounds: *recovery_rounds,
                retransmit_bits: *retransmit_bits,
                sketch_builds: 0,
                sketch_cache_hits: 0,
                rolled_back: true,
            }),
            TraceEvent::DynCertify { rounds, bits, .. } => rows.push(PhaseSummary {
                label: "certify".to_string(),
                rounds: *rounds,
                bits: *bits,
                recovery_rounds: 0,
                retransmit_bits: 0,
                sketch_builds: 0,
                sketch_cache_hits: 0,
                rolled_back: false,
            }),
            TraceEvent::DynEscalate { span, .. } => {
                // The aborted incremental attempt's rows (certify pass
                // included) stay in the table — marked rolled back so the
                // row sum still tiles the merged escalation stats.
                let n = rows.len();
                let span = usize::try_from(*span).unwrap_or(n).min(n);
                for row in &mut rows[n - span..] {
                    row.rolled_back = true;
                }
            }
            _ => {}
        }
    }
    rows
}

/// Renders the `kmm trace summarize` report: the per-phase cost table,
/// the top-loaded directed links and the fault/recovery hotspots. Pure
/// string building — the CLI decides where it goes.
pub fn summarize(records: &[TraceRecord]) -> String {
    let rows = phase_breakdown(records);
    let mut out = String::new();
    out.push_str(&format!("logical records: {}\n\n", records.len()));

    // Per-phase table.
    out.push_str("per-phase breakdown\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>12} {:>10} {:>12} {:>8} {:>8}\n",
        "phase", "rounds", "bits", "rec.rnds", "rtx.bits", "builds", "hits"
    ));
    let mut tot = PhaseSummary {
        label: "total".into(),
        rounds: 0,
        bits: 0,
        recovery_rounds: 0,
        retransmit_bits: 0,
        sketch_builds: 0,
        sketch_cache_hits: 0,
        rolled_back: false,
    };
    for row in &rows {
        out.push_str(&format!(
            "{:<14} {:>8} {:>12} {:>10} {:>12} {:>8} {:>8}\n",
            row.label,
            row.rounds,
            row.bits,
            row.recovery_rounds,
            row.retransmit_bits,
            row.sketch_builds,
            row.sketch_cache_hits
        ));
        tot.rounds += row.rounds;
        tot.bits += row.bits;
        tot.recovery_rounds += row.recovery_rounds;
        tot.retransmit_bits += row.retransmit_bits;
        tot.sketch_builds += row.sketch_builds;
        tot.sketch_cache_hits += row.sketch_cache_hits;
    }
    out.push_str(&format!(
        "{:<14} {:>8} {:>12} {:>10} {:>12} {:>8} {:>8}\n",
        tot.label,
        tot.rounds,
        tot.bits,
        tot.recovery_rounds,
        tot.retransmit_bits,
        tot.sketch_builds,
        tot.sketch_cache_hits
    ));

    // Top-loaded links, aggregated over every superstep.
    let mut link_total: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut kind_total: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        if let TraceEvent::Superstep { links, kinds, .. } = &r.event {
            for &(a, b, bits) in links {
                *link_total.entry((a, b)).or_insert(0) += bits;
            }
            for (name, count) in kinds {
                *kind_total.entry(name.clone()).or_insert(0) += count;
            }
        }
    }
    if !link_total.is_empty() {
        let mut by_load: Vec<((u32, u32), u64)> = link_total.into_iter().collect();
        // Heaviest first; the BTreeMap key order breaks ties.
        by_load.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push_str("\ntop loaded links\n");
        for ((a, b), bits) in by_load.into_iter().take(5) {
            out.push_str(&format!("  {a} -> {b}: {bits} bits\n"));
        }
    }
    if !kind_total.is_empty() {
        let mut by_count: Vec<(String, u64)> = kind_total.into_iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push_str("\npayload kinds\n");
        for (name, count) in by_count.into_iter().take(8) {
            out.push_str(&format!("  {name}: {count} messages\n"));
        }
    }

    // Fault hotspots: supersteps ranked by injected fault count.
    let mut hot: Vec<(u64, u64)> = Vec::new();
    let mut waves = 0u64;
    let mut wave_bits = 0u64;
    for r in records {
        match &r.event {
            TraceEvent::Faults {
                superstep,
                dropped,
                duplicated,
                reordered,
                delayed,
                crashed,
            } => hot.push((
                *superstep,
                dropped + duplicated + reordered + delayed + crashed,
            )),
            TraceEvent::Retransmit { bits, .. } => {
                waves += 1;
                wave_bits += bits;
            }
            _ => {}
        }
    }
    if !hot.is_empty() {
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push_str("\nfault hotspots\n");
        for (superstep, faults) in hot.into_iter().take(5) {
            out.push_str(&format!("  superstep {superstep}: {faults} faults\n"));
        }
        out.push_str(&format!("  retransmit waves: {waves} ({wave_bits} bits)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sample_records() -> Vec<TraceRecord> {
        let t = Tracer::recording();
        t.emit(|| TraceEvent::Segment {
            name: "setup".into(),
            rounds: 2,
            bits: 128,
        });
        t.emit(|| TraceEvent::PhaseStart {
            phase: 0,
            components: 40,
            contracted: false,
        });
        t.emit(|| TraceEvent::Superstep {
            index: 0,
            rounds: 3,
            bits: 900,
            messages: 12,
            max_link_bits: 300,
            links: vec![(0, 1, 300), (1, 0, 200), (1, 2, 400)],
            kinds: vec![("part_sketch".into(), 10), ("relabel".into(), 2)],
        });
        t.emit(|| TraceEvent::Faults {
            superstep: 0,
            dropped: 2,
            duplicated: 1,
            reordered: 0,
            delayed: 1,
            crashed: 0,
        });
        t.emit(|| TraceEvent::Retransmit {
            superstep: 0,
            attempt: 1,
            messages: 3,
            bits: 120,
            rounds: 2,
        });
        t.emit(|| TraceEvent::PhaseEnd {
            phase: 0,
            rounds: 9,
            bits: 1020,
            recovery_rounds: 2,
            retransmit_bits: 160,
            sketch_builds: 40,
            sketch_cache_hits: 0,
        });
        t.emit(|| TraceEvent::Rollback {
            phase: 1,
            crashed: vec![2],
            rounds: 5,
            bits: 300,
            recovery_rounds: 4,
            retransmit_bits: 90,
        });
        t.emit(|| TraceEvent::Checkpoint { phase: 1 });
        t.emit(|| TraceEvent::DynBatch {
            ops: 20,
            inserts: 15,
            deletes: 5,
            rounds: 1,
            bits: 640,
            compacted: true,
        });
        t.emit(|| TraceEvent::DynCertify {
            labels: 4,
            rounds: 2,
            bits: 96,
            ok: true,
        });
        t.emit(|| TraceEvent::DynEscalate {
            span: 1,
            rounds: 2,
            bits: 96,
        });
        t.emit(|| TraceEvent::Segment {
            name: "output".into(),
            rounds: 1,
            bits: 64,
        });
        t.events()
    }

    #[test]
    fn off_tracer_never_runs_the_closure() {
        let t = Tracer::off();
        let calls = AtomicU64::new(0);
        t.emit(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            TraceEvent::Checkpoint { phase: 0 }
        });
        t.emit_phys(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            PhysEvent::Window {
                superstep: 0,
                windows: 0,
                attempts: 0,
                frames_sent: 0,
                payload_bytes: 0,
                frames_delivered: 0,
                acks: 0,
                worker_restarts: 0,
                micros: 0,
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert!(!t.is_on());
        assert_eq!(t.logical_len(), 0);
        assert!(t.events().is_empty());
        assert_eq!(format!("{t:?}"), "Tracer(off)");
    }

    #[test]
    fn records_are_sequence_numbered_in_emission_order() {
        let records = sample_records();
        assert_eq!(records.len(), 12);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn clones_share_one_stream() {
        let a = Tracer::recording();
        let b = a.clone();
        a.emit(|| TraceEvent::Checkpoint { phase: 0 });
        b.emit(|| TraceEvent::Checkpoint { phase: 1 });
        assert_eq!(a.logical_len(), 2);
        assert_eq!(b.events()[1].seq, 1);
        assert_eq!(format!("{a:?}"), "Tracer(on)");
    }

    #[test]
    fn events_since_brackets_a_run() {
        let t = Tracer::recording();
        t.emit(|| TraceEvent::Checkpoint { phase: 0 });
        let mark = t.mark();
        t.emit(|| TraceEvent::Checkpoint { phase: 1 });
        let tail = t.events_since(mark);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].event, TraceEvent::Checkpoint { phase: 1 });
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let records = sample_records();
        let text = to_jsonl(&records);
        let parsed = parse_jsonl(&text).expect("round trip must parse");
        assert_eq!(parsed, records);
        // And the rendering is stable: parse → render is the identity.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let good = sample_records();
        let mut text = to_jsonl(&good[..1]);
        text.push_str("{\"seq\":1,\"type\":\"wat\"}\n");
        let e = parse_jsonl(&text).expect_err("unknown type must fail");
        assert!(e.contains("line 2"), "{e}");
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("").expect("empty is fine").is_empty());
    }

    #[test]
    fn jsonl_sink_writes_the_same_bytes_as_to_jsonl() {
        #[derive(Clone)]
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                match self.0.lock() {
                    Ok(mut g) => g.extend_from_slice(buf),
                    Err(_) => return Ok(buf.len()),
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let records = sample_records();
        let buf = Shared(std::sync::Arc::new(Mutex::new(Vec::new())));
        let t = Tracer::to_sink(Box::new(JsonlSink::new(buf.clone())));
        for r in &records {
            let e = r.event.clone();
            t.emit(move || e);
        }
        t.flush();
        let written = buf.0.lock().map(|g| g.clone()).unwrap_or_default();
        assert_eq!(String::from_utf8(written).unwrap(), to_jsonl(&records));
    }

    #[test]
    fn phys_channel_is_separate_and_sequence_numbered() {
        let t = Tracer::recording();
        t.emit(|| TraceEvent::Checkpoint { phase: 0 });
        t.emit_phys(|| PhysEvent::Window {
            superstep: 0,
            windows: 1,
            attempts: 1,
            frames_sent: 3,
            payload_bytes: 400,
            frames_delivered: 3,
            acks: 3,
            worker_restarts: 0,
            micros: 125,
        });
        assert_eq!(t.logical_len(), 1);
        let phys = t.phys_events();
        assert_eq!(phys.len(), 1);
        assert_eq!(phys[0].seq, 0);
        let json = phys[0].to_json();
        assert!(json.contains("\"type\":\"window\""), "{json}");
        assert!(json.contains("\"micros\":125"), "{json}");
    }

    #[test]
    fn breakdown_tiles_the_stream() {
        let rows = phase_breakdown(&sample_records());
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["setup", "phase 0", "rollback 1", "certify", "output"]
        );
        assert!(rows[2].rolled_back);
        // The escalation marker retroactively rolls back the certify row.
        assert!(rows[3].rolled_back);
        assert!(!rows[4].rolled_back);
        let rounds: u64 = rows.iter().map(|r| r.rounds).sum();
        assert_eq!(rounds, 2 + 9 + 5 + 2 + 1);
    }

    #[test]
    fn summarize_reports_phases_links_and_hotspots() {
        let s = summarize(&sample_records());
        assert!(s.contains("phase 0"), "{s}");
        assert!(s.contains("rollback 1"), "{s}");
        assert!(s.contains("certify"), "{s}");
        assert!(s.contains("total"), "{s}");
        assert!(s.contains("1 -> 2: 400 bits"), "{s}");
        assert!(s.contains("part_sketch: 10 messages"), "{s}");
        assert!(s.contains("superstep 0: 4 faults"), "{s}");
        assert!(s.contains("retransmit waves: 1 (120 bits)"), "{s}");
    }

    #[test]
    fn chrome_trace_is_valid_json_and_covers_all_tracks() {
        let trace = chrome_trace(&sample_records());
        let mut p = JsonParser::new(&trace);
        let v = p.value().expect("chrome trace must be valid JSON");
        let events = v.arr("traceEvents").expect("traceEvents array");
        // 4 thread_name metadata events + one per source record.
        assert_eq!(events.len(), 4 + 12);
        // Phase clock: setup(2) then phase 0 at ts=2.
        let phase0 = events
            .iter()
            .find(|e| e.s("name").is_ok_and(|n| n == "phase 0"))
            .expect("phase 0 event");
        assert_eq!(phase0.u("ts").unwrap(), 2);
        assert_eq!(phase0.u("dur").unwrap(), 9);
    }

    #[test]
    fn chrome_trace_of_empty_stream_is_parseable() {
        let trace = chrome_trace(&[]);
        let mut p = JsonParser::new(&trace);
        assert!(p.value().is_ok());
    }

    #[test]
    fn poisoned_tracer_keeps_working() {
        struct Bomb(bool);
        impl TraceSink for Bomb {
            fn event(&mut self, _r: &TraceRecord) {
                if self.0 {
                    panic!("sink bomb");
                }
            }
        }
        let t = Tracer::to_sink(Box::new(Bomb(true)));
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            t2.emit(|| TraceEvent::Checkpoint { phase: 0 });
        });
        assert!(h.join().is_err(), "the sink must have panicked");
        // The mutex is poisoned; emission must still work.
        if let Some(mut g) = t.lock() {
            g.sinks.clear();
        }
        t.emit(|| TraceEvent::Checkpoint { phase: 1 });
        assert_eq!(t.logical_len(), 2);
    }
}
