//! A directed communication link with FIFO queueing and a per-round budget.

use crate::message::Envelope;
use std::collections::VecDeque;

/// One directed link's transmission queue.
///
/// Messages are transmitted in FIFO order; a message larger than the
/// per-round budget occupies the link for `⌈bits/W⌉` consecutive rounds
/// (partial transmission carries over).
#[derive(Debug)]
pub struct Link<M> {
    queue: VecDeque<(Envelope<M>, u64)>, // (message, remaining bits)
}

impl<M> Default for Link<M> {
    fn default() -> Self {
        Link {
            queue: VecDeque::new(),
        }
    }
}

impl<M> Link<M> {
    /// Enqueues a message for transmission.
    pub fn push(&mut self, env: Envelope<M>) {
        let bits = env.bits.max(1); // even an empty payload needs a round slot
        self.queue.push_back((env, bits));
    }

    /// Transmits one round's worth of bits; returns messages fully delivered
    /// this round (available to the receiver at the start of the next round).
    pub fn transmit(&mut self, budget: u64) -> Vec<Envelope<M>> {
        let mut remaining = budget;
        let mut delivered = Vec::new();
        while remaining > 0 {
            match self.queue.front_mut() {
                None => break,
                Some((_, rem)) => {
                    if *rem <= remaining {
                        remaining -= *rem;
                        let (env, _) = self.queue.pop_front().expect("front exists");
                        delivered.push(env);
                    } else {
                        *rem -= remaining;
                        remaining = 0;
                    }
                }
            }
        }
        delivered
    }

    /// Bits still queued.
    pub fn backlog_bits(&self) -> u64 {
        self.queue.iter().map(|(_, rem)| *rem).sum()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireSize;

    #[derive(Clone, Debug, PartialEq)]
    struct P(u64, u64); // (id, bits)
    impl WireSize for P {
        fn wire_bits(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut l: Link<P> = Link::default();
        for i in 0..5 {
            l.push(Envelope::new(0, 1, P(i, 10)));
        }
        let out = l.transmit(100);
        let ids: Vec<u64> = out.iter().map(|e| e.payload.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn budget_limits_deliveries_per_round() {
        let mut l: Link<P> = Link::default();
        for i in 0..4 {
            l.push(Envelope::new(0, 1, P(i, 10)));
        }
        assert_eq!(l.transmit(25).len(), 2); // 10+10 delivered, 5 bits into #2
        assert_eq!(l.backlog_bits(), 15);
        assert_eq!(l.transmit(25).len(), 2); // the rest
        assert!(l.is_empty());
    }

    #[test]
    fn oversized_message_takes_multiple_rounds() {
        let mut l: Link<P> = Link::default();
        l.push(Envelope::new(0, 1, P(7, 100)));
        assert!(l.transmit(30).is_empty());
        assert!(l.transmit(30).is_empty());
        assert!(l.transmit(30).is_empty());
        let out = l.transmit(30); // 4th round: 120 >= 100
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.0, 7);
    }

    #[test]
    fn zero_bit_payload_still_occupies_a_slot() {
        #[derive(Clone)]
        struct Z;
        impl WireSize for Z {
            fn wire_bits(&self) -> u64 {
                0
            }
        }
        let mut l: Link<Z> = Link::default();
        l.push(Envelope::new(0, 1, Z));
        assert_eq!(l.backlog_bits(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::WireSize;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    struct Sized(u64);
    impl WireSize for Sized {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Conservation: a link delivers exactly what was enqueued, in
        /// order, and the number of rounds equals ceil(total/bits).
        #[test]
        fn link_conserves_messages_and_time(
            sizes in prop::collection::vec(1u64..200, 0..30),
            budget in 1u64..64,
        ) {
            let mut l: Link<Sized> = Link::default();
            for &b in &sizes {
                l.push(Envelope::new(0, 1, Sized(b)));
            }
            let total: u64 = sizes.iter().sum();
            prop_assert_eq!(l.backlog_bits(), total);
            let mut rounds = 0u64;
            let mut got = Vec::new();
            while !l.is_empty() {
                rounds += 1;
                got.extend(l.transmit(budget));
                prop_assert!(rounds <= total + 1, "must terminate");
            }
            prop_assert_eq!(got.len(), sizes.len());
            // FIFO order preserved.
            for (env, &b) in got.iter().zip(&sizes) {
                prop_assert_eq!(env.payload.0, b);
            }
            prop_assert_eq!(rounds, total.div_ceil(budget));
        }
    }
}
