//! A directed communication link with FIFO queueing and a per-round budget.

#![warn(clippy::unwrap_used, clippy::expect_used)]
// ^ window-protocol / worker-path panic hygiene (kcheck KC05): a
// panic here kills a worker mid-window instead of failing the
// attempt cleanly. Tests opt back in below.

use crate::message::Envelope;
use std::collections::VecDeque;

/// What a fault plan does to one message completing transmission on a
/// link (see [`Link::transmit_with`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Deliver normally.
    None,
    /// Discard the message (bits were spent, nothing arrives).
    Drop,
    /// Deliver a spurious second copy alongside the original.
    Dup,
    /// Re-queue the message at the back of the link for a fresh
    /// transmission (it arrives whole rounds late).
    Delay,
}

/// One directed link's transmission queue.
///
/// Messages are transmitted in FIFO order; a message larger than the
/// per-round budget occupies the link for `⌈bits/W⌉` consecutive rounds
/// (partial transmission carries over).
#[derive(Debug)]
pub struct Link<M> {
    queue: VecDeque<(Envelope<M>, u64)>, // (message, remaining bits)
}

impl<M> Default for Link<M> {
    fn default() -> Self {
        Link {
            queue: VecDeque::new(),
        }
    }
}

impl<M> Link<M> {
    /// Enqueues a message for transmission.
    pub fn push(&mut self, env: Envelope<M>) {
        let bits = env.bits.max(1); // even an empty payload needs a round slot
        self.queue.push_back((env, bits));
    }

    /// Transmits one round's worth of bits; returns messages fully delivered
    /// this round (available to the receiver at the start of the next round).
    pub fn transmit(&mut self, budget: u64) -> Vec<Envelope<M>> {
        let mut remaining = budget;
        let mut delivered = Vec::new();
        while remaining > 0 {
            let Some((_, rem)) = self.queue.front_mut() else {
                break;
            };
            if *rem <= remaining {
                remaining -= *rem;
                if let Some((env, _)) = self.queue.pop_front() {
                    delivered.push(env);
                }
            } else {
                *rem -= remaining;
                remaining = 0;
            }
        }
        delivered
    }

    /// Like [`Link::transmit`], but consults `fault` for every message
    /// that completes transmission this round: `Drop` discards it (the
    /// bits were spent, the message is gone), `Dup` delivers a spurious
    /// second copy, `Delay` re-queues it at the back of the link (it will
    /// be transmitted again from scratch), `None` delivers normally. This
    /// is how [`crate::network::Network`] threads a
    /// [`crate::fault::FaultPlan`] through the per-round FIFO simulation.
    pub fn transmit_with(
        &mut self,
        budget: u64,
        mut fault: impl FnMut(&Envelope<M>) -> LinkFault,
    ) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        let mut delivered = Vec::new();
        let mut delayed = Vec::new();
        for env in self.transmit(budget) {
            match fault(&env) {
                LinkFault::None => delivered.push(env),
                LinkFault::Drop => {}
                LinkFault::Dup => {
                    delivered.push(env.clone());
                    delivered.push(env);
                }
                LinkFault::Delay => delayed.push(env),
            }
        }
        for env in delayed {
            self.push(env);
        }
        delivered
    }

    /// Bits still queued.
    pub fn backlog_bits(&self) -> u64 {
        self.queue.iter().map(|(_, rem)| *rem).sum()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::message::WireSize;

    #[derive(Clone, Debug, PartialEq)]
    struct P(u64, u64); // (id, bits)
    impl WireSize for P {
        fn wire_bits(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut l: Link<P> = Link::default();
        for i in 0..5 {
            l.push(Envelope::new(0, 1, P(i, 10)));
        }
        let out = l.transmit(100);
        let ids: Vec<u64> = out.iter().map(|e| e.payload.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn budget_limits_deliveries_per_round() {
        let mut l: Link<P> = Link::default();
        for i in 0..4 {
            l.push(Envelope::new(0, 1, P(i, 10)));
        }
        assert_eq!(l.transmit(25).len(), 2); // 10+10 delivered, 5 bits into #2
        assert_eq!(l.backlog_bits(), 15);
        assert_eq!(l.transmit(25).len(), 2); // the rest
        assert!(l.is_empty());
    }

    #[test]
    fn oversized_message_takes_multiple_rounds() {
        let mut l: Link<P> = Link::default();
        l.push(Envelope::new(0, 1, P(7, 100)));
        assert!(l.transmit(30).is_empty());
        assert!(l.transmit(30).is_empty());
        assert!(l.transmit(30).is_empty());
        let out = l.transmit(30); // 4th round: 120 >= 100
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.0, 7);
    }

    #[test]
    fn transmit_with_applies_link_faults() {
        let mut l: Link<P> = Link::default();
        for i in 0..4 {
            l.push(Envelope::new(0, 1, P(i, 10)));
        }
        // Message 0 dropped, 1 duplicated, 2 delayed, 3 delivered.
        let out = l.transmit_with(100, |e| match e.payload.0 {
            0 => LinkFault::Drop,
            1 => LinkFault::Dup,
            2 => LinkFault::Delay,
            _ => LinkFault::None,
        });
        let ids: Vec<u64> = out.iter().map(|e| e.payload.0).collect();
        assert_eq!(ids, vec![1, 1, 3]);
        // The delayed message re-queued at full size and arrives later.
        assert_eq!(l.backlog_bits(), 10);
        let late = l.transmit_with(100, |_| LinkFault::None);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].payload.0, 2);
    }

    #[test]
    fn zero_bit_payload_still_occupies_a_slot() {
        #[derive(Clone)]
        struct Z;
        impl WireSize for Z {
            fn wire_bits(&self) -> u64 {
                0
            }
        }
        let mut l: Link<Z> = Link::default();
        l.push(Envelope::new(0, 1, Z));
        assert_eq!(l.backlog_bits(), 1);
    }
}

#[cfg(test)]
mod proptests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::message::WireSize;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    struct Sized(u64);
    impl WireSize for Sized {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Conservation: a link delivers exactly what was enqueued, in
        /// order, and the number of rounds equals ceil(total/bits).
        #[test]
        fn link_conserves_messages_and_time(
            sizes in prop::collection::vec(1u64..200, 0..30),
            budget in 1u64..64,
        ) {
            let mut l: Link<Sized> = Link::default();
            for &b in &sizes {
                l.push(Envelope::new(0, 1, Sized(b)));
            }
            let total: u64 = sizes.iter().sum();
            prop_assert_eq!(l.backlog_bits(), total);
            let mut rounds = 0u64;
            let mut got = Vec::new();
            while !l.is_empty() {
                rounds += 1;
                got.extend(l.transmit(budget));
                prop_assert!(rounds <= total + 1, "must terminate");
            }
            prop_assert_eq!(got.len(), sizes.len());
            // FIFO order preserved.
            for (env, &b) in got.iter().zip(&sizes) {
                prop_assert_eq!(env.payload.0, b);
            }
            prop_assert_eq!(rounds, total.div_ceil(budget));
        }
    }
}
