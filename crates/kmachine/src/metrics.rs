//! Communication accounting.
//!
//! Everything the experiments report comes from here: the round counter
//! (the model's cost measure), bit totals, per-machine loads (the §2
//! congestion arguments are about machines receiving too much), and
//! per-superstep link-load records used to validate Lemma 1 empirically.

/// A record of one superstep's communication load.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuperstepLoad {
    /// Bits on the most loaded directed link in this superstep.
    pub max_link_bits: u64,
    /// Total bits across all links in this superstep.
    pub total_bits: u64,
    /// Cross-machine messages delivered.
    pub messages: u64,
    /// Rounds charged for this superstep.
    pub rounds: u64,
}

/// Cumulative communication statistics for one algorithm run.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Total synchronous rounds — the model's cost measure.
    pub rounds: u64,
    /// Number of supersteps (message batches) executed.
    pub supersteps: u64,
    /// Total cross-machine messages.
    pub messages: u64,
    /// Total cross-machine bits.
    pub total_bits: u64,
    /// Max cumulative bits over any directed link.
    pub max_link_bits: u64,
    /// Bits sent by each machine.
    pub sent_bits: Vec<u64>,
    /// Bits received by each machine.
    pub recv_bits: Vec<u64>,
    /// Per-superstep load records (bounded: O(polylog) supersteps per run).
    pub superstep_loads: Vec<SuperstepLoad>,
    /// Bits that crossed the tracked machine bipartition, when one is set
    /// (the §4 Alice/Bob simulation harness).
    pub cut_bits: u64,
    /// Faults injected by an installed [`crate::fault::FaultPlan`]: every
    /// dropped, duplicated, reordered or delayed message plus every crash
    /// event. Exactly `0` when no plan is installed or the plan never
    /// fires — fault-free accounting is untouched.
    pub faults_injected: u64,
    /// Bits spent re-sending: retransmissions of lost messages by the
    /// ack/retransmit protocol plus spurious duplicate transmissions.
    /// Counted into `total_bits` as well (they are real traffic); this
    /// counter isolates the recovery overhead.
    pub retransmit_bits: u64,
    /// Rounds spent on recovery: the per-superstep ack/retransmit rounds
    /// of the reliable-delivery protocol plus rounds an engine attributes
    /// to crash rollback (aborted-phase work and checkpoint restore).
    /// Counted into `rounds` as well; this counter isolates the overhead.
    pub recovery_rounds: u64,
    /// Machine crash events that fired.
    pub machine_crashes: u64,
    /// What `total_bits` would have been under per-message
    /// [`crate::message::Encoding::Naive`] accounting. Always accumulated,
    /// whatever encoding is charged, so a varint run carries its own oracle:
    /// under `Encoding::Naive` this equals `total_bits` exactly, and under
    /// `Encoding::Varint` the ratio `total_bits / naive_bits` is the
    /// measured compression.
    pub naive_bits: u64,
}

impl CommStats {
    /// Fresh statistics for `k` machines.
    pub fn new(k: usize) -> Self {
        CommStats {
            sent_bits: vec![0; k],
            recv_bits: vec![0; k],
            ..Default::default()
        }
    }

    /// The heaviest per-machine receive load — the quantity the paper's
    /// Ω~(n/k) arguments are about.
    pub fn max_machine_recv_bits(&self) -> u64 {
        self.recv_bits.iter().copied().max().unwrap_or(0)
    }

    /// The heaviest per-machine send load.
    pub fn max_machine_sent_bits(&self) -> u64 {
        self.sent_bits.iter().copied().max().unwrap_or(0)
    }

    /// Load-balance ratio over supersteps: mean over supersteps of
    /// `max_link_bits / (total_bits / links)`, counting only supersteps
    /// that moved at least `min_bits`. A value close to 1 means perfectly
    /// even link usage; Lemma 1 predicts O(polylog) for proxy routing.
    ///
    /// Returns `0.0` when the ratio is undefined: a degenerate `links == 0`
    /// topology (division by zero otherwise), or when every superstep's
    /// bits fall below `min_bits` (no qualifying sample — previously this
    /// returned a fabricated "perfectly balanced" 1.0, which made empty
    /// runs indistinguishable from genuinely balanced ones).
    pub fn link_imbalance(&self, links: u64, min_bits: u64) -> f64 {
        if links == 0 {
            return 0.0;
        }
        let mut num = 0.0;
        let mut cnt = 0u64;
        for l in &self.superstep_loads {
            if l.total_bits >= min_bits && l.max_link_bits > 0 {
                let mean = l.total_bits as f64 / links as f64;
                num += l.max_link_bits as f64 / mean.max(1e-9);
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            num / cnt as f64
        }
    }

    /// Folds another run's statistics into this one (used when an algorithm
    /// invokes a sub-protocol that kept its own counters).
    pub fn absorb(&mut self, other: &CommStats) {
        self.rounds += other.rounds;
        self.supersteps += other.supersteps;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_link_bits = self.max_link_bits.max(other.max_link_bits);
        if self.sent_bits.len() < other.sent_bits.len() {
            self.sent_bits.resize(other.sent_bits.len(), 0);
            self.recv_bits.resize(other.recv_bits.len(), 0);
        }
        for (a, b) in self.sent_bits.iter_mut().zip(&other.sent_bits) {
            *a += b;
        }
        for (a, b) in self.recv_bits.iter_mut().zip(&other.recv_bits) {
            *a += b;
        }
        self.superstep_loads
            .extend(other.superstep_loads.iter().copied());
        self.cut_bits += other.cut_bits;
        self.faults_injected += other.faults_injected;
        self.retransmit_bits += other.retransmit_bits;
        self.recovery_rounds += other.recovery_rounds;
        self.machine_crashes += other.machine_crashes;
        self.naive_bits += other.naive_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = CommStats::new(2);
        a.rounds = 5;
        a.total_bits = 100;
        a.sent_bits[0] = 60;
        a.max_link_bits = 40;
        let mut b = CommStats::new(2);
        b.rounds = 3;
        b.total_bits = 50;
        b.sent_bits[1] = 50;
        b.max_link_bits = 50;
        a.absorb(&b);
        assert_eq!(a.rounds, 8);
        assert_eq!(a.total_bits, 150);
        assert_eq!(a.sent_bits, vec![60, 50]);
        assert_eq!(a.max_link_bits, 50);
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let mut s = CommStats::new(4);
        // 12 links, 120 bits total, max link 10 => perfectly even.
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 10,
            total_bits: 120,
            messages: 12,
            rounds: 1,
        });
        let r = s.link_imbalance(12, 1);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_ignores_tiny_supersteps() {
        let mut s = CommStats::new(4);
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 5,
            total_bits: 5,
            messages: 1,
            rounds: 1,
        });
        // No superstep qualifies: the ratio is undefined, reported as 0.0.
        assert_eq!(s.link_imbalance(12, 100), 0.0);
    }

    #[test]
    fn imbalance_of_zero_links_is_zero_not_a_division() {
        let mut s = CommStats::new(2);
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 40,
            total_bits: 40,
            messages: 1,
            rounds: 1,
        });
        let r = s.link_imbalance(0, 1);
        assert_eq!(r, 0.0, "links == 0 must short-circuit, got {r}");
        assert!(r.is_finite());
    }

    #[test]
    fn imbalance_of_empty_stats_is_zero() {
        let s = CommStats::new(3);
        assert_eq!(s.link_imbalance(6, 1), 0.0);
    }

    #[test]
    fn imbalance_counts_only_qualifying_supersteps() {
        let mut s = CommStats::new(4);
        // Qualifying: ratio 2.0 (max 20 vs mean 120/12 = 10).
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 20,
            total_bits: 120,
            messages: 12,
            rounds: 1,
        });
        // Below min_bits: must not drag the mean.
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 3,
            total_bits: 3,
            messages: 1,
            rounds: 1,
        });
        let r = s.link_imbalance(12, 100);
        assert!((r - 2.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn absorb_accumulates_fault_counters() {
        let mut a = CommStats::new(2);
        a.faults_injected = 3;
        a.retransmit_bits = 40;
        a.recovery_rounds = 2;
        a.machine_crashes = 1;
        let mut b = CommStats::new(2);
        b.faults_injected = 7;
        b.retransmit_bits = 5;
        b.recovery_rounds = 9;
        a.absorb(&b);
        assert_eq!(a.faults_injected, 10);
        assert_eq!(a.retransmit_bits, 45);
        assert_eq!(a.recovery_rounds, 11);
        assert_eq!(a.machine_crashes, 1);
    }

    #[test]
    fn absorb_accumulates_the_naive_oracle() {
        let mut a = CommStats::new(2);
        a.naive_bits = 100;
        let mut b = CommStats::new(2);
        b.naive_bits = 42;
        a.absorb(&b);
        assert_eq!(a.naive_bits, 142);
    }

    #[test]
    fn imbalance_skips_empty_supersteps_even_at_zero_threshold() {
        // A barrier-only superstep records zero bits; with min_bits = 0 it
        // passes the threshold test but must still not contribute a
        // 0/0-shaped sample to the mean.
        let mut s = CommStats::new(4);
        s.superstep_loads.push(SuperstepLoad::default());
        s.superstep_loads.push(SuperstepLoad {
            max_link_bits: 20,
            total_bits: 120,
            messages: 12,
            rounds: 1,
        });
        let r = s.link_imbalance(12, 0);
        assert!(
            (r - 2.0).abs() < 1e-9,
            "empty superstep polluted the mean: {r}"
        );
    }

    #[test]
    fn imbalance_on_a_single_link_is_exactly_one() {
        // With one directed link, max == total every superstep: the ratio
        // is 1.0 by construction, whatever the traffic pattern.
        let mut s = CommStats::new(2);
        for bits in [7u64, 1000, 3] {
            s.superstep_loads.push(SuperstepLoad {
                max_link_bits: bits,
                total_bits: bits,
                messages: 1,
                rounds: 1,
            });
        }
        let r = s.link_imbalance(1, 1);
        assert!((r - 1.0).abs() < 1e-9, "single-link ratio drifted: {r}");
    }

    #[test]
    fn absorb_preserves_superstep_load_order() {
        // Folding a sub-protocol's stats appends its loads *after* the
        // host's — the combined record must read in execution order, and
        // the imbalance over the fold must not depend on who absorbed whom.
        let mut host = CommStats::new(2);
        host.superstep_loads.push(SuperstepLoad {
            max_link_bits: 10,
            total_bits: 20,
            messages: 2,
            rounds: 1,
        });
        let mut sub = CommStats::new(2);
        sub.superstep_loads.push(SuperstepLoad {
            max_link_bits: 30,
            total_bits: 30,
            messages: 3,
            rounds: 2,
        });
        let mut folded = host.clone();
        folded.absorb(&sub);
        let tails: Vec<u64> = folded
            .superstep_loads
            .iter()
            .map(|l| l.total_bits)
            .collect();
        assert_eq!(tails, vec![20, 30], "host loads first, absorbed after");

        let mut reversed = sub.clone();
        reversed.absorb(&host);
        assert!(
            (folded.link_imbalance(2, 1) - reversed.link_imbalance(2, 1)).abs() < 1e-9,
            "imbalance must be fold-order independent"
        );
    }

    #[test]
    fn absorb_grows_per_machine_vectors_to_the_larger_run() {
        let mut a = CommStats::new(1);
        a.sent_bits[0] = 5;
        let mut b = CommStats::new(3);
        b.sent_bits[2] = 7;
        b.recv_bits[1] = 9;
        a.absorb(&b);
        assert_eq!(a.sent_bits, vec![5, 0, 7]);
        assert_eq!(a.recv_bits, vec![0, 9, 0]);
    }

    #[test]
    fn machine_maxima() {
        let mut s = CommStats::new(3);
        s.recv_bits = vec![5, 70, 20];
        s.sent_bits = vec![90, 1, 2];
        assert_eq!(s.max_machine_recv_bits(), 70);
        assert_eq!(s.max_machine_sent_bits(), 90);
    }
}
